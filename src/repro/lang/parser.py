"""Parser for the five-statement language and the concrete expression syntax.

The expression grammar is *data driven*: each operator's
:class:`~repro.core.operators.SyntaxPattern` (loaded from the specification)
tells the parser how many operands precede the operator name and what
bracketed/parenthesized groups follow it.  The core shapes:

=====================  =========================================
pattern                example
=====================  =========================================
``_ #``                ``cities_rep feed``, ``p age`` (attributes)
``_ _ #``              ``s1 s2 search_join``
``_ #[ _ ]``           ``persons select[age > 30]``
``_ #[ _, _ ]``        ``s replace[pop, ...]``
``_ _ #[ _ ]``         ``cities states join[...]``
``( _ # _ )``          ``pop > 30`` (infix, with precedence)
``# ( _ )``            ``bbox(region)``; also the default prefix
=====================  =========================================

Disambiguation notes (all documented deviations are parser-level only):

* A bare identifier that is neither an operator, a visible lambda parameter
  nor a known object, appearing after an operand, is *attribute access*
  (``p age``); with no preceding operand it stays a free identifier for the
  typechecker's implicit-lambda elaboration (``select[age > 30]``).
* ``name(`` with **no space** before ``(`` where ``name`` is not an operator
  is a function-value call (``cities_in("Germany")``); with a space it is a
  juxtaposed operand (``states_rep (c center) point_search``).
* ``<`` in operand position opens a list term; in infix position it is the
  comparison.  A comparison used directly inside ``< ... >`` needs
  parentheses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.core.operators import SyntaxPattern
from repro.core.sos import SecondOrderSignature
from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    Term,
    TupleTerm,
    Var,
)
from repro.core.types import (
    ArgList,
    ArgTuple,
    FunType,
    Lit,
    Sym,
    TermArg,
    Type,
    TypeApp,
    TypeArg,
)
from repro.errors import ParseError
from repro.lang.lexer import Token, tokenize

STATEMENT_KEYWORDS = ("type", "create", "update", "delete", "query", "analyze")

_SYMBOL_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">=": 3,
    ">": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "div": 5,
    "mod": 5,
}
_NAMED_INFIX_PRECEDENCE = 3  # inside, intersects, member, ...


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TypeStmt:
    name: str
    type: Type
    source: str = ""


@dataclass(slots=True)
class CreateStmt:
    name: str
    type: Type
    source: str = ""


@dataclass(slots=True)
class UpdateStmt:
    name: str
    expr: Term
    source: str = ""


@dataclass(slots=True)
class DeleteStmt:
    name: str
    source: str = ""


@dataclass(slots=True)
class QueryStmt:
    expr: Term
    source: str = ""


@dataclass(slots=True)
class AnalyzeStmt:
    """``analyze`` or ``analyze name, name`` — gather statistics for the
    named objects (all scannable objects when no names are given)."""

    names: tuple[str, ...] = ()
    source: str = ""


Statement = TypeStmt | CreateStmt | UpdateStmt | DeleteStmt | QueryStmt | AnalyzeStmt


def split_statements(source: str) -> list[str]:
    """Split a program into statement chunks.

    A statement starts on an *unindented* line whose first word is one of
    the five statement keywords; every other non-blank line continues the
    current statement (the paper's examples indent continuations).
    """
    chunks: list[list[str]] = []
    for raw in source.splitlines():
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("--"):
            continue
        first_word = stripped.split(None, 1)[0]
        starts = first_word in STATEMENT_KEYWORDS and not raw[:1].isspace()
        if starts:
            chunks.append([line])
        else:
            if not chunks:
                raise ParseError(
                    f"program must start with a statement keyword, got: {stripped}"
                )
            chunks[-1].append(line)
    return ["\n".join(chunk) for chunk in chunks]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class Parser:
    """A parser configured by a second-order signature.

    ``aliases`` maps named types (``type city = ...``) to their definitions;
    ``is_object`` says whether a bare identifier names a database object —
    the parser needs this (as Gral's did) to tell a juxtaposed operand from
    an attribute access.
    """

    def __init__(
        self,
        sos: SecondOrderSignature,
        aliases: Optional[Mapping[str, Type]] = None,
        is_object: Optional[Callable[[str], bool]] = None,
    ):
        self.sos = sos
        self.aliases = aliases if aliases is not None else {}
        self.is_object = is_object if is_object is not None else lambda name: False
        self._tokens: list[Token] = []
        self._pos = 0
        self._params: list[str] = []  # lambda parameters in scope
        self._list_depth = 0  # inside < ... > at the current nesting level

    # ------------------------------------------------------------- plumbing

    def _start(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0
        self._params = []
        self._list_depth = 0

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _expect(self, text: str) -> Token:
        tok = self._next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok}", tok.line, tok.column)
        return tok

    def _at_end(self) -> bool:
        return self._peek().kind == "EOF"

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(message + f" (at {tok})", tok.line, tok.column)

    # ----------------------------------------------------------- statements

    def parse_program(self, source: str) -> list[Statement]:
        return [self.parse_statement(chunk) for chunk in split_statements(source)]

    def parse_statement(self, text: str) -> Statement:
        self._start(text)
        tok = self._next()
        if tok.text == "type":
            name = self._name("type name")
            self._expect("=")
            t = self.parse_type_tokens()
            self._finish(text)
            return TypeStmt(name, t, source=text)
        if tok.text == "create":
            name = self._name("object name")
            self._expect(":")
            t = self.parse_type_tokens()
            self._finish(text)
            return CreateStmt(name, t, source=text)
        if tok.text == "update":
            name = self._name("object name")
            self._expect(":=")
            expr = self.parse_expr_tokens()
            self._finish(text)
            return UpdateStmt(name, expr, source=text)
        if tok.text == "delete":
            name = self._name("object name")
            self._finish(text)
            return DeleteStmt(name, source=text)
        if tok.text == "query":
            expr = self.parse_expr_tokens()
            self._finish(text)
            return QueryStmt(expr, source=text)
        if tok.text == "analyze":
            names: list[str] = []
            if not self._at_end():
                names.append(self._name("object name"))
                while self._peek().text == ",":
                    self._next()
                    names.append(self._name("object name"))
            self._finish(text)
            return AnalyzeStmt(tuple(names), source=text)
        raise ParseError(
            f"expected a statement keyword, got {tok}", tok.line, tok.column
        )

    def _name(self, what: str) -> str:
        tok = self._next()
        if tok.kind != "NAME":
            raise ParseError(f"expected {what}, got {tok}", tok.line, tok.column)
        return tok.text

    def _finish(self, text: str) -> None:
        tok = self._peek()
        if tok.kind != "EOF":
            raise ParseError(
                f"trailing input after statement: {tok}", tok.line, tok.column
            )

    # ---------------------------------------------------------------- types

    def parse_type(self, text: str) -> Type:
        self._start(text)
        t = self.parse_type_tokens()
        self._finish(text)
        return t

    def parse_type_tokens(self) -> Type:
        tok = self._peek()
        if tok.text == "(":
            return self._paren_type()
        if tok.kind != "NAME":
            raise self._error("expected a type expression")
        self._next()
        name = tok.text
        if name in self.aliases and not self._starts_args():
            return self.aliases[name]
        if self._starts_args():
            self._expect("(")
            args: list[TypeArg] = []
            if self._peek().text != ")":
                args.append(self._type_arg())
                while self._peek().text == ",":
                    self._next()
                    args.append(self._type_arg())
            self._expect(")")
            return TypeApp(name, tuple(args))
        if name in self.aliases:
            return self.aliases[name]
        if not self.sos.type_system.has_constructor(name):
            raise ParseError(f"unknown type: {name}", tok.line, tok.column)
        return TypeApp(name)

    def _starts_args(self) -> bool:
        return self._peek().text == "("

    def _paren_type(self) -> Type:
        """``(t1, ..., tn -> t)`` function types; ``(t)`` is just grouping."""
        self._expect("(")
        if self._peek().text == "->":
            self._next()
            result = self.parse_type_tokens()
            self._expect(")")
            return FunType((), result)
        first = self.parse_type_tokens()
        parts = [first]
        while self._peek().text == ",":
            self._next()
            parts.append(self.parse_type_tokens())
        if self._peek().text == "->":
            self._next()
            result = self.parse_type_tokens()
            self._expect(")")
            return FunType(tuple(parts), result)
        self._expect(")")
        if len(parts) == 1:
            return parts[0]
        from repro.core.types import ProductType

        return ProductType(tuple(parts))

    def _type_arg(self) -> TypeArg:
        tok = self._peek()
        if tok.text == "<":
            self._next()
            items = [self._type_arg()]
            while self._peek().text == ",":
                self._next()
                items.append(self._type_arg())
            self._expect(">")
            return ArgList(tuple(items))
        if tok.text == "(":
            # An ArgTuple ("(name, string)") or a function type
            # ("(tuple -> int)"); the arrow decides.
            self._expect("(")
            if self._peek().text == "->":
                self._next()
                result = self.parse_type_tokens()
                self._expect(")")
                return FunType((), result)
            items = [self._type_arg()]
            while self._peek().text == ",":
                self._next()
                items.append(self._type_arg())
            if self._peek().text == "->":
                self._next()
                result = self.parse_type_tokens()
                self._expect(")")
                if not all(isinstance(i, Type) for i in items):
                    raise self._error("function type over non-types")
                return FunType(tuple(items), result)  # type: ignore[arg-type]
            self._expect(")")
            if len(items) == 1:
                return items[0]
            return ArgTuple(tuple(items))
        if tok.kind in ("INT", "REAL", "STRING"):
            self._next()
            return Lit(tok.value)
        if tok.text == "fun":
            return TermArg(self._parse_fun())
        if tok.kind == "NAME":
            name = tok.text
            known_type = (
                name in self.aliases or self.sos.type_system.has_constructor(name)
            )
            if known_type:
                return self.parse_type_tokens()
            self._next()
            return Sym(name)
        raise self._error("expected a type argument")

    # ---------------------------------------------------------- expressions

    def parse_expression(self, text: str) -> Term:
        self._start(text)
        expr = self.parse_expr_tokens()
        self._finish(text)
        return expr

    def parse_expr_tokens(self, min_prec: int = 0) -> Term:
        left = self._parse_chain()
        while True:
            op = self._infix_at()
            if op is None:
                break
            prec = self._infix_prec(op)
            if prec < min_prec:
                break
            self._next()
            right = self.parse_expr_tokens(prec + 1)
            left = Apply(op, (left, right))
        return left

    def _infix_at(self) -> Optional[str]:
        tok = self._peek()
        text = tok.text
        if tok.kind == "SYM" and text in _SYMBOL_PRECEDENCE:
            if text == "<" and self._list_depth:
                return None
            if text == ">" and self._list_depth:
                return None
            return text
        if tok.kind in ("NAME", "KEYWORD") and text in _SYMBOL_PRECEDENCE:
            return text
        if tok.kind == "NAME":
            syntax = self.sos.syntax_of(text)
            if syntax is not None and _is_infix(syntax):
                return text
        return None

    def _infix_prec(self, op: str) -> int:
        return _SYMBOL_PRECEDENCE.get(op, _NAMED_INFIX_PRECEDENCE)

    def _parse_chain(self) -> Term:
        """A juxtaposition chain, reduced by postfix operator patterns."""
        stack: list[Term] = []
        while True:
            tok = self._peek()
            # 'delete' is both a statement keyword and an operator name
            # (Section 6); in expression position it is the operator.
            if tok.kind == "NAME" or (
                tok.kind == "KEYWORD"
                and tok.text == "delete"
                and self.sos.is_operator(tok.text)
            ):
                name = tok.text
                syntax = self.sos.syntax_of(name)
                is_op = self.sos.is_operator(name)
                if is_op and syntax is not None and _is_infix(syntax):
                    break  # handled by the precedence layer
                if is_op:
                    reduced = self._try_operator(name, syntax, stack)
                    if reduced:
                        continue
                    break  # operator needs more operands; outer context has them
                if stack and not self._is_value_name(name):
                    # attribute access  p age
                    self._next()
                    operand = stack.pop()
                    stack.append(Apply(name, (operand,)))
                    continue
                stack.append(self._parse_primary())
                continue
            if tok.kind in ("INT", "REAL", "STRING") or tok.text in ("(", "<") or (
                tok.kind == "KEYWORD" and tok.text == "fun"
            ):
                if tok.text == "<" and stack:
                    break  # comparison, not a list
                stack.append(self._parse_primary())
                continue
            break
        if not stack:
            raise self._error("expected an expression")
        if len(stack) != 1:
            raise self._error(
                f"dangling operands ({len(stack)}); an operator is missing"
            )
        return stack[0]

    def _try_operator(
        self, name: str, syntax: Optional[SyntaxPattern], stack: list[Term]
    ) -> bool:
        """Reduce the stack with operator ``name`` if possible."""
        if syntax is None:
            # Default prefix syntax: name(args...).
            if self._peek(1).text != "(":
                if stack:
                    return False
                # A bare operator name: a polymorphic constant (bottom, top,
                # empty) — represented as a variable, resolved by expected
                # type during checking.
                self._next()
                stack.append(Var(name))
                return True
            self._next()
            self._expect("(")
            args: list[Term] = []
            if self._peek().text != ")":
                args.append(self.parse_expr_tokens())
                while self._peek().text == ",":
                    self._next()
                    args.append(self.parse_expr_tokens())
            self._expect(")")
            stack.append(Apply(name, tuple(args)))
            return True
        if len(stack) < syntax.pre:
            return False
        self._next()
        pre_args = tuple(stack[len(stack) - syntax.pre :])
        del stack[len(stack) - syntax.pre :]
        group_args = self._parse_groups(syntax)
        stack.append(Apply(name, pre_args + group_args))
        return True

    def _parse_groups(self, syntax: SyntaxPattern) -> tuple[Term, ...]:
        args: list[Term] = []
        for style, count in syntax.groups:
            if style == "plain":
                args.append(self._parse_chain())
                continue
            open_sym, close_sym = ("[", "]") if style == "bracket" else ("(", ")")
            self._expect(open_sym)
            saved_depth = self._list_depth
            self._list_depth = 0
            for i in range(count):
                if i:
                    self._expect(",")
                args.append(self.parse_expr_tokens())
            self._list_depth = saved_depth
            self._expect(close_sym)
        return tuple(args)

    def _is_value_name(self, name: str) -> bool:
        return name in self._params or self.is_object(name) or name in self.aliases

    def _parse_primary(self) -> Term:
        tok = self._next()
        if tok.kind == "INT" or tok.kind == "REAL":
            return Literal(tok.value)
        if tok.kind == "STRING":
            return Literal(tok.value)
        if tok.kind == "KEYWORD" and tok.text == "fun":
            self._pos -= 1
            return self._parse_fun()
        if tok.text == "(":
            saved_depth = self._list_depth
            self._list_depth = 0
            expr = self.parse_expr_tokens()
            items = [expr]
            while self._peek().text == ",":
                self._next()
                items.append(self.parse_expr_tokens())
            self._list_depth = saved_depth
            self._expect(")")
            if len(items) > 1:
                return TupleTerm(tuple(items))
            return expr
        if tok.text == "<":
            self._list_depth += 1
            items = [self.parse_expr_tokens()]
            while self._peek().text == ",":
                self._next()
                items.append(self.parse_expr_tokens())
            self._list_depth -= 1
            self._expect(">")
            return ListTerm(tuple(items))
        if tok.kind == "NAME" and tok.text in ("true", "false"):
            return Literal(tok.text == "true")
        if tok.kind == "NAME":
            # Function-value call: name immediately followed by '('.
            nxt = self._peek()
            adjacent = (
                nxt.text == "("
                and nxt.line == tok.line
                and nxt.column == tok.column + len(tok.text)
            )
            if adjacent and not self.sos.is_operator(tok.text):
                self._expect("(")
                args: list[Term] = []
                if self._peek().text != ")":
                    saved_depth = self._list_depth
                    self._list_depth = 0
                    args.append(self.parse_expr_tokens())
                    while self._peek().text == ",":
                        self._next()
                        args.append(self.parse_expr_tokens())
                    self._list_depth = saved_depth
                self._expect(")")
                return Call(Var(tok.text), tuple(args))
            return Var(tok.text)
        raise ParseError(f"unexpected token {tok}", tok.line, tok.column)

    def _parse_fun(self) -> Fun:
        self._expect("fun")
        self._expect("(")
        params: list[tuple[str, Optional[Type]]] = []
        if self._peek().text != ")":
            while True:
                pname = self._name("parameter name")
                ptype: Optional[Type] = None
                if self._peek().text == ":":
                    self._next()
                    ptype = self.parse_type_tokens()
                params.append((pname, ptype))
                if self._peek().text != ",":
                    break
                self._next()
        self._expect(")")
        self._params.extend(p for p, _ in params)
        saved_depth = self._list_depth
        self._list_depth = 0
        try:
            body = self.parse_expr_tokens()
        finally:
            self._list_depth = saved_depth
            del self._params[len(self._params) - len(params) :]
        return Fun(tuple(params), body)


def _is_infix(syntax: SyntaxPattern) -> bool:
    return syntax.pre == 1 and syntax.groups == (("plain", 1),)
