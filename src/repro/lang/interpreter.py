"""Interpreter for the five-statement language.

Executes statements directly against a :class:`~repro.catalog.database.Database`
(no optimization; the :mod:`repro.system` front end adds the optimizing
pipeline on top).  Semantics follow Section 2.4 / Section 6:

* ``type``   — name a type (aliases are substituted at parse time);
* ``create`` — create a named object of a type; representation structures
  and catalogs are initialized with their ``empty`` value, other objects
  start undefined;
* ``update`` — evaluate the expression and assign it to the object.  Update
  *functions* (``insert``, ``delete``, ...) are only legal at the root of an
  update statement and their first argument must be the updated object
  itself, per the paper's definition of update functions;
* ``delete`` — drop the object;
* ``query``  — evaluate and return the value (streams are materialized for
  delivery "to the user or calling program").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.catalog.database import Database
from repro.core.algebra import Stream
from repro.core.terms import Apply, ObjRef, Term, Var
from repro.core.types import Type, format_type
from repro.errors import (
    ResourceLimitError,
    SOSError,
    TypeCheckError,
    UpdateError,
    wrap_statement_error,
)
from repro.lang.parser import (
    AnalyzeStmt,
    CreateStmt,
    DeleteStmt,
    Parser,
    QueryStmt,
    Statement,
    TypeStmt,
    UpdateStmt,
)


@dataclass(slots=True)
class StatementResult:
    """The outcome of executing one statement."""

    kind: str  # 'type' | 'create' | 'update' | 'delete' | 'query' | 'analyze'
    name: Optional[str] = None
    type: Optional[Type] = None
    value: object = None
    term: Optional[Term] = None

    def __repr__(self) -> str:
        t = format_type(self.type) if self.type is not None else "?"
        if self.kind == "query":
            return f"<query : {t} = {self.value!r}>"
        return f"<{self.kind} {self.name} : {t}>"


class Interpreter:
    """Parses and executes statements against a database."""

    def __init__(self, database: Database):
        self.database = database

    def make_parser(self) -> Parser:
        return Parser(
            self.database.sos,
            aliases=self.database.aliases,
            is_object=self.database.has_object,
        )

    def run(self, source: str) -> list[StatementResult]:
        """Parse and execute a program (one or more statements).

        Each statement gets a fresh parser so that types and objects defined
        by earlier statements are visible to later ones.  Errors escape as
        :class:`~repro.errors.StatementError` (still instances of their
        original class) carrying the statement index and source.
        """
        from repro.lang.parser import split_statements

        results = []
        for index, chunk in enumerate(split_statements(source)):
            results.append(self._process(chunk, index))
        return results

    def run_one(self, source: str) -> StatementResult:
        return self._process(source, None)

    def _process(self, chunk: str, index: Optional[int]) -> StatementResult:
        try:
            statement = self.make_parser().parse_statement(chunk)
            return self.execute(statement)
        except SOSError as exc:
            raise wrap_statement_error(exc, index=index, source=chunk) from exc
        except RecursionError as exc:
            err = ResourceLimitError(
                "evaluation exceeded the Python recursion limit"
            )
            raise wrap_statement_error(err, index=index, source=chunk) from exc

    # ------------------------------------------------------------- execution

    def execute(self, statement: Statement) -> StatementResult:
        """Execute one parsed statement atomically: on any error the
        database is rolled back to its pre-statement state."""
        from repro.system.transactions import statement_transaction

        with statement_transaction(self.database):
            return self._execute(statement)

    def _execute(self, statement: Statement) -> StatementResult:
        if isinstance(statement, TypeStmt):
            t = self.database.define_type(statement.name, statement.type)
            return StatementResult("type", name=statement.name, type=t)
        if isinstance(statement, CreateStmt):
            obj = self.database.create(statement.name, statement.type)
            self._auto_initialize(statement.name, statement.type)
            return StatementResult("create", name=statement.name, type=obj.type)
        if isinstance(statement, UpdateStmt):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStmt):
            self.database.drop(statement.name)
            return StatementResult("delete", name=statement.name)
        if isinstance(statement, QueryStmt):
            term = self.database.typechecker.check(statement.expr)
            value = self.database.evaluator.eval(term)
            if isinstance(value, Stream):
                value = value.materialize()
            return StatementResult("query", type=term.type, value=value, term=term)
        if isinstance(statement, AnalyzeStmt):
            from repro.stats.analyze import analyze_objects

            summary = analyze_objects(self.database, statement.names or None)
            return StatementResult("analyze", value=summary)
        raise TypeError(f"not a statement: {statement!r}")

    def _auto_initialize(self, name: str, declared: Type) -> None:
        """Give a freshly created object its ``empty`` value if the type has
        one (relations, representation structures, catalogs); other objects
        stay undefined until the first update."""
        tc = self.database.typechecker
        try:
            term = tc.check_value_term(Var("empty"), declared)
        except TypeCheckError:
            return
        value = self.database.evaluator.eval(term)
        self.database.set_value(name, value)

    def _execute_update(self, statement: UpdateStmt) -> StatementResult:
        obj = self.database.objects.get(statement.name)
        if obj is None:
            from repro.errors import CatalogError

            raise CatalogError(f"no such object: {statement.name}")
        tc = self.database.typechecker
        term = tc.check_value_term(statement.expr, obj.type)
        self._check_update_root(term, statement.name)
        self._protect_update(term, statement.name)
        value = self.database.evaluator.eval(term, allow_update=True)
        if isinstance(value, Stream):
            value = value.materialize()
        self.database.set_value(statement.name, value)
        return StatementResult(
            "update", name=statement.name, type=obj.type, value=value, term=term
        )

    def _protect_update(self, term: Term, target: str) -> None:
        """Snapshot the target and every object the update term references
        before evaluation — update functions mutate values in place, so the
        transaction must copy them *first* to be able to roll back."""
        from repro.system.transactions import referenced_objects

        self.database.protect(target, *referenced_objects(term, self.database))

    def _check_update_root(self, term: Term, target: str) -> None:
        """An update function's first argument must be the updated object
        (its result is assigned to that argument — condition (ii) of the
        paper's update-function definition)."""
        if not isinstance(term, Apply) or term.resolved is None:
            return
        if not term.resolved.is_update:
            return
        if not term.args:
            return
        first = term.args[0]
        first_name = None
        if isinstance(first, (Var, ObjRef)):
            first_name = first.name
        if first_name != target:
            raise UpdateError(
                f"update function {term.op} must take the updated object "
                f"{target} as its first argument"
            )
