"""Tokenizer for the concrete query and type syntax.

Tokens: names, integer/real/string literals, punctuation, and the symbolic
operators.  ``--`` starts a line comment.  ``<`` and ``>`` are emitted as
plain symbols; the parser decides from context whether ``<`` opens a list
term or is a comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

# Longest first so that ':=', '<=', '->' win over their prefixes.
# '~>' (update functions), '|' (union sorts) and '#' (syntax patterns) only
# occur in specification files, but live in the shared lexer.
_MULTI = (":=", "<=", ">=", "!=", "->", "~>")
_SINGLE = "()[]<>,:=+-*/.|#"

KEYWORDS = frozenset({"type", "create", "update", "delete", "query", "fun", "in"})


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # NAME, INT, REAL, STRING, SYM, KEYWORD, EOF
    text: str
    line: int
    column: int
    value: object = None

    def __str__(self) -> str:
        return self.text if self.kind != "EOF" else "<end of input>"


def _is_digit(ch: str) -> bool:
    """ASCII digits only — str.isdigit() accepts Unicode digits (e.g. '²')
    that int()/float() reject."""
    return "0" <= ch <= "9"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on bad characters."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = column
        if ch == '"':
            j = i + 1
            chars = []
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise ParseError("unterminated string literal", line, start_col)
                if source[j] == "\\" and j + 1 < n:
                    chars.append(source[j + 1])
                    j += 2
                    continue
                chars.append(source[j])
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal", line, start_col)
            text = source[i : j + 1]
            tokens.append(Token("STRING", text, line, start_col, "".join(chars)))
            column += j + 1 - i
            i = j + 1
            continue
        if _is_digit(ch) or (
            ch == "-"
            and i + 1 < n
            and _is_digit(source[i + 1])
            and _negative_ok(tokens)
        ):
            j = i + 1 if ch == "-" else i
            while j < n and _is_digit(source[j]):
                j += 1
            is_real = False
            if j + 1 < n and source[j] == "." and _is_digit(source[j + 1]):
                is_real = True
                j += 1
                while j < n and _is_digit(source[j]):
                    j += 1
            # Scientific notation: 1e9, 2.5E-22 (only when digits follow).
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and _is_digit(source[k]):
                    is_real = True
                    j = k
                    while j < n and _is_digit(source[j]):
                        j += 1
            text = source[i:j]
            kind = "REAL" if is_real else "INT"
            value = float(text) if is_real else int(text)
            tokens.append(Token(kind, text, line, start_col, value))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "KEYWORD" if text in KEYWORDS else "NAME"
            tokens.append(Token(kind, text, line, start_col, text))
            column += j - i
            i = j
            continue
        matched = None
        for multi in _MULTI:
            if source.startswith(multi, i):
                matched = multi
                break
        if matched is not None:
            tokens.append(Token("SYM", matched, line, start_col))
            i += len(matched)
            column += len(matched)
            continue
        if ch in _SINGLE:
            tokens.append(Token("SYM", ch, line, start_col))
            i += 1
            column += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", line, start_col)
    tokens.append(Token("EOF", "", line, column))
    return tokens


def _negative_ok(tokens: list[Token]) -> bool:
    """A '-' starts a negative literal only where a value cannot end."""
    if not tokens:
        return True
    last = tokens[-1]
    if last.kind in ("INT", "REAL", "STRING", "NAME"):
        return False
    # ')' and ']' end a value; '>' does not count — it is far more often a
    # comparison ("pop > -5") than the close of a list term.
    if last.kind == "SYM" and last.text in (")", "]"):
        return False
    return True
