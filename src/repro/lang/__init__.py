"""The generic data definition and manipulation language (Sections 2.3/2.4).

The language has exactly five statement forms::

    type   <identifier> = <type expression>
    create <identifier> : <type expression>
    update <identifier> := <value expression>
    delete <identifier>
    query  <value expression>

Value expressions use the *concrete syntax* derived from the operator syntax
patterns of the loaded specification (``persons select[age > 30]``), so the
parser is completely model independent: it is configured by data, not code —
the paper's central engineering claim.
"""

from repro.lang.lexer import Token, tokenize
from repro.lang.parser import (
    CreateStmt,
    DeleteStmt,
    Parser,
    QueryStmt,
    Statement,
    TypeStmt,
    UpdateStmt,
    split_statements,
)
from repro.lang.interpreter import Interpreter, StatementResult
from repro.lang.printer import format_concrete

__all__ = [
    "Token",
    "tokenize",
    "Parser",
    "Statement",
    "TypeStmt",
    "CreateStmt",
    "UpdateStmt",
    "DeleteStmt",
    "QueryStmt",
    "split_statements",
    "Interpreter",
    "StatementResult",
    "format_concrete",
]
