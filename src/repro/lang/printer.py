"""Concrete-syntax pretty printer — the inverse of the parser.

Renders terms using the operators' syntax patterns, so
``Apply("select", (Var("persons"), fun))`` prints as
``persons select[fun (p: person) (p age) > 30]``.  Operands of postfix
operators are parenthesized unless atomic, which keeps the output
re-parseable: ``parse(print(t)) == t`` (tested property).
"""

from __future__ import annotations

from repro.core.operators import SyntaxPattern
from repro.core.sos import SecondOrderSignature
from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    ObjRef,
    OpRef,
    Term,
    TupleTerm,
    Var,
)
from repro.core.types import Sym, format_type

_ATTR_PATTERN = SyntaxPattern("_ #")


def format_concrete(term: Term, sos: SecondOrderSignature) -> str:
    """Render a term in the concrete syntax of the loaded specification."""
    return _format(term, sos)


def _format(term: Term, sos) -> str:
    if isinstance(term, Literal):
        if isinstance(term.value, str):
            return f'"{term.value}"'
        if isinstance(term.value, bool):
            return "true" if term.value else "false"
        if isinstance(term.value, Sym):
            return term.value.name
        return str(term.value)
    if isinstance(term, (Var, ObjRef, OpRef)):
        return term.name
    if isinstance(term, ListTerm):
        return "<" + ", ".join(_format(i, sos) for i in term.items) + ">"
    if isinstance(term, TupleTerm):
        return "(" + ", ".join(_format(i, sos) for i in term.items) + ")"
    if isinstance(term, Fun):
        params = ", ".join(
            name if ptype is None else f"{name}: {format_type(ptype)}"
            for name, ptype in term.params
        )
        return f"fun ({params}) {_format(term.body, sos)}"
    if isinstance(term, Call):
        args = ", ".join(_format(a, sos) for a in term.args)
        fn = _format(term.fn, sos)
        if not isinstance(term.fn, (Var, ObjRef)):
            fn = f"({fn})"
        return f"{fn}({args})"
    if isinstance(term, Apply):
        return _format_apply(term, sos)
    raise TypeError(f"not a term: {term!r}")


def _format_apply(term: Apply, sos) -> str:
    syntax = sos.syntax_of(term.op)
    if syntax is None and not sos.is_operator(term.op):
        # Attribute access renders as the postfix pattern "_ #".
        if len(term.args) == 1:
            return f"({_operand(term.args[0], sos)} {term.op})"
    if syntax is None:
        if not term.args and sos.is_operator(term.op):
            # Nullary operators (the polymorphic constants ``bottom`` /
            # ``top``) print as a bare name: ``top()`` does not re-parse —
            # the typechecker resolves the constant from the expected
            # argument type, which only bare identifiers get.
            return term.op
        args = ", ".join(_format(a, sos) for a in term.args)
        return f"{term.op}({args})"
    pre = [_operand(a, sos) for a in term.args[: syntax.pre]]
    rest = list(term.args[syntax.pre :])
    pieces = pre + [term.op]
    index = 0
    for style, count in syntax.groups:
        group = rest[index : index + count]
        index += count
        if style == "plain":
            pieces.extend(_operand(a, sos) for a in group)
        else:
            open_sym, close_sym = ("[", "]") if style == "bracket" else ("(", ")")
            inner = ", ".join(_format(a, sos) for a in group)
            pieces[-1] = pieces[-1] + f"{open_sym}{inner}{close_sym}"
    text = " ".join(pieces)
    if syntax.pre == 1 and syntax.groups == (("plain", 1),):
        return f"({text})"  # infix, parenthesized for safety
    return text


def _operand(term: Term, sos) -> str:
    """An operand of a postfix operator: parenthesize unless atomic."""
    text = _format(term, sos)
    if isinstance(term, (Var, ObjRef, Literal, ListTerm, TupleTerm, Call)):
        return text
    if text.startswith("(") and text.endswith(")"):
        return text
    return f"({text})"
