"""Process-wide server telemetry: a metrics registry and its renderers.

Where :mod:`repro.observe` answers "what did *this statement* do?", this
module answers "what is *the server* doing?" — a single process-wide
:class:`MetricsRegistry` of monotonic counters, point-in-time gauges,
and latency :class:`RollingHistogram`\\ s (built on
:class:`repro.observe.Histogram`) that the socket server, the MVCC
engine, the group-commit batcher and the WAL feed continuously.

The registry follows the same zero-overhead discipline as
:data:`repro.observe.ENABLED`: every producer call site guards with
``if telemetry.ENABLED:`` so a process that never starts a server pays
one module-attribute load per site.  :func:`repro.server.net.SOSServer`
enables the registry when it starts; because the registry is
process-wide, multiple in-process servers (the test harness does this)
share one registry and assertions are written as deltas.

Three consumers:

* the ``metrics`` wire op (``Session.server_metrics()``) returns
  :meth:`MetricsRegistry.snapshot` as plain JSON;
* :func:`render_prometheus` renders a snapshot in the Prometheus plain
  text exposition format, served by the ``--metrics-port`` endpoint;
* :func:`render_top` renders two successive snapshots as the live
  terminal screen behind ``python -m repro top repro://host:port``.
"""

from __future__ import annotations

import threading
from typing import Optional

from .observe import Histogram

ENABLED = False
"""True once a server (or a test) called :func:`enable` — fast-path guard."""

_WINDOW = 1024
"""Observations retained per histogram for percentile estimation."""


class RollingHistogram(Histogram):
    """A :class:`repro.observe.Histogram` for long-running processes.

    A per-statement histogram can afford to keep every observation; a
    server-lifetime latency histogram cannot.  This subclass keeps the
    exact total ``count``/``sum`` forever but retains only the most
    recent :data:`_WINDOW` observations, so percentiles describe recent
    behavior and memory stays bounded.
    """

    __slots__ = ("limit", "total_count", "total_sum")

    def __init__(self, limit: int = _WINDOW) -> None:
        super().__init__()
        self.limit = limit
        self.total_count = 0
        self.total_sum = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        self.total_count += 1
        self.total_sum += value
        self.values.append(value)
        if len(self.values) > self.limit:
            # Amortized: shed the oldest half in one slice, not one pop
            # per record.
            del self.values[: self.limit // 2]

    @property
    def count(self) -> int:
        return self.total_count

    def as_dict(self) -> dict:
        if not self.total_count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.total_count,
            "sum": self.total_sum,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.total_sum / self.total_count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe counters, gauges, and histograms, keyed by dotted name
    (``mvcc.commits``, ``wal.fsync_seconds``).

    Producers run on the asyncio loop *and* on ``to_thread`` workers, so
    every mutation takes the registry lock; each is a dict update, never
    contended for long.
    """

    __slots__ = ("_lock", "counters", "gauges", "histograms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, RollingHistogram] = {}

    def incr(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = RollingHistogram()
            hist.record(value)

    def declare(self, counters=(), gauges=(), histograms=()) -> None:
        """Pre-register metric families at their zero values so renderers
        list them before the first observation arrives (idempotent, never
        overwrites recorded values)."""
        with self._lock:
            for name in counters:
                self.counters.setdefault(name, 0)
            for name in gauges:
                self.gauges.setdefault(name, 0.0)
            for name in histograms:
                self.histograms.setdefault(name, RollingHistogram())

    def snapshot(self) -> dict:
        """A JSON-able point-in-time copy of the whole registry."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: hist.as_dict()
                    for name, hist in self.histograms.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self.counters)}"
            f" gauges={len(self.gauges)} histograms={len(self.histograms)}>"
        )


REGISTRY = MetricsRegistry()
"""The process-wide registry every producer feeds."""


def enable() -> None:
    """Arm the registry (idempotent).  Servers call this at startup;
    once on, it stays on — the flag is a producer fast path, not a
    subscription."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def reset() -> None:
    """Clear all recorded values (tests)."""
    REGISTRY.reset()


def incr(name: str, value: float = 1) -> None:
    if ENABLED:
        REGISTRY.incr(name, value)


def gauge(name: str, value: float) -> None:
    if ENABLED:
        REGISTRY.gauge(name, value)


def observe_value(name: str, value: float) -> None:
    if ENABLED:
        REGISTRY.observe(name, value)


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


def _metric_name(name: str) -> str:
    """``mvcc.commit_seconds`` -> ``repro_mvcc_commit_seconds``."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in the Prometheus plain
    text exposition format (version 0.0.4).

    Counters get a ``_total`` suffix; histograms render as summaries
    with ``quantile`` labels plus ``_count``/``_sum`` series.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        stats = snapshot["histograms"][name]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in stats:
                lines.append(f'{metric}{{quantile="{q}"}} {_fmt(stats[key])}')
        lines.append(f"{metric}_count {_fmt(stats.get('count', 0))}")
        lines.append(f"{metric}_sum {_fmt(stats.get('sum', 0.0))}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


# ---------------------------------------------------------------------------
# Terminal monitor rendering (`python -m repro top`)
# ---------------------------------------------------------------------------


def _rate(now: dict, before: Optional[dict], name: str, interval: float) -> float:
    if not before or interval <= 0:
        return 0.0
    delta = now.get("counters", {}).get(name, 0) - before.get(
        "counters", {}
    ).get(name, 0)
    return delta / interval


def render_top(
    snapshot: dict,
    previous: Optional[dict] = None,
    interval: float = 1.0,
    address: str = "",
) -> str:
    """One screenful of the registry: current gauges, totals, rates
    computed against the ``previous`` snapshot, and latency percentiles.

    Pure function of its inputs so it is testable without a terminal;
    ``python -m repro top`` clears the screen and reprints it.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    hists = snapshot.get("histograms", {})
    server = snapshot.get("server", {})

    def total(name: str) -> float:
        return counters.get(name, 0)

    lines = [
        f"repro top — {address or 'server'}"
        + (
            f"  up {server['uptime_seconds']:.0f}s"
            if "uptime_seconds" in server
            else ""
        ),
        "",
        f"sessions   active {gauges.get('server.active_sessions', 0):>6.0f}"
        f"   connections {total('server.connections'):>8.0f}",
        f"txns       open   {gauges.get('mvcc.open_transactions', 0):>6.0f}"
        f"   commits     {total('mvcc.commits'):>8.0f}"
        f"   conflicts {total('mvcc.conflicts'):>8.0f}"
        f"   rollbacks {total('mvcc.rollbacks'):>6.0f}",
        f"statements total  {total('server.statements'):>6.0f}"
        f"   queries     {total('server.queries'):>8.0f}"
        f"   slow      {total('server.slow_queries'):>8.0f}"
        f"   {_rate(snapshot, previous, 'server.statements', interval):>8.1f}/s",
        f"snapshots  taken  {total('mvcc.snapshots'):>6.0f}"
        f"   privatized  {total('mvcc.privatizations'):>8.0f}",
        f"wal        frames {total('wal.frames'):>6.0f}"
        f"   bytes       {total('wal.bytes'):>8.0f}"
        f"   fsyncs    {total('wal.fsyncs'):>8.0f}"
        f"   {_rate(snapshot, previous, 'wal.bytes', interval):>8.1f} B/s",
        f"groupcommit batches {total('group_commit.batches'):>4.0f}"
        f"   commits     {total('group_commit.synced'):>8.0f}"
        f"   mean batch {_mean_batch(counters):>7.2f}",
        f"resilience retries {_retry_total(counters):>5.0f}"
        f"   reconnects  {total('client.reconnects'):>8.0f}"
        f"   journal hits {total('mvcc.journal_hits'):>5.0f}"
        f"   timeouts  {total('server.statement_timeouts'):>6.0f}"
        f"   rejected {total('server.rejected_connections'):>5.0f}",
    ]
    for name, label in (
        ("server.statement_seconds", "statement"),
        ("mvcc.commit_seconds", "commit"),
        ("wal.fsync_seconds", "fsync"),
    ):
        stats = hists.get(name)
        if stats and stats.get("count"):
            lines.append(
                f"{label:<10} p50 {stats['p50'] * 1e3:>9.3f}ms"
                f"   p95 {stats['p95'] * 1e3:>9.3f}ms"
                f"   p99 {stats['p99'] * 1e3:>9.3f}ms"
                f"   n {stats['count']:>6.0f}"
            )
    return "\n".join(lines) + "\n"


def _retry_total(counters: dict) -> float:
    return sum(
        counters.get(f"client.retries.{kind}", 0)
        for kind in ("transport", "conflict", "busy")
    )


def _mean_batch(counters: dict) -> float:
    batches = counters.get("group_commit.batches", 0)
    if not batches:
        return 0.0
    return counters.get("group_commit.synced", 0) / batches
