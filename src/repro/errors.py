"""Exception hierarchy for the second-order-signature framework.

Every error raised by the library derives from :class:`SOSError`, so client
code can catch a single class.  The subclasses follow the processing pipeline:
specification loading, type formation, type checking, parsing, optimization,
and execution.
"""

from __future__ import annotations


class SOSError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecificationError(SOSError):
    """A specification (kinds / type constructors / operators) is malformed."""


class KindError(SpecificationError):
    """A kind is unknown or used inconsistently."""


class LintError(SpecificationError):
    """Static analysis found error-severity diagnostics (strict mode).

    Carries the offending :class:`~repro.lint.LintReport` as ``report``.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class TypeFormationError(SOSError):
    """A type term does not conform to the top-level signature.

    Raised when a type constructor is applied to the wrong number of
    arguments, to arguments of the wrong kind, or when a constructor spec
    (a dependent constraint such as the B-tree attribute constraint) fails.
    """


class TypeCheckError(SOSError):
    """A value term does not typecheck against the bottom-level signature."""


class NoMatchingOperator(TypeCheckError):
    """No functionality of an operator matches the given operand types."""


class ParseError(SOSError):
    """Concrete syntax could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class OptimizationError(SOSError):
    """A rewrite rule or the rule engine failed."""


class ExecutionError(SOSError):
    """Evaluation of a (typechecked) term failed at run time."""


class CatalogError(SOSError):
    """A catalog object is missing or a catalog lookup failed."""


class UpdateError(ExecutionError):
    """An update function was applied outside an update statement, or the
    updated target is not a named object."""


class StorageError(SOSError):
    """A storage structure (B-tree, LSD-tree, tidrel) was used incorrectly."""


class ResourceLimitError(ExecutionError):
    """Evaluation exceeded a configured resource guard (step budget or
    recursion depth) — the statement is aborted instead of hanging."""


class StatementTimeoutError(ResourceLimitError):
    """A statement ran past the server's ``--statement-timeout-ms``
    deadline and was cancelled mid-evaluation.

    Not retryable: a statement that blew its deadline once will very
    likely blow it again; the client should rewrite the query (or the
    operator should raise the limit) rather than loop.
    """

    retryable = False


class ServerBusyError(SOSError):
    """The server refused the request because it is shedding load — the
    connection limit (``--max-connections``) was hit, or the server is
    draining after SIGTERM.

    Always retryable: nothing was executed.  A client with a retry policy
    backs off and tries again; one without surfaces the error as-is.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.retryable = True


class ConflictError(SOSError):
    """A transaction lost a first-committer-wins race.

    Raised at commit time when another transaction committed a write to an
    object (or type name) in this transaction's write set after this
    transaction took its snapshot.  ``names`` lists the conflicting
    objects.  The transaction is rolled back; the statement sequence can
    simply be retried on a fresh transaction (``retryable`` is always
    True — the standard optimistic-concurrency client loop).
    """

    def __init__(self, message: str, names: tuple[str, ...] = ()):
        super().__init__(message)
        self.names = tuple(names)
        self.retryable = True


class ProtocolError(SOSError):
    """A network session's transport failed: the server went away
    mid-request, sent a malformed frame, or the DSN could not be reached."""


def is_retryable(exc: BaseException) -> bool:
    """True for errors a client may safely retry: a lost
    first-committer-wins race (:class:`ConflictError`), a load-shedding
    refusal (:class:`ServerBusyError`), or a transport failure
    (:class:`ProtocolError` — safe only when the request is idempotent or
    carries an idempotency token; the network session guarantees that)."""
    return bool(getattr(exc, "retryable", False)) or isinstance(
        exc, ProtocolError
    )


class StatementError(SOSError):
    """An error while processing one statement of a program.

    Carries the statement index (0-based, ``None`` for single-statement
    entry points), the statement source text, and the pipeline phase where
    the error arose (``parse`` / ``typecheck`` / ``optimize`` / ``execute``).

    Errors are wrapped through :func:`wrap_statement_error`, which builds a
    dynamic subclass of both :class:`StatementError` and the original error
    class — so ``except CatalogError`` and ``except StatementError`` both
    catch a wrapped catalog error.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        source: str | None = None,
        phase: str | None = None,
    ):
        super().__init__(message)
        self.index = index
        self.source = source
        self.phase = phase

    def snippet(self, width: int = 78) -> str | None:
        """The first line of the statement source, trimmed for display."""
        if not self.source:
            return None
        line = self.source.strip().splitlines()[0]
        return line if len(line) <= width else line[: width - 3] + "..."


_WRAPPER_CLASSES: dict[type, type] = {}


def statement_phase_of(exc: BaseException) -> str:
    """The pipeline phase an exception class belongs to."""
    if isinstance(exc, ParseError):
        return "parse"
    if isinstance(exc, (TypeCheckError, TypeFormationError)):
        return "typecheck"
    if isinstance(exc, OptimizationError):
        return "optimize"
    return "execute"


def wrap_statement_error(
    cause: SOSError,
    *,
    index: int | None = None,
    source: str | None = None,
    phase: str | None = None,
) -> "StatementError":
    """Wrap ``cause`` in a :class:`StatementError` that is also an instance
    of the cause's own class (so existing handlers keep working)."""
    if isinstance(cause, StatementError):
        return cause
    wrapper = _WRAPPER_CLASSES.get(type(cause))
    if wrapper is None:
        wrapper = type(
            "Statement" + type(cause).__name__,
            (StatementError, type(cause)),
            {"__init__": StatementError.__init__},
        )
        _WRAPPER_CLASSES[type(cause)] = wrapper
    if phase is None:
        phase = statement_phase_of(cause)
    where = f"statement {index + 1}" if index is not None else "statement"
    err = wrapper(
        f"{where} ({phase}): {cause}", index=index, source=source, phase=phase
    )
    err.__cause__ = cause
    return err
