"""Exception hierarchy for the second-order-signature framework.

Every error raised by the library derives from :class:`SOSError`, so client
code can catch a single class.  The subclasses follow the processing pipeline:
specification loading, type formation, type checking, parsing, optimization,
and execution.
"""

from __future__ import annotations


class SOSError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecificationError(SOSError):
    """A specification (kinds / type constructors / operators) is malformed."""


class KindError(SpecificationError):
    """A kind is unknown or used inconsistently."""


class TypeFormationError(SOSError):
    """A type term does not conform to the top-level signature.

    Raised when a type constructor is applied to the wrong number of
    arguments, to arguments of the wrong kind, or when a constructor spec
    (a dependent constraint such as the B-tree attribute constraint) fails.
    """


class TypeCheckError(SOSError):
    """A value term does not typecheck against the bottom-level signature."""


class NoMatchingOperator(TypeCheckError):
    """No functionality of an operator matches the given operand types."""


class ParseError(SOSError):
    """Concrete syntax could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class OptimizationError(SOSError):
    """A rewrite rule or the rule engine failed."""


class ExecutionError(SOSError):
    """Evaluation of a (typechecked) term failed at run time."""


class CatalogError(SOSError):
    """A catalog object is missing or a catalog lookup failed."""


class UpdateError(ExecutionError):
    """An update function was applied outside an update statement, or the
    updated target is not a named object."""


class StorageError(SOSError):
    """A storage structure (B-tree, LSD-tree, tidrel) was used incorrectly."""
