"""Simulated page manager with I/O accounting.

The original system's structures are disk resident; plan quality in the
paper's optimizer is about page accesses.  Every node/bucket/page of the
storage structures registers with a :class:`PageManager` and reports reads
and writes, so benchmarks can report simulated I/O alongside wall-clock time
— the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class IOStats:
    """Counters of simulated page accesses and real log-file I/O.

    ``reads`` / ``writes`` / ``pages_allocated`` count simulated page
    accesses of the storage structures; ``log_writes`` / ``log_bytes`` /
    ``fsyncs`` count *real* append-file operations of the durability layer
    (WAL frames, checkpoint files), so benchmarks can report the write
    amplification and sync cost of durable mode next to the page numbers.
    """

    reads: int = 0
    writes: int = 0
    pages_allocated: int = 0
    log_writes: int = 0
    log_bytes: int = 0
    fsyncs: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        return IOStats(
            self.reads,
            self.writes,
            self.pages_allocated,
            self.log_writes,
            self.log_bytes,
            self.fsyncs,
        )

    def delta(self, earlier: "IOStats") -> "IOStats":
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.pages_allocated - earlier.pages_allocated,
            self.log_writes - earlier.log_writes,
            self.log_bytes - earlier.log_bytes,
            self.fsyncs - earlier.fsyncs,
        )

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.pages_allocated = 0
        self.log_writes = 0
        self.log_bytes = 0
        self.fsyncs = 0

    def __str__(self) -> str:
        text = (
            f"reads={self.reads} writes={self.writes} "
            f"pages={self.pages_allocated}"
        )
        if self.log_writes or self.fsyncs:
            text += (
                f" log_writes={self.log_writes} log_bytes={self.log_bytes} "
                f"fsyncs={self.fsyncs}"
            )
        return text


class PageManager:
    """Allocates page identifiers and accounts their accesses.

    Structures call :meth:`allocate` per node/bucket, and :meth:`read` /
    :meth:`write` on each access.  There is no buffer pool simulation — each
    access counts once, which is the upper-bound cost model the paper's
    optimizer reasons with.
    """

    __slots__ = ("stats", "_next_page")

    def __init__(self) -> None:
        self.stats = IOStats()
        self._next_page = 0

    def allocate(self) -> int:
        self._next_page += 1
        self.stats.pages_allocated += 1
        return self._next_page

    def free(self, page_id: int) -> None:
        self.stats.pages_allocated -= 1

    def read(self, page_id: int) -> None:
        self.stats.reads += 1

    def write(self, page_id: int) -> None:
        self.stats.writes += 1

    # ---- durability-layer accounting (real file I/O, not simulated pages)

    def log_write(self, nbytes: int) -> None:
        """Account one append to a durability file (WAL frame, checkpoint)."""
        self.stats.log_writes += 1
        self.stats.log_bytes += nbytes

    def fsync(self) -> None:
        """Account one fsync issued by the durability layer."""
        self.stats.fsyncs += 1

    def measure(self) -> "_Measurement":
        """Context manager yielding the I/O delta of the enclosed block."""
        return _Measurement(self)


class _Measurement:
    __slots__ = ("_manager", "_before", "delta")

    def __init__(self, manager: PageManager):
        self._manager = manager
        self._before: IOStats | None = None
        self.delta: IOStats | None = None

    def __enter__(self) -> "_Measurement":
        self._before = self._manager.stats.snapshot()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._before is not None
        self.delta = self._manager.stats.delta(self._before)


GLOBAL_PAGES = PageManager()
"""Default page manager used when a structure is not given its own."""
