"""TID-addressed permanent relations (the ``tidrel`` constructor).

A TidRelation stores tuples with stable tuple identifiers and no particular
order; secondary index structures can be built over it (the paper mentions
"a sequence of tuple identifiers delivered from a secondary index" as one
search method for updates).  Tuples live on simulated pages; a TID is
``(page_id, slot)``, so fetching by TID costs one page read.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.errors import StorageError
from repro.storage.btree import BTree
from repro.storage.io import GLOBAL_PAGES, PageManager
from repro.testing.faults import fault_point
from repro import observe


class TidRelation:
    """A heap file of tuples addressed by TIDs."""

    def __init__(
        self,
        page_capacity: int = 64,
        pages: Optional[PageManager] = None,
        name: str = "tidrel",
    ):
        self.page_capacity = page_capacity
        self.pages = pages if pages is not None else GLOBAL_PAGES
        self.name = name
        self._pages: list[tuple[int, list]] = []
        self._count = 0

    def clone(self) -> "TidRelation":
        """A snapshot copy: pages are copied (same page ids), tuples and the
        page manager are shared.  Costs no simulated I/O."""
        twin = TidRelation.__new__(TidRelation)
        twin.__dict__.update(self.__dict__)
        twin._pages = [(page_id, list(content)) for page_id, content in self._pages]
        return twin

    def insert(self, value) -> tuple[int, int]:
        """Insert a tuple; returns its TID."""
        fault_point("tidrel.insert")
        if not self._pages or len(self._pages[-1][1]) >= self.page_capacity:
            self._pages.append((self.pages.allocate(), []))
        page_index = len(self._pages) - 1
        page_id, content = self._pages[page_index]
        slot = len(content)
        content.append(value)
        self.pages.write(page_id)
        self._count += 1
        return (page_index, slot)

    def stream_insert(self, values: Iterable) -> list[tuple[int, int]]:
        return [self.insert(v) for v in values]

    def fetch(self, tid: tuple[int, int]):
        """The tuple stored at ``tid`` (one page read)."""
        page_index, slot = tid
        try:
            page_id, content = self._pages[page_index]
            value = content[slot]
        except IndexError:
            raise StorageError(f"invalid TID: {tid}") from None
        if value is None:
            raise StorageError(f"TID {tid} was deleted")
        self.pages.read(page_id)
        if observe.ENABLED:
            observe.incr(f"{self.name}.fetches")
        return value

    def delete(self, tid: tuple[int, int]) -> None:
        """Delete the tuple at ``tid`` (slot is tombstoned)."""
        fault_point("tidrel.delete")
        page_index, slot = tid
        try:
            page_id, content = self._pages[page_index]
            if content[slot] is None:
                raise StorageError(f"TID {tid} was already deleted")
            content[slot] = None
        except IndexError:
            raise StorageError(f"invalid TID: {tid}") from None
        self.pages.write(page_id)
        self._count -= 1

    def replace(self, tid: tuple[int, int], value) -> None:
        """Overwrite the tuple at ``tid`` in place."""
        fault_point("tidrel.replace")
        page_index, slot = tid
        try:
            page_id, content = self._pages[page_index]
            if content[slot] is None:
                raise StorageError(f"TID {tid} was deleted")
            content[slot] = value
        except IndexError:
            raise StorageError(f"invalid TID: {tid}") from None
        self.pages.write(page_id)

    def scan(self) -> Iterator:
        """All live tuples (page order) — the ``feed`` path."""
        for page_id, content in self._pages:
            self.pages.read(page_id)
            if observe.ENABLED:
                observe.incr(f"{self.name}.page_reads")
            yield from (value for value in content if value is not None)

    def scan_with_tids(self) -> Iterator[tuple[tuple[int, int], object]]:
        for page_index, (page_id, content) in enumerate(self._pages):
            self.pages.read(page_id)
            for slot, value in enumerate(content):
                if value is not None:
                    yield (page_index, slot), value

    def __iter__(self) -> Iterator:
        return self.scan()

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"TidRelation({self._count} tuples)"


class SecondaryIndex:
    """A secondary B-tree index over a :class:`TidRelation`.

    Maps ``key(tuple)`` to TIDs; searches return TID streams which are then
    dereferenced against the heap (each dereference costs one page read) —
    the classic unclustered index access path.
    """

    def __init__(
        self,
        relation: TidRelation,
        key: Callable,
        order: int = 32,
        pages: Optional[PageManager] = None,
        name: str = "secondary",
    ):
        self.relation = relation
        self.key = key
        self._tree = BTree(
            key=lambda entry: entry[0],
            order=order,
            pages=pages if pages is not None else relation.pages,
            name=name,
        )

    def clone(self) -> "SecondaryIndex":
        """A snapshot copy of the index tree; the underlying heap relation
        reference is shared (the transaction layer restores heap content in
        place, so the reference stays valid across rollbacks)."""
        twin = SecondaryIndex.__new__(SecondaryIndex)
        twin.__dict__.update(self.__dict__)
        twin._tree = self._tree.clone()
        return twin

    def build(self) -> None:
        """Index every live tuple currently in the relation."""
        for tid, value in self.relation.scan_with_tids():
            self._tree.insert((self.key(value), tid))

    def insert(self, tid: tuple[int, int], value) -> None:
        self._tree.insert((self.key(value), tid))

    def delete(self, tid: tuple[int, int], value) -> bool:
        return self._tree.delete((self.key(value), tid))

    def tids_in_range(self, low, high) -> Iterator[tuple[int, int]]:
        """TIDs whose key lies in [low, high]."""
        return (tid for _, tid in self._tree.range_search(low, high))

    def fetch_range(self, low, high) -> Iterator:
        """Tuples (dereferenced) whose key lies in [low, high]."""
        return (self.relation.fetch(tid) for tid in self.tids_in_range(low, high))

    def __len__(self) -> int:
        return len(self._tree)
