"""Storage substrates for the representation level (paper Section 4).

The paper assumes disk-resident structures; we build page-structured
in-memory equivalents with a simulated page manager that counts page reads
and writes (:mod:`repro.storage.io`), so the *cost shape* that drives plan
choice is observable:

* :mod:`repro.storage.btree` — a clustering B+-tree over tuples, keyed by an
  attribute or by an arbitrary key function (both constructor variants of
  the paper);
* :mod:`repro.storage.lsdtree` — an LSD-tree [HeSW89] over rectangles via
  the 4-d corner transformation, with point and overlap search;
* :mod:`repro.storage.tidrel` — a TID-addressed permanent relation;
* :mod:`repro.storage.srel` — temporary relations collected from streams.
"""

from repro.storage.io import IOStats, PageManager
from repro.storage.btree import BTree, BOTTOM_KEY, TOP_KEY
from repro.storage.lsdtree import LSDTree
from repro.storage.srel import SRel
from repro.storage.tidrel import TidRelation

__all__ = [
    "IOStats",
    "PageManager",
    "BTree",
    "BOTTOM_KEY",
    "TOP_KEY",
    "LSDTree",
    "SRel",
    "TidRelation",
]
