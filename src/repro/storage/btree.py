"""A clustering B+-tree over tuples (the ``btree`` constructor of Section 4).

The paper gives two constructor variants and this class covers both:

* ``btree(tuple, attrname, dtype)`` — key is one attribute; pass
  ``key=lambda t: t.attr("pop")``;
* ``btree(tuple, fun (t: tuple) expr)`` — key is an arbitrary derived value;
  pass any callable.

The tree is a textbook B+-tree: tuples live in the leaves (clustering
structure), leaves are chained for scans, internal nodes hold separator
keys.  Duplicate keys are allowed.  Deletion rebalances by borrowing from or
merging with siblings.  Every node is a simulated page; reads and writes are
accounted through a :class:`~repro.storage.io.PageManager`.

Update operators of Section 6 map to: :meth:`insert`, :meth:`stream_insert`,
:meth:`delete_tuples`, :meth:`modify_tuples` (in situ, key must not change)
and :meth:`re_insert_tuples` (delete + reinsert, for key updates).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import StorageError
from repro.storage.io import GLOBAL_PAGES, PageManager
from repro.testing.faults import fault_point
from repro import observe


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


BOTTOM_KEY = _Sentinel("bottom")
"""Smaller than every key — the polymorphic constant ``bottom``."""

TOP_KEY = _Sentinel("top")
"""Greater than every key — the polymorphic constant ``top``."""


class _Node:
    __slots__ = ("leaf", "keys", "values", "children", "next", "page_id")

    def __init__(self, leaf: bool, page_id: int):
        self.leaf = leaf
        self.keys: list = []
        self.values: list = []  # leaf only: the tuples
        self.children: list["_Node"] = []  # internal only
        self.next: Optional["_Node"] = None  # leaf chain
        self.page_id = page_id


def _clone_node(node: _Node, leaves: list) -> _Node:
    """Copy a subtree (same page ids, shared tuple values), collecting the
    cloned leaves in tree order so the caller can rebuild the leaf chain."""
    twin = _Node(leaf=node.leaf, page_id=node.page_id)
    twin.keys = list(node.keys)
    if node.leaf:
        twin.values = list(node.values)
        leaves.append(twin)
    else:
        twin.children = [_clone_node(child, leaves) for child in node.children]
    return twin


class BTree:
    """A B+-tree of tuples keyed by ``key(tuple)``.

    ``order`` is the maximum number of keys per node (>= 3); nodes other
    than the root keep at least ``order // 2`` keys.
    """

    def __init__(
        self,
        key: Callable,
        order: int = 32,
        pages: Optional[PageManager] = None,
        name: str = "btree",
    ):
        if order < 3:
            raise StorageError("B-tree order must be at least 3")
        self.key = key
        self.order = order
        self.pages = pages if pages is not None else GLOBAL_PAGES
        self.name = name
        self._root = _Node(leaf=True, page_id=self.pages.allocate())
        self._count = 0

    def _read_node(self, node: _Node) -> None:
        """Account one node access on a search path (page read plus, when
        metric collection is armed, the per-structure counter)."""
        self.pages.read(node.page_id)
        if observe.ENABLED:
            observe.incr(f"{self.name}.node_reads")

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        h = 1
        node = self._root
        while not node.leaf:
            h += 1
            node = node.children[0]
        return h

    def scan(self) -> Iterator:
        """All tuples in key order (leaf chain scan) — the ``feed`` path."""
        node = self._leftmost_leaf()
        while node is not None:
            self._read_node(node)
            yield from node.values
            node = node.next

    def range_search(self, low, high) -> Iterator:
        """All tuples with ``low <= key <= high`` — the ``range`` operator.

        ``BOTTOM_KEY`` / ``TOP_KEY`` open the respective end (halfranges).
        """
        if low is BOTTOM_KEY:
            node: Optional[_Node] = self._leftmost_leaf()
            index = 0
        else:
            node, index = self._find_leaf(low)
        while node is not None:
            self._read_node(node)
            while index < len(node.keys):
                key = node.keys[index]
                if high is not TOP_KEY and key > high:
                    return
                yield node.values[index]
                index += 1
            node = node.next
            index = 0

    def exact_search(self, key) -> Iterator:
        """All tuples whose key equals ``key``."""
        return self.range_search(key, key)

    def prefix_search(self, prefix: tuple) -> Iterator:
        """All tuples whose (composite) key starts with ``prefix``.

        For multi-attribute B-trees (keys are tuples, ordered
        lexicographically — the structure the paper mentions in Section 4:
        "ordered first by one attribute, then for equal values by a second
        attribute"), this answers queries that fix a *prefix* of the
        indexing attributes.  An empty prefix scans everything.
        """
        k = len(prefix)
        if k == 0:
            yield from self.scan()
            return
        node, index = self._find_leaf(_PrefixBound(prefix))
        while node is not None:
            self._read_node(node)
            while index < len(node.keys):
                key = node.keys[index]
                head = key[:k] if isinstance(key, tuple) else (key,)[:k]
                if head != tuple(prefix):
                    return
                yield node.values[index]
                index += 1
            node = node.next
            index = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        self._read_node(node)
        while not node.leaf:
            node = node.children[0]
            self._read_node(node)
        return node

    def _find_leaf(self, key) -> tuple[_Node, int]:
        """The first leaf position with stored key >= ``key``."""
        node = self._root
        self._read_node(node)
        while not node.leaf:
            index = bisect_left(node.keys, key)
            node = node.children[index]
            self._read_node(node)
        return node, bisect_left(node.keys, key)

    # ----------------------------------------------------------- snapshots

    def clone(self) -> "BTree":
        """A structural copy sharing keys, tuples, the key function and the
        page manager (page ids included — a clone is a logical snapshot of
        the same disk pages, so taking it costs no simulated I/O)."""
        twin = BTree.__new__(BTree)
        twin.__dict__.update(self.__dict__)
        leaves: list[_Node] = []
        twin._root = _clone_node(self._root, leaves)
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
        if leaves:
            leaves[-1].next = None
        return twin

    # ------------------------------------------------------------ insertion

    def insert(self, value) -> None:
        """Insert one tuple (the ``insert`` update function)."""
        fault_point("btree.insert")
        key = self.key(value)
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(leaf=False, page_id=self.pages.allocate())
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self.pages.write(new_root.page_id)
        self._count += 1

    def stream_insert(self, values: Iterable) -> None:
        """Insert every tuple of a stream (the ``stream_insert`` operator)."""
        for value in values:
            self.insert(value)

    def bulk_load(self, values: Iterable) -> None:
        """Build the tree bottom-up from (not necessarily sorted) tuples.

        Only valid on an empty tree.  The classical bulk-loading algorithm:
        sort once, pack leaves left to right at ~2/3 fill, then build each
        internal level from the one below — O(n log n) for the sort plus one
        write per page, instead of one descent per tuple.
        """
        if self._count:
            raise StorageError("bulk_load requires an empty B-tree")
        items = sorted(((self.key(v), v) for v in values), key=lambda kv: kv[0])
        if not items:
            return
        fill = max(2, (2 * self.order) // 3)
        # Leaf level.
        self.pages.free(self._root.page_id)
        leaves: list[_Node] = []
        for start in range(0, len(items), fill):
            chunk = items[start : start + fill]
            leaf = _Node(leaf=True, page_id=self.pages.allocate())
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
            self.pages.write(leaf.page_id)
        # A final underfull leaf merges with or rebalances against its left
        # sibling: total <= order fits one leaf; otherwise an even split
        # leaves both at >= order/2.
        if len(leaves) > 1 and len(leaves[-1].keys) < self._min_keys():
            last = leaves.pop()
            prev = leaves[-1]
            keys = prev.keys + last.keys
            vals = prev.values + last.values
            self.pages.free(last.page_id)
            if len(keys) <= self.order:
                prev.keys, prev.values = keys, vals
                prev.next = None
                self.pages.write(prev.page_id)
            else:
                half = len(keys) // 2
                prev.keys, prev.values = keys[:half], vals[:half]
                fresh = _Node(leaf=True, page_id=self.pages.allocate())
                fresh.keys, fresh.values = keys[half:], vals[half:]
                prev.next = fresh
                leaves.append(fresh)
                self.pages.write(prev.page_id)
                self.pages.write(fresh.page_id)
        # Internal levels.
        level: list[_Node] = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            group = self.order  # children per internal node (keys = group-1)
            for start in range(0, len(level), group):
                children = level[start : start + group]
                node = _Node(leaf=False, page_id=self.pages.allocate())
                node.children = children
                node.keys = [self._subtree_min(c) for c in children[1:]]
                parents.append(node)
                self.pages.write(node.page_id)
            # Keep the last internal node legal: merge with the previous one
            # if everything fits, otherwise split the children evenly.
            if len(parents) > 1 and len(parents[-1].children) < self._min_keys() + 1:
                last = parents.pop()
                prev = parents[-1]
                children = prev.children + last.children
                self.pages.free(last.page_id)
                if len(children) <= self.order + 1:
                    prev.children = children
                    prev.keys = [self._subtree_min(c) for c in children[1:]]
                    self.pages.write(prev.page_id)
                else:
                    half = len(children) // 2
                    prev.children = children[:half]
                    prev.keys = [self._subtree_min(c) for c in prev.children[1:]]
                    fresh = _Node(leaf=False, page_id=self.pages.allocate())
                    fresh.children = children[half:]
                    fresh.keys = [self._subtree_min(c) for c in fresh.children[1:]]
                    parents.append(fresh)
                    self.pages.write(prev.page_id)
                    self.pages.write(fresh.page_id)
            level = parents
        self._root = level[0]
        self._count = len(items)

    def _subtree_min(self, node: _Node):
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def _insert(self, node: _Node, key, value):
        if node.leaf:
            index = bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self.pages.write(node.page_id)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect_left(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        self.pages.write(node.page_id)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(leaf=True, page_id=self.pages.allocate())
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        self.pages.write(node.page_id)
        self.pages.write(right.page_id)
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Node(leaf=False, page_id=self.pages.allocate())
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self.pages.write(node.page_id)
        self.pages.write(right.page_id)
        return separator, right

    # ------------------------------------------------------------- deletion

    def delete(self, value) -> bool:
        """Delete one tuple (found by key, then by equality).

        Returns whether a matching tuple was present.
        """
        fault_point("btree.delete")
        key = self.key(value)
        removed = self._delete(self._root, key, value)
        if removed:
            self._count -= 1
            if not self._root.leaf and len(self._root.children) == 1:
                old = self._root
                self._root = self._root.children[0]
                self.pages.free(old.page_id)
        return removed

    def delete_tuples(self, values: Iterable) -> int:
        """Delete every tuple of a stream (the B-tree ``delete`` operator).

        The stream is normally produced by a search on this same tree; it is
        materialized first so deletion does not disturb the scan — this
        stands in for the paper's "position still available / tuple fixed on
        a buffer page" stream-connection assumption.
        """
        deleted = 0
        for value in list(values):
            if self.delete(value):
                deleted += 1
        return deleted

    def _min_keys(self) -> int:
        return self.order // 2

    def _delete(self, node: _Node, key, value) -> bool:
        if node.leaf:
            self.pages.read(node.page_id)
            index = bisect_left(node.keys, key)
            while index < len(node.keys) and node.keys[index] == key:
                if node.values[index] == value:
                    del node.keys[index]
                    del node.values[index]
                    self.pages.write(node.page_id)
                    return True
                index += 1
            return False
        self.pages.read(node.page_id)
        index = bisect_left(node.keys, key)
        # Duplicates may straddle children; try successive children whose
        # range can still contain the key.
        while index < len(node.children):
            child = node.children[index]
            if self._delete(child, key, value):
                self._rebalance(node, index)
                return True
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            index += 1
        return False

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        min_keys = self._min_keys()
        if len(child.keys) >= min_keys:
            return
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        if left is not None and len(left.keys) > min_keys:
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and len(right.keys) > min_keys:
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        elif right is not None:
            self._merge(parent, index, child, right)

    def _borrow_from_left(self, parent, index, left, child) -> None:
        if child.leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self.pages.write(parent.page_id)
        self.pages.write(left.page_id)
        self.pages.write(child.page_id)

    def _borrow_from_right(self, parent, index, child, right) -> None:
        if child.leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self.pages.write(parent.page_id)
        self.pages.write(right.page_id)
        self.pages.write(child.page_id)

    def _merge(self, parent, left_index, left, right) -> None:
        if left.leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_index]
        del parent.children[left_index + 1]
        self.pages.free(right.page_id)
        self.pages.write(parent.page_id)
        self.pages.write(left.page_id)

    # ---------------------------------------------------------------- updates

    def modify_tuples(self, values: Iterable, fn: Callable) -> int:
        """Modify tuples in situ (the B-tree ``modify`` operator).

        ``fn`` maps a stream of tuples to a stream of modified tuples (as in
        the paper, where it is composed of stream operators like
        ``replace``).  Keys must be unchanged; use :meth:`re_insert_tuples`
        for key updates.
        """
        originals = list(values)
        modified = list(fn(iter(originals)))
        if len(modified) != len(originals):
            raise StorageError("modify function changed the number of tuples")
        changed = 0
        for old, new in zip(originals, modified):
            fault_point("btree.modify")
            old_key = self.key(old)
            new_key = self.key(new)
            if old_key != new_key:
                raise StorageError(
                    "modify must not change the key; use re_insert"
                )
            if self._replace_in_situ(old_key, old, new):
                changed += 1
            else:
                raise StorageError("tuple to modify not found in B-tree")
        return changed

    def re_insert_tuples(self, values: Iterable, fn: Callable) -> int:
        """Key updates: delete each tuple and reinsert its modified version
        (the B-tree ``re_insert`` operator)."""
        originals = list(values)
        modified = list(fn(iter(originals)))
        if len(modified) != len(originals):
            raise StorageError("re_insert function changed the number of tuples")
        for old, new in zip(originals, modified):
            fault_point("btree.re_insert")
            if not self.delete(old):
                raise StorageError("tuple to re_insert not found in B-tree")
            self.insert(new)
        return len(originals)

    def _replace_in_situ(self, key, old, new) -> bool:
        node, index = self._find_leaf(key)
        while node is not None:
            while index < len(node.keys) and node.keys[index] == key:
                if node.values[index] == old:
                    node.values[index] = new
                    self.pages.write(node.page_id)
                    return True
                index += 1
            if index < len(node.keys):
                return False
            node = node.next
            index = 0
            if node is not None:
                self.pages.read(node.page_id)
        return False

    # --------------------------------------------------------------- checking

    def check_invariants(self) -> None:
        """Raise :class:`StorageError` if any B+-tree invariant is violated.

        Used by the property-based tests: sorted keys, balanced depth, node
        fill factors, separator correctness, complete leaf chain, and the
        stored count.
        """
        leaves: list[_Node] = []
        self._check_node(self._root, depth=0, leaves=leaves, is_root=True)
        depths = {self._leaf_depth(leaf) for leaf in leaves}
        if len(depths) > 1:
            raise StorageError("leaves at differing depths")
        chained = []
        node = self._leftmost_leaf_unchecked()
        while node is not None:
            chained.append(node)
            node = node.next
        if [id(leaf) for leaf in chained] != [id(leaf) for leaf in leaves]:
            raise StorageError("leaf chain does not match tree order")
        total = sum(len(leaf.keys) for leaf in leaves)
        if total != self._count:
            raise StorageError(f"count mismatch: {total} != {self._count}")
        keys = [key for leaf in leaves for key in leaf.keys]
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise StorageError("keys are not globally sorted")

    def _leftmost_leaf_unchecked(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    def _leaf_depth(self, leaf: _Node) -> int:
        """Depth of a leaf found by identity search (invariant checking)."""
        def walk(node: _Node, depth: int):
            if node.leaf:
                return depth if node is leaf else None
            for child in node.children:
                found = walk(child, depth + 1)
                if found is not None:
                    return found
            return None

        depth = walk(self._root, 0)
        if depth is None:
            raise StorageError("leaf not reachable from the root")
        return depth

    def _check_node(self, node: _Node, depth: int, leaves: list, is_root: bool) -> None:
        min_keys = self._min_keys()
        if not is_root and len(node.keys) < min_keys:
            raise StorageError(f"underfull node at depth {depth}")
        if len(node.keys) > self.order:
            raise StorageError(f"overfull node at depth {depth}")
        if any(node.keys[i] > node.keys[i + 1] for i in range(len(node.keys) - 1)):
            raise StorageError("unsorted node keys")
        if node.leaf:
            if len(node.keys) != len(node.values):
                raise StorageError("leaf key/value length mismatch")
            leaves.append(node)
            return
        if len(node.children) != len(node.keys) + 1:
            raise StorageError("internal child count mismatch")
        for i, child in enumerate(node.children):
            self._check_node(child, depth + 1, leaves, is_root=False)
            child_keys = self._subtree_keys(child)
            if not child_keys:
                continue
            if i > 0 and child_keys[0] < node.keys[i - 1]:
                raise StorageError("separator violated on the left")
            if i < len(node.keys) and child_keys[-1] > node.keys[i]:
                raise StorageError("separator violated on the right")

    def _subtree_keys(self, node: _Node) -> list:
        if node.leaf:
            return node.keys
        out: list = []
        for child in node.children:
            out.extend(self._subtree_keys(child))
        return out


class _PrefixBound:
    """A lower bound that sorts immediately before every composite key
    sharing the given prefix (used by :meth:`BTree.prefix_search`).

    Comparisons with stored tuple keys go through the reflected operators:
    ``stored < bound`` falls back to ``bound.__gt__(stored)``.
    """

    __slots__ = ("prefix",)

    def __init__(self, prefix: tuple):
        self.prefix = tuple(prefix)

    def _head(self, other) -> tuple:
        if isinstance(other, tuple):
            return other[: len(self.prefix)]
        return (other,)[: len(self.prefix)]

    def __lt__(self, other) -> bool:
        # bound < stored  <=>  prefix <= stored-head
        return self.prefix <= self._head(other)

    def __gt__(self, other) -> bool:
        # bound > stored  <=>  stored-head < prefix
        return self._head(other) < self.prefix

    def __le__(self, other) -> bool:
        return self.__lt__(other)

    def __ge__(self, other) -> bool:
        return self.__gt__(other)

    def __eq__(self, other) -> bool:
        return False

    def __repr__(self) -> str:
        return f"_PrefixBound({self.prefix!r})"
