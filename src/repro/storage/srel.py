"""Temporary relations (the ``srel`` constructor of Section 4).

An SRel is a materialized sequence of tuples — what the ``collect`` operator
produces when a stream has to be used more than once or kept around.  It is
page-structured for I/O accounting: tuples are appended to fixed-capacity
pages, and scans read each page once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.storage.io import GLOBAL_PAGES, PageManager
from repro.testing.faults import fault_point


class SRel:
    """A temporary relation collected from a stream."""

    def __init__(
        self,
        tuples: Optional[Iterable] = None,
        page_capacity: int = 64,
        pages: Optional[PageManager] = None,
        name: str = "srel",
    ):
        self.page_capacity = page_capacity
        self.pages = pages if pages is not None else GLOBAL_PAGES
        self.name = name
        self._pages: list[tuple[int, list]] = []
        if tuples is not None:
            for t in tuples:
                self.append(t)

    def clone(self) -> "SRel":
        """A snapshot copy: pages copied (same page ids), tuples and the
        page manager shared.  Costs no simulated I/O."""
        twin = SRel.__new__(SRel)
        twin.__dict__.update(self.__dict__)
        twin._pages = [(page_id, list(content)) for page_id, content in self._pages]
        return twin

    def append(self, value) -> None:
        fault_point("srel.append")
        if not self._pages or len(self._pages[-1][1]) >= self.page_capacity:
            self._pages.append((self.pages.allocate(), []))
        page_id, content = self._pages[-1]
        content.append(value)
        self.pages.write(page_id)

    def insert(self, value) -> None:
        """Alias of :meth:`append` — the generic ``insert`` update function
        of the algebra calls ``insert`` on every structure."""
        self.append(value)

    def stream_insert(self, values: Iterable) -> None:
        for value in values:
            self.append(value)

    def scan(self) -> Iterator:
        for page_id, content in self._pages:
            self.pages.read(page_id)
            yield from content

    def __iter__(self) -> Iterator:
        return self.scan()

    def __len__(self) -> int:
        return sum(len(content) for _, content in self._pages)

    def __repr__(self) -> str:
        return f"SRel({len(self)} tuples)"
