"""An LSD-tree [HeSW89] over rectangles (the ``lsdtree`` constructor).

The Local Split Decision tree is a binary directory over a multidimensional
data space whose leaves point to fixed-capacity buckets; split positions are
chosen locally per bucket (here: the median of the stored values in the
split dimension, cycling through dimensions along each path).

Rectangles are stored via the standard 4-d corner transformation: a
rectangle ``[x1, x2] x [y1, y2]`` becomes the point ``(x1, y1, x2, y2)``.
The two search operators of the paper become 4-d range queries:

* ``point_search(p)`` — all rectangles containing ``p``:
  ``x1 <= p.x <= x2`` and ``y1 <= p.y <= y2``, i.e. the query box
  ``(-inf, -inf, p.x, p.y) .. (p.x, p.y, +inf, +inf)``;
* ``overlap_search(r)`` — all rectangles intersecting ``r``:
  ``x1 <= r.xmax``, ``x2 >= r.xmin``, ``y1 <= r.ymax``, ``y2 >= r.ymin``.

Each entry carries a payload (the indexed tuple).  Buckets are simulated
pages; directory nodes live in memory (as in the original proposal, where
the directory is kept in main memory).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import StorageError
from repro.geometry import Point, Rect
from repro.storage.io import GLOBAL_PAGES, PageManager
from repro.testing.faults import fault_point
from repro import observe

_DIMS = 4
_NEG_INF = -math.inf
_POS_INF = math.inf


def _to_4d(rect: Rect) -> tuple[float, float, float, float]:
    return (rect.xmin, rect.ymin, rect.xmax, rect.ymax)


class _Bucket:
    __slots__ = ("entries", "page_id")

    def __init__(self, page_id: int):
        self.entries: list[tuple[tuple, Rect, object]] = []
        self.page_id = page_id


class _DirNode:
    """An internal directory node: split ``dim`` at ``position``."""

    __slots__ = ("dim", "position", "left", "right")

    def __init__(self, dim: int, position: float, left, right):
        self.dim = dim
        self.position = position
        self.left = left
        self.right = right


class LSDTree:
    """An LSD-tree of (rectangle, tuple) entries.

    ``key`` maps a tuple to its rectangle — the function-valued constructor
    argument of ``lsdtree(tuple, fun (t) bbox(t region))``.
    """

    def __init__(
        self,
        key: Callable,
        bucket_capacity: int = 32,
        pages: Optional[PageManager] = None,
        name: str = "lsdtree",
    ):
        if bucket_capacity < 2:
            raise StorageError("LSD-tree bucket capacity must be at least 2")
        self.key = key
        self.bucket_capacity = bucket_capacity
        self.pages = pages if pages is not None else GLOBAL_PAGES
        self.name = name
        self._root: _Bucket | _DirNode = _Bucket(self.pages.allocate())
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------ snapshots

    def clone(self) -> "LSDTree":
        """A structural copy sharing entries, the key function and the page
        manager (same page ids).  Costs no simulated I/O."""
        twin = LSDTree.__new__(LSDTree)
        twin.__dict__.update(self.__dict__)
        twin._root = _clone_subtree(self._root)
        return twin

    # ------------------------------------------------------------- insertion

    def insert(self, value) -> None:
        """Insert one tuple; its rectangle comes from the key function."""
        fault_point("lsdtree.insert")
        rect = self.key(value)
        if not isinstance(rect, Rect):
            raise StorageError(f"LSD-tree key function must yield a rect, got {rect!r}")
        point = _to_4d(rect)
        self._root = self._insert(self._root, point, rect, value, depth=0)
        self._count += 1

    def stream_insert(self, values: Iterable) -> None:
        for value in values:
            self.insert(value)

    def _insert(self, node, point, rect, value, depth: int):
        if isinstance(node, _Bucket):
            node.entries.append((point, rect, value))
            self.pages.write(node.page_id)
            if len(node.entries) > self.bucket_capacity:
                return self._split(node, depth)
            return node
        if point[node.dim] <= node.position:
            node.left = self._insert(node.left, point, rect, value, depth + 1)
        else:
            node.right = self._insert(node.right, point, rect, value, depth + 1)
        return node

    def _split(self, bucket: _Bucket, depth: int) -> _DirNode:
        """The local split decision: cycle dimensions along the path, split
        at the median coordinate of the bucket's entries."""
        for probe in range(_DIMS):
            dim = (depth + probe) % _DIMS
            coords = sorted(entry[0][dim] for entry in bucket.entries)
            if coords[0] == coords[-1]:
                continue  # no split possible in this dimension
            position = coords[(len(coords) - 1) // 2]
            if position == coords[-1]:
                # Duplicate-heavy bucket: the median equals the maximum, which
                # would leave the right side empty.  Split below the maximum
                # instead (the dimension is splittable, so one exists).
                position = max(c for c in coords if c < coords[-1])
            left_entries = [e for e in bucket.entries if e[0][dim] <= position]
            right_entries = [e for e in bucket.entries if e[0][dim] > position]
            break
        else:
            # All entries identical in every dimension: overflow the bucket.
            return _DirNode(
                depth % _DIMS, bucket.entries[0][0][depth % _DIMS], bucket, _make_empty(self)
            )
        left = _Bucket(bucket.page_id)
        left.entries = left_entries
        right = _Bucket(self.pages.allocate())
        right.entries = right_entries
        self.pages.write(left.page_id)
        self.pages.write(right.page_id)
        return _DirNode(dim, position, left, right)

    # --------------------------------------------------------------- queries

    def scan(self) -> Iterator:
        """All stored tuples (bucket order)."""
        yield from (value for _, _, value in self._entries(self._root))

    def _entries(self, node) -> Iterator:
        if isinstance(node, _Bucket):
            self.pages.read(node.page_id)
            if observe.ENABLED:
                observe.incr(f"{self.name}.node_reads")
            yield from node.entries
            return
        yield from self._entries(node.left)
        yield from self._entries(node.right)

    def point_search(self, p: Point) -> Iterator:
        """All tuples whose rectangle contains ``p`` (``point_search``)."""
        low = (_NEG_INF, _NEG_INF, p.x, p.y)
        high = (p.x, p.y, _POS_INF, _POS_INF)
        return self._range(low, high)

    def overlap_search(self, query: Rect) -> Iterator:
        """All tuples whose rectangle intersects ``query``
        (``overlap_search``)."""
        low = (_NEG_INF, _NEG_INF, query.xmin, query.ymin)
        high = (query.xmax, query.ymax, _POS_INF, _POS_INF)
        return self._range(low, high)

    def _range(self, low: tuple, high: tuple) -> Iterator:
        """4-d range query over the corner-transformed points."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Bucket):
                self.pages.read(node.page_id)
                if observe.ENABLED:
                    observe.incr(f"{self.name}.node_reads")
                for point, _rect, value in node.entries:
                    if all(low[d] <= point[d] <= high[d] for d in range(_DIMS)):
                        yield value
                continue
            if low[node.dim] <= node.position:
                stack.append(node.left)
            if high[node.dim] > node.position:
                stack.append(node.right)

    # -------------------------------------------------------------- deletion

    def delete(self, value) -> bool:
        """Delete one tuple (found via its rectangle, then equality)."""
        fault_point("lsdtree.delete")
        rect = self.key(value)
        point = _to_4d(rect)
        node = self._root
        while isinstance(node, _DirNode):
            node = node.left if point[node.dim] <= node.position else node.right
        self.pages.read(node.page_id)
        for i, (_, _, stored) in enumerate(node.entries):
            if stored == value:
                del node.entries[i]
                self.pages.write(node.page_id)
                self._count -= 1
                return True
        return False

    def delete_tuples(self, values: Iterable) -> int:
        deleted = 0
        for value in list(values):
            if self.delete(value):
                deleted += 1
        return deleted

    # --------------------------------------------------------------- checking

    def check_invariants(self) -> None:
        """Every entry must be reachable through the directory and lie on
        the correct side of every split on its path."""
        count = self._check(self._root, [(_NEG_INF, _POS_INF)] * _DIMS)
        if count != self._count:
            raise StorageError(f"count mismatch: {count} != {self._count}")

    def _check(self, node, bounds: list[tuple[float, float]]) -> int:
        if isinstance(node, _Bucket):
            for point, rect, _value in node.entries:
                if _to_4d(rect) != point:
                    raise StorageError("stored point does not match rectangle")
                for d in range(_DIMS):
                    low, high = bounds[d]
                    # Routing sends coordinates <= split left and > split
                    # right, so every region is the half-open box (low, high].
                    if not (low < point[d] <= high):
                        raise StorageError("entry outside its directory region")
            return len(node.entries)
        left_bounds = list(bounds)
        right_bounds = list(bounds)
        low, high = bounds[node.dim]
        left_bounds[node.dim] = (low, node.position)
        right_bounds[node.dim] = (node.position, high)
        total = self._check(node.left, left_bounds)
        total += self._check(node.right, right_bounds)
        return total


def _make_empty(tree: LSDTree) -> _Bucket:
    return _Bucket(tree.pages.allocate())


def _clone_subtree(node):
    """Copy a directory subtree; buckets keep their page ids and share the
    stored (point, rect, tuple) entries."""
    if isinstance(node, _Bucket):
        twin = _Bucket(node.page_id)
        twin.entries = list(node.entries)
        return twin
    return _DirNode(
        node.dim, node.position, _clone_subtree(node.left), _clone_subtree(node.right)
    )
