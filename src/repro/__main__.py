"""Command-line front end: run programs or an interactive session.

Usage::

    python -m repro                      # interactive REPL (full system)
    python -m repro program.sos          # execute a program file
    python -m repro --model program.sos  # model-level execution, no optimizer
    python -m repro --trace ...          # per-statement metrics + rule trace
    python -m repro --max-steps N ...    # arm the evaluation step budget
    python -m repro --max-depth N ...    # arm the recursion-depth limit

The REPL accepts the five statement forms; a statement ends at the end of a
line unless continued by indentation on the following lines (same rule as
program files).  ``\\q`` quits, ``\\objects`` lists objects, ``\\types``
lists named types, ``\\explain Q`` shows the plan for a query and
``\\explain+ Q`` also executes it, reporting real tuple counts, storage
accesses and per-phase timings (EXPLAIN ANALYZE).

Statements execute atomically: a failed statement reports its index, phase
and source snippet, and leaves the database exactly as it was before —
a file keeps the effects of the statements before the failing one, the REPL
simply continues with the next input.
"""

from __future__ import annotations

import sys

from repro.api import connect
from repro.core.types import format_type
from repro.errors import SOSError


def _print_metrics(metrics, timings, indent: str = "   ") -> None:
    """Render an ExecutionMetrics + timings block (``--trace`` output)."""
    if timings:
        parts = ", ".join(
            f"{k} {v * 1000:.2f}ms"
            for k, v in timings.items()
            if k != "total"
        )
        print(f"{indent}time:  {timings.get('total', 0) * 1000:.2f}ms ({parts})")
    if metrics is None:
        return
    for op, slot in sorted(metrics.operators.items()):
        flow = f"out={slot['out']}"
        if slot["in"]:
            flow += f" in={slot['in']}"
        print(f"{indent}op:    {op:<14} {flow}")
    for name, value in sorted(metrics.counters.items()):
        print(f"{indent}count: {name:<22} {value}")
    if metrics.io:
        print(
            f"{indent}io:    reads={metrics.io.get('reads', 0)} "
            f"writes={metrics.io.get('writes', 0)}"
        )


def _print_result(result, trace: bool = False) -> None:
    generated = getattr(result, "generated_statement", lambda: None)()
    if generated:
        print(f"=> {generated}")
    if result.kind == "query":
        value = result.value
        rows = getattr(value, "rows", value)
        if isinstance(rows, list):
            for row in rows:
                print("  ", row)
            print(f"  ({len(rows)} row(s))")
        else:
            print("  ", value)
    if trace:
        _print_metrics(result.metrics, result.timings)


def _print_error(exc: SOSError, stream) -> None:
    """One line of error plus, for statement errors, the source snippet.

    A wrapped :class:`~repro.errors.StatementError` message already leads
    with ``statement N (phase):``; the snippet line shows *what* failed
    without making the user count statements in the file.
    """
    print(f"error: {exc}", file=stream)
    snippet = getattr(exc, "snippet", lambda: None)()
    if snippet:
        print(f"  in: {snippet}", file=stream)


def _make_runner(
    model_only: bool,
    limits: tuple[int | None, int | None],
    trace: bool = False,
):
    runner = connect("model" if model_only else "relational", trace=trace or None)
    max_steps, max_depth = limits
    if max_steps is not None or max_depth is not None:
        runner.database.set_resource_limits(max_steps, max_depth)
    return runner


def run_file(
    path: str,
    model_only: bool,
    dump_to: str | None = None,
    limits: tuple[int | None, int | None] = (None, None),
    trace: bool = False,
) -> int:
    runner = _make_runner(model_only, limits, trace)
    try:
        with open(path) as f:
            source = f.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        for result in runner.run(source):
            _print_result(result, trace=trace)
    except SOSError as exc:
        _print_error(exc, sys.stderr)
        return 1
    if dump_to is not None:
        with open(dump_to, "w") as out:
            out.write(runner.dump())
        print(f"-- state dumped to {dump_to}")
    return 0


def _explain(runner, query: str, analyze: bool) -> None:
    try:
        info = runner.explain(query, analyze=analyze)
    except SOSError as exc:
        print(f"error: {exc}")
        return
    print(f"   level: {info['level']}")
    print(f"   plan:  {info['plan']}")
    print(f"   rules: {', '.join(info['fired']) or '(none)'}")
    print(f"   cost:  {info['estimated_cost']:.1f}")
    if not info["translated"]:
        print("   (already at the representation level; identity plan)")
    if analyze:
        print(f"   rows:  {info['rows']}")
        from repro.observe import ExecutionMetrics

        metrics = ExecutionMetrics()
        metrics.operators = info["metrics"]["operators"]
        metrics.counters = info["metrics"]["counters"]
        metrics.io = info["metrics"]["io"]
        _print_metrics(metrics, info["timings"])


def repl(
    model_only: bool,
    limits: tuple[int | None, int | None] = (None, None),
    trace: bool = False,
) -> int:
    runner = _make_runner(model_only, limits, trace)
    database = runner.database
    print("second-order signature system — \\q to quit")
    buffer: list[str] = []

    def flush() -> None:
        """Execute the buffered multi-line statement, if any."""
        if not buffer:
            return
        pending = "\n".join(buffer)
        buffer.clear()
        try:
            for result in runner.run(pending):
                _print_result(result, trace=trace)
        except SOSError as exc:
            _print_error(exc, sys.stdout)

    while True:
        try:
            prompt = "... " if buffer else "sos> "
            line = input(prompt)
        except EOFError:
            # finish a statement still being typed before exiting
            flush()
            print()
            return 0
        except KeyboardInterrupt:
            print()
            return 0
        if line.strip() == "\\q":
            flush()
            return 0
        if line.strip() == "\\objects":
            for obj in database.objects.values():
                print("  ", obj)
            continue
        if line.strip() == "\\types":
            for name, t in database.aliases.items():
                print(f"   {name} = {format_type(t)}")
            continue
        if line.strip() == "\\ops":
            from repro.spec import describe_signature

            print(describe_signature(database.sos))
            continue
        if line.strip().startswith("\\explain+ ") and not model_only:
            _explain(runner, line.strip()[len("\\explain+ ") :], analyze=True)
            continue
        if line.strip().startswith("\\explain ") and not model_only:
            _explain(runner, line.strip()[len("\\explain ") :], analyze=False)
            continue
        # Indented lines continue the buffered statement; an unindented or
        # empty line first executes what is buffered.
        if buffer and line[:1].isspace() and line.strip():
            buffer.append(line)
            continue
        flush()
        if line.strip():
            buffer.append(line)


def _take_option(argv: list[str], name: str) -> tuple[str | None, list[str], bool]:
    """Extract ``name VALUE`` from argv.  Returns (value, rest, ok)."""
    if name not in argv:
        return None, argv, True
    index = argv.index(name)
    if index + 1 >= len(argv):
        print(f"error: {name} needs a value", file=sys.stderr)
        return None, argv, False
    value = argv[index + 1]
    return value, argv[:index] + argv[index + 2 :], True


def main(argv: list[str]) -> int:
    model_only = "--model" in argv
    trace = "--trace" in argv
    dump_to, argv, ok = _take_option(argv, "--dump")
    if not ok:
        return 2
    limits = []
    for flag in ("--max-steps", "--max-depth"):
        raw, argv, ok = _take_option(argv, flag)
        if not ok:
            return 2
        try:
            limits.append(int(raw) if raw is not None else None)
        except ValueError:
            print(f"error: {flag} needs an integer, got {raw!r}", file=sys.stderr)
            return 2
    max_steps, max_depth = limits
    files = [a for a in argv if not a.startswith("-")]
    if files:
        return run_file(
            files[0], model_only, dump_to, (max_steps, max_depth), trace
        )
    return repl(model_only, (max_steps, max_depth), trace)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
