"""Command-line front end: run programs or an interactive session.

Usage::

    python -m repro                      # interactive REPL (full system)
    python -m repro program.sos          # execute a program file
    python -m repro --model program.sos  # model-level execution, no optimizer
    python -m repro --trace ...          # per-statement metrics + rule trace
    python -m repro --trace-json T.json  # export tracer events as a Chrome trace
    python -m repro --max-steps N ...    # arm the evaluation step budget
    python -m repro --max-depth N ...    # arm the recursion-depth limit
    python -m repro --data-dir DIR ...   # durable database (WAL + recovery)
    python -m repro --group-commit N ... # fsync every Nth commit (with --data-dir)
    python -m repro lint                 # static analysis of bundled models + rules
    python -m repro lint --strict        # also fail (exit 2) on warnings
    python -m repro lint --json F.sos    # lint spec files, JSON report
    python -m repro lint --program F.sos # static program analysis (PRG codes)
    python -m repro lint --self          # engine concurrency self-lint (ENG codes)
    python -m repro lint --codes         # print the diagnostic-code registry
    python -m repro serve --data-dir DIR # multi-session server (MVCC + group commit)
    python -m repro serve --metrics-port P --slow-query-ms MS  # telemetry endpoints
    python -m repro top repro://H:P      # live terminal monitor over a server

The REPL accepts the six statement forms; a statement ends at the end of a
line unless continued by indentation on the following lines (same rule as
program files).  ``\\q`` quits, ``\\objects`` lists objects, ``\\types``
lists named types, ``\\explain Q`` shows the plan for a query and
``\\explain+ Q`` also executes it, reporting real tuple counts, storage
accesses and per-phase timings (EXPLAIN ANALYZE); ``\\stats NAME`` prints
the statistics catalog entries behind an object (run ``analyze`` first);
``\\checkpoint`` snapshots a durable session and truncates its log
(``--data-dir`` mode, see docs/DURABILITY.md).

Statements execute atomically: a failed statement reports its index, phase
and source snippet, and leaves the database exactly as it was before —
a file keeps the effects of the statements before the failing one, the REPL
simply continues with the next input.
"""

from __future__ import annotations

import sys

from repro.api import connect
from repro.core.types import format_type
from repro.errors import SOSError


def _print_metrics(metrics, timings, indent: str = "   ") -> None:
    """Render an ExecutionMetrics + timings block (``--trace`` output)."""
    if timings:
        parts = ", ".join(
            f"{k} {v * 1000:.2f}ms"
            for k, v in timings.items()
            if k != "total"
        )
        print(f"{indent}time:  {timings.get('total', 0) * 1000:.2f}ms ({parts})")
    if metrics is None:
        return
    for op, slot in sorted(metrics.operators.items()):
        flow = f"out={slot['out']}"
        if slot["in"]:
            flow += f" in={slot['in']}"
        print(f"{indent}op:    {op:<14} {flow}")
    for name, value in sorted(metrics.counters.items()):
        print(f"{indent}count: {name:<22} {value}")
    if metrics.io:
        print(
            f"{indent}io:    reads={metrics.io.get('reads', 0)} "
            f"writes={metrics.io.get('writes', 0)}"
        )


def _print_result(result, trace: bool = False) -> None:
    generated = getattr(result, "generated_statement", lambda: None)()
    if generated:
        print(f"=> {generated}")
    if result.kind == "query":
        value = result.value
        rows = getattr(value, "rows", value)
        if isinstance(rows, list):
            for row in rows:
                print("  ", row)
            print(f"  ({len(rows)} row(s))")
        else:
            print("  ", value)
    if result.kind == "analyze" and isinstance(result.value, dict):
        for name, info in result.value.items():
            print(
                f"   analyzed {name}: {info['rows']} row(s), "
                f"{info['attributes']} attribute(s), "
                f"{info['histograms']} histogram(s)"
            )
    if trace:
        _print_metrics(result.metrics, result.timings)


def _print_error(exc: SOSError, stream) -> None:
    """One line of error plus, for statement errors, the source snippet.

    A wrapped :class:`~repro.errors.StatementError` message already leads
    with ``statement N (phase):``; the snippet line shows *what* failed
    without making the user count statements in the file.
    """
    print(f"error: {exc}", file=stream)
    snippet = getattr(exc, "snippet", lambda: None)()
    if snippet:
        print(f"  in: {snippet}", file=stream)


def _make_runner(
    model_only: bool,
    limits: tuple[int | None, int | None],
    trace: bool = False,
    trace_json: str | None = None,
    data_dir: str | None = None,
    group_commit: int = 1,
):
    runner = connect(
        "model" if model_only else "relational",
        trace=trace or None,
        data_dir=data_dir,
        group_commit=group_commit,
    )
    if data_dir is not None:
        manager = runner.durability
        print(
            f"-- durable mode: {data_dir} (epoch {manager.epoch}, "
            f"{manager.replayed_statements} statement(s) replayed)"
        )
    exporter = None
    if trace_json is not None:
        from repro.observe import ChromeTraceExporter

        exporter = ChromeTraceExporter()
        runner.subscribe(exporter)
    max_steps, max_depth = limits
    if max_steps is not None or max_depth is not None:
        runner.database.set_resource_limits(max_steps, max_depth)
    return runner, exporter


def _write_trace(exporter, trace_json: str | None) -> None:
    if exporter is None or trace_json is None:
        return
    exporter.write(trace_json)
    print(f"-- trace written to {trace_json} ({len(exporter.events)} event(s))")


def run_file(
    path: str,
    model_only: bool,
    dump_to: str | None = None,
    limits: tuple[int | None, int | None] = (None, None),
    trace: bool = False,
    trace_json: str | None = None,
    data_dir: str | None = None,
    group_commit: int = 1,
) -> int:
    try:
        runner, exporter = _make_runner(
            model_only, limits, trace, trace_json, data_dir, group_commit
        )
    except SOSError as exc:
        _print_error(exc, sys.stderr)
        return 2
    try:
        with open(path) as f:
            source = f.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        for result in runner.run(source):
            _print_result(result, trace=trace)
    except SOSError as exc:
        _print_error(exc, sys.stderr)
        _write_trace(exporter, trace_json)
        runner.close()
        return 1
    if dump_to is not None:
        with open(dump_to, "w") as out:
            out.write(runner.dump())
        print(f"-- state dumped to {dump_to}")
    _write_trace(exporter, trace_json)
    runner.close()
    return 0


def _explain(runner, query: str, analyze: bool) -> None:
    try:
        info = runner.explain(query, analyze=analyze)
    except SOSError as exc:
        print(f"error: {exc}")
        return
    print(f"   level: {info['level']}")
    print(f"   plan:  {info['plan']}")
    print(f"   rules: {', '.join(info['fired']) or '(none)'}")
    print(f"   cost:  {info['estimated_cost']:.1f}")
    if info.get("cost_counters"):
        parts = ", ".join(
            f"{k.removeprefix('cost.')}={v}"
            for k, v in sorted(info["cost_counters"].items())
        )
        print(f"   est:   {parts}")
    if not info["translated"]:
        print("   (already at the representation level; identity plan)")
    if analyze:
        print(f"   rows:  {info['rows']}")
        for op, card in sorted(info.get("cardinality", {}).items()):
            print(
                f"   card:  {op:<14} est={card['estimated']} "
                f"act={card['actual']} q={card['q_error']}"
            )
        from repro.observe import ExecutionMetrics

        metrics = ExecutionMetrics()
        metrics.operators = info["metrics"]["operators"]
        metrics.counters = info["metrics"]["counters"]
        metrics.io = info["metrics"]["io"]
        _print_metrics(metrics, info["timings"])


def _print_stats(runner, name: str) -> None:
    try:
        entries = runner.stats(name)
    except SOSError as exc:
        print(f"error: {exc}")
        return
    if not entries:
        print(f"   no statistics for {name} (run: analyze {name})")
        return
    for obj, d in entries.items():
        stale = " (stale)" if d["stale"] else ""
        print(
            f"   {obj}: {d['row_count']} row(s), "
            f"analyzed at {d['analyzed_rows']}{stale}"
        )
        if d.get("structure"):
            shape = ", ".join(f"{k}={v}" for k, v in d["structure"].items())
            print(f"     structure: {shape}")
        for attr, a in d["attributes"].items():
            key = " [key]" if attr == d.get("key_attr") else ""
            hist = a.get("histogram")
            buckets = f", {hist['buckets']} bucket(s)" if hist else ""
            print(
                f"     {attr}{key}: distinct={a['distinct']} "
                f"min={a['min']} max={a['max']}{buckets}"
            )
        for pred, sel in d.get("observed", {}).items():
            print(f"     observed {sel:.3f} for {pred}")


def repl(
    model_only: bool,
    limits: tuple[int | None, int | None] = (None, None),
    trace: bool = False,
    trace_json: str | None = None,
    data_dir: str | None = None,
    group_commit: int = 1,
) -> int:
    try:
        runner, exporter = _make_runner(
            model_only, limits, trace, trace_json, data_dir, group_commit
        )
    except SOSError as exc:
        _print_error(exc, sys.stderr)
        return 2
    database = runner.database
    print("second-order signature system — \\q to quit")
    buffer: list[str] = []

    def flush() -> None:
        """Execute the buffered multi-line statement, if any."""
        if not buffer:
            return
        pending = "\n".join(buffer)
        buffer.clear()
        try:
            for result in runner.run(pending):
                _print_result(result, trace=trace)
        except SOSError as exc:
            _print_error(exc, sys.stdout)

    while True:
        try:
            prompt = "... " if buffer else "sos> "
            line = input(prompt)
        except EOFError:
            # finish a statement still being typed before exiting
            flush()
            print()
            _write_trace(exporter, trace_json)
            runner.close()
            return 0
        except KeyboardInterrupt:
            print()
            _write_trace(exporter, trace_json)
            runner.close()
            return 0
        if line.strip() == "\\q":
            flush()
            _write_trace(exporter, trace_json)
            runner.close()
            return 0
        if line.strip() == "\\checkpoint":
            flush()
            if not runner.durable:
                print("   not a durable session (start with --data-dir DIR)")
                continue
            try:
                epoch = runner.checkpoint()
                print(f"   checkpoint written (epoch {epoch})")
            except SOSError as exc:
                print(f"error: {exc}")
            continue
        if line.strip() == "\\objects":
            for obj in database.objects.values():
                print("  ", obj)
            continue
        if line.strip() == "\\types":
            for name, t in database.aliases.items():
                print(f"   {name} = {format_type(t)}")
            continue
        if line.strip() == "\\ops":
            from repro.spec import describe_signature

            print(describe_signature(database.sos))
            continue
        if line.strip().startswith("\\explain+ ") and not model_only:
            _explain(runner, line.strip()[len("\\explain+ ") :], analyze=True)
            continue
        if line.strip().startswith("\\explain ") and not model_only:
            _explain(runner, line.strip()[len("\\explain ") :], analyze=False)
            continue
        if line.strip().startswith("\\stats "):
            _print_stats(runner, line.strip()[len("\\stats ") :].strip())
            continue
        # Indented lines continue the buffered statement; an unindented or
        # empty line first executes what is buffered.
        if buffer and line[:1].isspace() and line.strip():
            buffer.append(line)
            continue
        flush()
        if line.strip():
            buffer.append(line)


def _take_option(argv: list[str], name: str) -> tuple[str | None, list[str], bool]:
    """Extract ``name VALUE`` from argv.  Returns (value, rest, ok)."""
    if name not in argv:
        return None, argv, True
    index = argv.index(name)
    if index + 1 >= len(argv):
        print(f"error: {name} needs a value", file=sys.stderr)
        return None, argv, False
    value = argv[index + 1]
    return value, argv[:index] + argv[index + 2 :], True


def _lint_exit(report, strict: bool) -> int:
    """The documented exit contract: 0 = clean (info-only counts as
    clean), 1 = warnings only, 2 = errors.  ``--strict`` promotes
    warnings to the failing exit code."""
    if report.errors:
        return 2
    if report.warnings:
        return 2 if strict else 1
    return 0


def _print_codes(as_json: bool) -> None:
    """``lint --codes``: the full diagnostic-code registry."""
    from repro.lint import CODES

    if as_json:
        import json

        print(
            json.dumps(
                [
                    {"code": code, "severity": severity, "summary": summary}
                    for code, (severity, summary) in sorted(CODES.items())
                ],
                indent=2,
            )
        )
        return
    for code, (severity, summary) in sorted(CODES.items()):
        print(f"{code}  {severity:<5}  {summary}")


def run_lint(argv: list[str]) -> int:
    """``python -m repro lint [--strict] [--json] [files...]``,
    ``lint --program FILE [--atomic]``, ``lint --self``, ``lint --codes``.

    Without other options, lints every bundled model signature, the full
    relational system signature, and the standard rule set against it.
    With files, each is parsed as specification text and linted
    (``SOS...`` codes).  ``--program`` statically analyzes a whole SOS
    program against the relational system's signature and catalog without
    executing it (``PRG...`` codes; ``--atomic`` analyzes it as one
    atomic transaction).  ``--self`` runs the engine concurrency
    self-lint over the installed ``repro`` package (``ENG...`` codes).
    ``--codes`` prints the diagnostic-code registry and exits.

    Exit codes: 0 = clean, 1 = warnings only, 2 = errors (``--strict``
    also fails on warnings), 3 = usage or I/O error.
    """
    strict = "--strict" in argv
    as_json = "--json" in argv
    self_lint = "--self" in argv
    codes_only = "--codes" in argv
    atomic = "--atomic" in argv
    argv = [
        a
        for a in argv
        if a not in ("--strict", "--json", "--self", "--codes", "--atomic")
    ]
    program, argv, ok = _take_option(argv, "--program")
    if not ok:
        return 3
    unknown = [a for a in argv if a.startswith("-")]
    if unknown:
        print(f"error: unknown lint option(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 3
    if codes_only:
        _print_codes(as_json)
        return 0
    from repro.lint import LintReport, lint_database, lint_signature, lint_spec

    files = [a for a in argv if not a.startswith("-")]
    report = LintReport()
    if self_lint:
        from repro.lint import lint_engine

        report.extend(lint_engine())
    elif program is not None:
        try:
            with open(program, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: cannot read {program}: {exc}", file=sys.stderr)
            return 3
        from repro.lint import lint_program
        from repro.system.sos_system import build_relational_system

        system = build_relational_system()
        report.extend(
            lint_program(
                system.database, text, atomic=atomic, source=program
            )
        )
    elif files:
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                print(f"error: cannot read {path}: {exc}", file=sys.stderr)
                return 3
            report.extend(lint_spec(text, source=path))
    else:
        from repro.models import (
            complex_object_model,
            graph_model,
            nested_relational_model,
            relational_model,
        )
        from repro.optimizer.standard_rules import standard_optimizer
        from repro.system.sos_system import build_relational_system

        for name, factory in (
            ("models/relational", relational_model),
            ("models/nested", nested_relational_model),
            ("models/complex_objects", complex_object_model),
            ("models/graph", graph_model),
        ):
            sos, _ = factory()
            report.extend(lint_signature(sos, source=name))
        system = build_relational_system()
        report.extend(
            lint_database(
                system.database,
                standard_optimizer(),
                source="system/relational",
            )
        )
    print(report.render_json() if as_json else report.render_text())
    return _lint_exit(report, strict)


def run_serve(argv: list[str]) -> int:
    """``python -m repro serve --data-dir DIR [--host H] [--port P]
    [--group-commit N] [--checkpoint-interval N] [--metrics-port P]
    [--slow-query-ms MS] [--slow-query-log FILE] [--max-connections N]
    [--statement-timeout-ms MS]``.

    Serves one durable database to any number of concurrent client
    sessions (``connect("repro://host:port")``) with snapshot isolation,
    first-committer-wins conflicts, and cross-client group commit.
    ``--data-dir`` may be omitted for a shared in-memory database (gone
    when the server exits).  ``--group-commit`` defaults to 8 here —
    batching fsyncs across clients is the point of a server.
    ``--metrics-port`` additionally serves the process-wide telemetry
    registry as a Prometheus text exposition page on the same loop;
    ``--slow-query-ms`` arms the slow-query log (JSON lines to
    ``--slow-query-log``, or kept in memory for the ``metrics`` op).
    ``--max-connections`` sheds excess connections with a retryable busy
    error; ``--statement-timeout-ms`` cancels statements that evaluate
    past the deadline.  SIGTERM drains gracefully: in-flight commits
    finish durably, idle transactions roll back, then exit 0.
    """
    data_dir, argv, ok = _take_option(argv, "--data-dir")
    if not ok:
        return 2
    host, argv, ok = _take_option(argv, "--host")
    if not ok:
        return 2
    raw_port, argv, ok = _take_option(argv, "--port")
    if not ok:
        return 2
    raw_group, argv, ok = _take_option(argv, "--group-commit")
    if not ok:
        return 2
    raw_interval, argv, ok = _take_option(argv, "--checkpoint-interval")
    if not ok:
        return 2
    raw_metrics_port, argv, ok = _take_option(argv, "--metrics-port")
    if not ok:
        return 2
    raw_slow_ms, argv, ok = _take_option(argv, "--slow-query-ms")
    if not ok:
        return 2
    slow_query_log, argv, ok = _take_option(argv, "--slow-query-log")
    if not ok:
        return 2
    raw_max_conns, argv, ok = _take_option(argv, "--max-connections")
    if not ok:
        return 2
    raw_stmt_timeout, argv, ok = _take_option(argv, "--statement-timeout-ms")
    if not ok:
        return 2
    try:
        port = int(raw_port) if raw_port is not None else None
        group_commit = int(raw_group) if raw_group is not None else 8
        interval = int(raw_interval) if raw_interval is not None else None
        metrics_port = (
            int(raw_metrics_port) if raw_metrics_port is not None else None
        )
        slow_query_ms = float(raw_slow_ms) if raw_slow_ms is not None else None
        max_connections = (
            int(raw_max_conns) if raw_max_conns is not None else None
        )
        statement_timeout_ms = (
            float(raw_stmt_timeout) if raw_stmt_timeout is not None else None
        )
    except ValueError:
        print("error: --port / --group-commit / --checkpoint-interval / "
              "--metrics-port / --max-connections need integers "
              "(--slow-query-ms / --statement-timeout-ms a number)",
              file=sys.stderr)
        return 2
    if argv:
        print(f"error: unknown serve argument(s): {', '.join(argv)}",
              file=sys.stderr)
        return 2
    import asyncio

    from repro.server import DEFAULT_PORT, serve

    try:
        asyncio.run(
            serve(
                host if host is not None else "127.0.0.1",
                port if port is not None else DEFAULT_PORT,
                data_dir=data_dir,
                group_commit=group_commit,
                checkpoint_interval=interval,
                metrics_port=metrics_port,
                slow_query_ms=slow_query_ms,
                slow_query_log=slow_query_log,
                max_connections=max_connections,
                statement_timeout_ms=statement_timeout_ms,
            )
        )
    except KeyboardInterrupt:
        print("\n-- server stopped")
    except SOSError as exc:
        _print_error(exc, sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def run_top(argv: list[str]) -> int:
    """``python -m repro top repro://host:port [--interval S]
    [--count N] [--once]``.

    A live terminal monitor over the server's telemetry registry: polls
    the ``metrics`` wire op and renders sessions, transactions,
    commit/conflict totals, WAL throughput, group-commit batching and
    latency percentiles.  ``--once`` prints a single snapshot (no screen
    clearing) — the scriptable form.
    """
    once = "--once" in argv
    argv = [a for a in argv if a != "--once"]
    raw_interval, argv, ok = _take_option(argv, "--interval")
    if not ok:
        return 2
    raw_count, argv, ok = _take_option(argv, "--count")
    if not ok:
        return 2
    try:
        interval = float(raw_interval) if raw_interval is not None else 2.0
        count = int(raw_count) if raw_count is not None else None
    except ValueError:
        print("error: --interval needs a number, --count an integer",
              file=sys.stderr)
        return 2
    targets = [a for a in argv if not a.startswith("-")]
    leftover = [a for a in argv if a.startswith("-")]
    if leftover or len(targets) != 1:
        print("usage: python -m repro top repro://host:port "
              "[--interval S] [--count N] [--once]", file=sys.stderr)
        return 2
    if once:
        count = 1
    import time as _time

    from repro import telemetry
    from repro.api import connect
    from repro.errors import ProtocolError

    try:
        db = connect(targets[0])
    except SOSError as exc:
        _print_error(exc, sys.stderr)
        return 2
    previous = None
    ticks = 0
    try:
        while True:
            try:
                snapshot = db.server_metrics()
            except ProtocolError as exc:
                print(f"server went away: {exc}", file=sys.stderr)
                return 1
            screen = telemetry.render_top(
                snapshot, previous, interval, address=targets[0]
            )
            if count != 1:
                print("\x1b[2J\x1b[H", end="")  # clear, home
            print(screen, end="", flush=True)
            previous = snapshot
            ticks += 1
            if count is not None and ticks >= count:
                return 0
            _time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 0
    finally:
        try:
            db.disconnect()
        except Exception:
            pass


def main(argv: list[str]) -> int:
    if argv and argv[0] == "lint":
        return run_lint(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "top":
        return run_top(argv[1:])
    model_only = "--model" in argv
    trace = "--trace" in argv
    dump_to, argv, ok = _take_option(argv, "--dump")
    if not ok:
        return 2
    trace_json, argv, ok = _take_option(argv, "--trace-json")
    if not ok:
        return 2
    data_dir, argv, ok = _take_option(argv, "--data-dir")
    if not ok:
        return 2
    raw_group, argv, ok = _take_option(argv, "--group-commit")
    if not ok:
        return 2
    try:
        group_commit = int(raw_group) if raw_group is not None else 1
    except ValueError:
        print(
            f"error: --group-commit needs an integer, got {raw_group!r}",
            file=sys.stderr,
        )
        return 2
    if data_dir is not None and model_only:
        print("error: --data-dir needs the full system (drop --model)",
              file=sys.stderr)
        return 2
    limits = []
    for flag in ("--max-steps", "--max-depth"):
        raw, argv, ok = _take_option(argv, flag)
        if not ok:
            return 2
        try:
            limits.append(int(raw) if raw is not None else None)
        except ValueError:
            print(f"error: {flag} needs an integer, got {raw!r}", file=sys.stderr)
            return 2
    max_steps, max_depth = limits
    files = [a for a in argv if not a.startswith("-")]
    if files:
        return run_file(
            files[0], model_only, dump_to, (max_steps, max_depth), trace,
            trace_json, data_dir, group_commit,
        )
    return repl(
        model_only, (max_steps, max_depth), trace, trace_json, data_dir,
        group_commit,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
