"""Command-line front end: run programs or an interactive session.

Usage::

    python -m repro                      # interactive REPL (full system)
    python -m repro program.sos          # execute a program file
    python -m repro --model program.sos  # model-level execution, no optimizer

The REPL accepts the five statement forms; a statement ends at the end of a
line unless continued by indentation on the following lines (same rule as
program files).  ``\\q`` quits, ``\\objects`` lists objects, ``\\types``
lists named types.
"""

from __future__ import annotations

import sys

from repro.core.types import format_type
from repro.errors import SOSError
from repro.system import make_model_interpreter, make_relational_system


def _print_result(result) -> None:
    generated = getattr(result, "generated_statement", lambda: None)()
    if generated:
        print(f"=> {generated}")
    if result.kind == "query":
        value = result.value
        rows = getattr(value, "rows", value)
        if isinstance(rows, list):
            for row in rows:
                print("  ", row)
            print(f"  ({len(rows)} row(s))")
        else:
            print("  ", value)


def run_file(path: str, model_only: bool, dump_to: str | None = None) -> int:
    runner = make_model_interpreter() if model_only else make_relational_system()
    with open(path) as f:
        source = f.read()
    try:
        for result in runner.run(source):
            _print_result(result)
    except SOSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if dump_to is not None:
        from repro.system import dump_program

        with open(dump_to, "w") as out:
            out.write(dump_program(runner.database))
        print(f"-- state dumped to {dump_to}")
    return 0


def repl(model_only: bool) -> int:
    runner = make_model_interpreter() if model_only else make_relational_system()
    database = runner.database if hasattr(runner, "database") else runner.database
    print("second-order signature system — \\q to quit")
    buffer: list[str] = []
    while True:
        try:
            prompt = "... " if buffer else "sos> "
            line = input(prompt)
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if line.strip() == "\\q":
            return 0
        if line.strip() == "\\objects":
            for obj in database.objects.values():
                print("  ", obj)
            continue
        if line.strip() == "\\types":
            for name, t in database.aliases.items():
                print(f"   {name} = {format_type(t)}")
            continue
        if line.strip() == "\\ops":
            from repro.spec import describe_signature

            print(describe_signature(database.sos))
            continue
        if line.strip().startswith("\\explain ") and hasattr(runner, "explain"):
            try:
                info = runner.explain(line.strip()[len("\\explain ") :])
                print(f"   level: {info['level']}")
                print(f"   plan:  {info['plan']}")
                print(f"   rules: {', '.join(info['fired']) or '(none)'}")
                print(f"   cost:  {info['estimated_cost']:.1f}")
            except SOSError as exc:
                print(f"error: {exc}")
            continue
        # Indented lines continue the buffered statement; an unindented or
        # empty line first executes what is buffered.
        if buffer and line[:1].isspace() and line.strip():
            buffer.append(line)
            continue
        if buffer:
            pending = "\n".join(buffer)
            buffer = []
            try:
                for result in runner.run(pending):
                    _print_result(result)
            except SOSError as exc:
                print(f"error: {exc}")
        if line.strip():
            buffer.append(line)


def main(argv: list[str]) -> int:
    model_only = "--model" in argv
    dump_to = None
    if "--dump" in argv:
        index = argv.index("--dump")
        if index + 1 >= len(argv):
            print("error: --dump needs a target path", file=sys.stderr)
            return 2
        dump_to = argv[index + 1]
        argv = argv[:index] + argv[index + 2 :]
    files = [a for a in argv if not a.startswith("-")]
    if files:
        return run_file(files[0], model_only, dump_to)
    return repl(model_only)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
