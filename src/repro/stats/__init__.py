"""Statistics catalog, ``analyze`` computation, and cardinality feedback.

See :mod:`repro.stats.model` for the catalog data model,
:mod:`repro.stats.analyze` for the ``analyze`` statement's computation, and
:mod:`repro.stats.feedback` for estimated-vs-actual cardinality reports.
"""

from repro.stats.analyze import analyze_objects, analyze_value, related_stats
from repro.stats.feedback import cardinality_report, fold_observed, q_error
from repro.stats.model import (
    AttributeStats,
    EquiDepthHistogram,
    RelationStats,
    StatsCatalog,
)

__all__ = [
    "AttributeStats",
    "EquiDepthHistogram",
    "RelationStats",
    "StatsCatalog",
    "analyze_objects",
    "analyze_value",
    "related_stats",
    "cardinality_report",
    "fold_observed",
    "q_error",
]
