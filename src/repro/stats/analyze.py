"""The ``analyze`` computation: scan objects, build :class:`RelationStats`.

``analyze`` / ``analyze <names>`` statements land here.  Analysis follows
the same catalog indirection the optimizer rules use: analyzing a *model*
relation (which carries no value — its data lives in representation
objects, paper Section 6) walks every catalog object for rows mentioning
it and analyzes the representation objects those rows name.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Optional

from repro.catalog.catalog import CatalogValue
from repro.core.algebra import Relation, TupleValue
from repro.core.types import Sym, TypeApp, attrs_of
from repro.errors import CatalogError
from repro.stats.model import (
    AttributeStats,
    EquiDepthHistogram,
    RelationStats,
    StatsCatalog,
)
from repro.storage.btree import BTree
from repro.storage.lsdtree import LSDTree, _Bucket
from repro.storage.srel import SRel
from repro.storage.tidrel import TidRelation

MAX_ANALYZE_ROWS = 200_000
"""Analysis scans at most this many rows per object — a guard, not a
sampling strategy; every dataset in the suite fits well under it."""


def analyze_objects(db, names: Optional[Iterable[str]] = None) -> dict:
    """Analyze the named objects (or every scannable object) into
    ``db.stats``; returns a summary ``{object: {"rows": n, ...}}``.

    Model-level names resolve through the catalogs to their representation
    objects; the model name itself gets no entry (it has no value — the
    cost model only ever prices representation objects).
    """
    targets: list[str] = []
    if names:
        for name in names:
            obj = db.objects.get(name)
            if obj is None:
                raise CatalogError(f"no such object: {name}")
            if _scannable(obj.value):
                targets.append(name)
                continue
            reps = _catalog_reps(db, name)
            if not reps:
                raise CatalogError(
                    f"object {name} has no analyzable value and no "
                    "representation registered in any catalog"
                )
            targets.extend(reps)
    else:
        targets = [
            name for name, obj in db.objects.items() if _scannable(obj.value)
        ]
    summary: dict[str, dict] = {}
    for name in dict.fromkeys(targets):  # preserve order, drop duplicates
        stats = analyze_value(name, db.objects[name].value, db.objects[name].type)
        db.stats.put(stats)
        summary[name] = {
            "rows": stats.row_count,
            "attributes": len(stats.attributes),
            "histograms": sum(
                1 for a in stats.attributes.values() if a.histogram is not None
            ),
        }
    return summary


def related_stats(db, name: str) -> list[RelationStats]:
    """The stats entries describing ``name``: its own entry if analyzed,
    otherwise the entries of its catalog-registered representations (how
    ``\\stats cities`` finds the numbers behind a model relation)."""
    entry = db.stats.get(name)
    if entry is not None:
        return [entry]
    found = []
    for rep in _catalog_reps(db, name):
        rep_entry = db.stats.get(rep)
        if rep_entry is not None:
            found.append(rep_entry)
    return found


def _catalog_reps(db, name: str) -> list[str]:
    """Representation objects registered for ``name`` in any catalog —
    the rows ``rep(name, X)`` of the paper, generalized to any width."""
    reps: list[str] = []
    wanted = Sym(name)
    for obj in db.objects.values():
        if not isinstance(obj.value, CatalogValue):
            continue
        for row in obj.value.rows:
            if row and row[0] == wanted:
                for component in row[1:]:
                    if isinstance(component, Sym) and db.has_object(
                        component.name
                    ):
                        reps.append(component.name)
    return reps


def _scannable(value) -> bool:
    if value is None or isinstance(value, CatalogValue):
        return False
    return hasattr(value, "scan") or isinstance(value, Relation)


def analyze_value(name: str, value, declared_type=None) -> RelationStats:
    """Full statistics for one object value (rows, attributes, structure)."""
    rows = list(islice(_rows_of(value), MAX_ANALYZE_ROWS))
    attributes = _attribute_stats(rows)
    return RelationStats(
        name=name,
        row_count=_count_of(value, rows),
        analyzed_rows=len(rows),
        attributes=attributes,
        structure=_structure_stats(value),
        key_attr=_declared_key_attr(declared_type),
    )


def _rows_of(value):
    scan = getattr(value, "scan", None)
    if scan is not None:
        return scan()
    return iter(value)


def _count_of(value, rows: list) -> int:
    try:
        return len(value)
    except TypeError:
        return len(rows)


def _attribute_stats(rows: list) -> dict[str, AttributeStats]:
    if not rows or not isinstance(rows[0], TupleValue):
        return {}
    names = [n for n, _ in attrs_of(rows[0].schema)]
    columns: dict[str, list] = {n: [] for n in names}
    for row in rows:
        if not isinstance(row, TupleValue):
            continue
        for n, v in zip(names, row.values):
            columns[n].append(v)
    stats = {}
    for n, values in columns.items():
        stats[n] = _one_attribute(n, values)
    return stats


def _one_attribute(name: str, values: list) -> AttributeStats:
    distinct = _distinct_count(values)
    low = high = None
    try:
        low, high = min(values), max(values)
    except (TypeError, ValueError):
        pass
    return AttributeStats(
        name=name,
        count=len(values),
        distinct=distinct,
        min=low,
        max=high,
        histogram=EquiDepthHistogram.build(values),
    )


def _distinct_count(values: list) -> int:
    try:
        return len(set(values))
    except TypeError:
        # Unhashable domain (geometry): fall back to repr identity.
        return len({repr(v) for v in values})


# ---------------------------------------------------------------------------
# Physical structure shape
# ---------------------------------------------------------------------------


def _structure_stats(value) -> dict:
    if isinstance(value, BTree):
        nodes, leaves = _btree_pages(value)
        return {
            "kind": "btree",
            "height": value.height,
            "order": value.order,
            "pages": nodes,
            "leaf_pages": leaves,
            "fanout": _btree_fanout(value, nodes, leaves),
        }
    if isinstance(value, LSDTree):
        buckets, depth = _lsd_shape(value)
        return {
            "kind": "lsdtree",
            "buckets": buckets,
            "directory_depth": depth,
            "bucket_capacity": value.bucket_capacity,
        }
    if isinstance(value, TidRelation):
        return {"kind": "tidrel"}
    if isinstance(value, SRel):
        return {"kind": "srel"}
    if isinstance(value, Relation):
        return {"kind": "relation"}
    return {"kind": type(value).__name__.lower()}


def _btree_pages(bt: BTree) -> tuple[int, int]:
    nodes = leaves = 0
    stack = [bt._root]
    while stack:
        node = stack.pop()
        nodes += 1
        if node.leaf:
            leaves += 1
        else:
            stack.extend(node.children)
    return nodes, leaves


def _btree_fanout(bt: BTree, nodes: int, leaves: int) -> float:
    internal = nodes - leaves
    if internal <= 0:
        return float(leaves)
    return (nodes - 1) / internal  # children per internal node


def _lsd_shape(tree: LSDTree) -> tuple[int, int]:
    buckets = 0
    depth = 0
    stack = [(tree._root, 0)]
    while stack:
        node, d = stack.pop()
        if isinstance(node, _Bucket):
            buckets += 1
            depth = max(depth, d)
        else:
            stack.append((node.left, d + 1))
            stack.append((node.right, d + 1))
    return buckets, depth


def _declared_key_attr(declared_type) -> Optional[str]:
    """The B-tree key attribute from a ``btree(tuple, attr, dtype)``
    declaration, when the key is a plain attribute name."""
    if isinstance(declared_type, TypeApp) and declared_type.constructor in (
        "btree",
        "mbtree",
        "sindex",
    ):
        if len(declared_type.args) >= 2 and isinstance(
            declared_type.args[1], Sym
        ):
            return declared_type.args[1].name
    return None


__all__ = [
    "analyze_objects",
    "analyze_value",
    "related_stats",
    "StatsCatalog",
]
