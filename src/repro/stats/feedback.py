"""Cardinality feedback: estimated vs. actual per-operator row counts.

The cost model prices each plan node with an output cardinality; execution
(with collection armed) counts what each operator actually produced.  This
module joins the two into a per-operator report with the standard *q-error*
(``max(est/act, act/est)``, floored at 1) — the metric the estimator is
judged by — and can fold observed filter selectivities back into the
statistics catalog so the next estimate of the same predicate uses what the
last execution measured.
"""

from __future__ import annotations

from typing import Optional

from repro.core.terms import Apply, Call, Fun, ListTerm, ObjRef, Term, TupleTerm, Var
from repro.core.terms import format_term


def q_error(estimated: float, actual: float) -> float:
    """``max(est/act, act/est)`` with both sides floored at one row, so a
    perfect estimate scores 1.0 and zero counts stay finite."""
    e = max(float(estimated), 1.0)
    a = max(float(actual), 1.0)
    return max(e / a, a / e)


def cardinality_report(plan_term: Term, db, metrics) -> dict[str, dict]:
    """Per-operator ``{estimated, actual, q_error}`` for one executed plan.

    Estimates come from the cost model's per-operator cardinality walk;
    actuals from ``metrics.operators[op]["out"]``.  Operators the metrics
    did not see (scalar producers, unwrapped internals) are skipped — the
    report only claims what both sides measured.
    """
    from repro.optimizer.cost import estimate_with_cardinalities

    _, estimated = estimate_with_cardinalities(plan_term, db)
    report: dict[str, dict] = {}
    for op, est in estimated.items():
        slot = metrics.operators.get(op)
        if slot is None:
            continue
        actual = slot["out"]
        report[op] = {
            "estimated": round(est, 2),
            "actual": actual,
            "q_error": round(q_error(est, actual), 2),
        }
    return report


def fold_observed(plan_term: Term, db, metrics) -> int:
    """Fold measured filter selectivities back into ``db.stats``.

    Per-operator metrics aggregate over all occurrences of an operator
    name, so a selectivity is attributable only when the plan has exactly
    one ``filter`` whose input operator also occurs exactly once.  Returns
    the number of selectivities recorded (0 or 1).
    """
    filters = []
    occurrences: dict[str, int] = {}
    _walk_ops(plan_term, filters, occurrences)
    if len(filters) != 1:
        return 0
    source, pred = filters[0]
    if not isinstance(source, Apply) or occurrences.get(source.op, 0) != 1:
        return 0
    base = _base_structure(source)
    if base is None or db.stats.get(base) is None:
        return 0
    rows_in = metrics.tuples_out(source.op)
    rows_out = metrics.tuples_out("filter")
    if rows_in <= 0:
        return 0
    selectivity = max(0.0, min(1.0, rows_out / rows_in))
    db.stats.record_observed(base, format_term(pred), selectivity)
    return 1


def _walk_ops(term: Term, filters: list, occurrences: dict) -> None:
    if isinstance(term, Apply):
        occurrences[term.op] = occurrences.get(term.op, 0) + 1
        if term.op == "filter" and len(term.args) == 2:
            filters.append((term.args[0], term.args[1]))
        for a in term.args:
            _walk_ops(a, filters, occurrences)
        return
    if isinstance(term, Fun):
        _walk_ops(term.body, filters, occurrences)
        return
    if isinstance(term, (ListTerm, TupleTerm)):
        for item in term.items:
            _walk_ops(item, filters, occurrences)
        return
    if isinstance(term, Call):
        _walk_ops(term.fn, filters, occurrences)
        for a in term.args:
            _walk_ops(a, filters, occurrences)


def _base_structure(source: Apply) -> Optional[str]:
    """The structure a stream operator reads, when it reads one directly."""
    if source.op in ("feed", "range", "exact", "prefix") and source.args:
        first = source.args[0]
        if isinstance(first, (Var, ObjRef)):
            return first.name
    return None
