"""The statistics catalog: what the optimizer knows about the data.

The paper's Section 6 treats catalogs as ordinary algebraic structures that
rule conditions consult (``rep(rel, repobj)``); the statistics catalog
extends that idea to *quantitative* knowledge.  A :class:`StatsCatalog`
lives on every :class:`~repro.catalog.database.Database` and maps object
names to immutable :class:`RelationStats` entries:

* relation-level: row count (kept incrementally up to date through
  ``Database.set_value``) and the row count as of the last ``analyze``;
* per-attribute: distinct count, min/max, and an equi-depth
  :class:`EquiDepthHistogram` over orderable attribute values;
* structure-level: B-tree height/order/page counts, LSD-tree bucket
  counts — the physical shape behind the logical numbers;
* observed: predicate selectivities folded back from executed plans by the
  cardinality-feedback recorder (:mod:`repro.stats.feedback`).

Entries are **immutable**; every mutation goes through copy-on-write
(:func:`dataclasses.replace`), so a transaction savepoint is just a shallow
``dict`` copy — the same snapshot discipline the catalog dictionaries use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

HISTOGRAM_BUCKETS = 16
"""Default number of equi-depth buckets per attribute histogram."""

STALE_FRACTION = 0.3
"""An entry whose live row count drifted more than this fraction from the
analyzed row count is *stale*: histograms still describe the distribution
shape but absolute counts should be trusted less."""


@dataclass(frozen=True, slots=True)
class EquiDepthHistogram:
    """An equi-depth histogram: ``edges[i]..edges[i+1]`` holds ``counts[i]``
    values.  Duplicate-heavy data yields repeated edges (legal: the bucket
    then covers a single value and the interpolation degenerates to it)."""

    edges: tuple
    counts: tuple[int, ...]
    total: int

    @classmethod
    def build(
        cls, values: list, buckets: int = HISTOGRAM_BUCKETS
    ) -> Optional["EquiDepthHistogram"]:
        """A histogram over ``values``, or ``None`` when they do not sort
        (mixed or unordered domains carry no range statistics)."""
        if not values:
            return None
        try:
            ordered = sorted(values)
        except TypeError:
            return None
        n = len(ordered)
        b = max(1, min(buckets, n))
        edges = [ordered[0]]
        counts = []
        for i in range(b):
            end = ((i + 1) * n) // b
            start = (i * n) // b
            if end <= start:
                continue
            edges.append(ordered[end - 1])
            counts.append(end - start)
        return cls(tuple(edges), tuple(counts), n)

    def fraction_le(self, value) -> float:
        """Estimated fraction of values ``<= value`` (linear interpolation
        within the straddled bucket)."""
        try:
            if value < self.edges[0]:
                return 0.0
            if value >= self.edges[-1]:
                return 1.0
        except TypeError:
            return 0.5
        cumulative = 0.0
        for i, count in enumerate(self.counts):
            low, high = self.edges[i], self.edges[i + 1]
            if value >= high:
                cumulative += count
                continue
            if value > low:
                cumulative += count * _interp(low, high, value)
            break
        return cumulative / self.total

    def fraction_ge(self, value) -> float:
        return 1.0 - self.fraction_le(value) + self.fraction_at(value)

    def fraction_at(self, value) -> float:
        """Estimated fraction of values equal to ``value`` — the mass of the
        straddling bucket spread uniformly over its width (coarse, but keeps
        ``<=`` vs ``>=`` consistent at bucket edges)."""
        try:
            if value < self.edges[0] or value > self.edges[-1]:
                return 0.0
        except TypeError:
            return 0.0
        mass = 0.0
        for i, count in enumerate(self.counts):
            low, high = self.edges[i], self.edges[i + 1]
            # Duplicate-heavy data yields runs of zero-width buckets all
            # holding the same value; their masses must accumulate.
            if low == high:
                if low == value:
                    mass += count / self.total
                continue
            inside = (low <= value <= high) if i == 0 else (low < value <= high)
            if inside:
                mass += (count / self.total) / max(count, 1)
        return mass

    def fraction_between(self, low, high) -> float:
        """Estimated fraction in ``[low, high]``; ``None`` bounds are open."""
        upper = self.fraction_le(high) if high is not None else 1.0
        lower = (
            self.fraction_le(low) - self.fraction_at(low)
            if low is not None
            else 0.0
        )
        return max(0.0, min(1.0, upper - max(0.0, lower)))

    @property
    def buckets(self) -> int:
        return len(self.counts)

    def as_dict(self) -> dict:
        return {
            "buckets": self.buckets,
            "total": self.total,
            "edges": list(self.edges),
            "counts": list(self.counts),
        }


def _interp(low, high, value) -> float:
    try:
        width = high - low
        if not width:
            return 1.0
        return max(0.0, min(1.0, (value - low) / width))
    except TypeError:
        return 0.5  # orderable but not subtractable (e.g. strings)


@dataclass(frozen=True, slots=True)
class AttributeStats:
    """Statistics for one attribute of one analyzed object."""

    name: str
    count: int
    distinct: int
    min: object = None
    max: object = None
    histogram: Optional[EquiDepthHistogram] = None

    def selectivity_eq(self, value) -> Optional[float]:
        """Estimated fraction of rows with attribute = ``value``."""
        if self.distinct <= 0:
            return None
        if self.histogram is not None:
            try:
                if value < self.min or value > self.max:
                    return 1.0 / max(self.count, 1)
            except TypeError:
                pass
        return 1.0 / self.distinct

    def selectivity_range(self, low, high) -> Optional[float]:
        """Estimated fraction of rows in ``[low, high]`` (``None`` = open)."""
        if self.histogram is None:
            return None
        return self.histogram.fraction_between(low, high)

    def as_dict(self) -> dict:
        d = {
            "count": self.count,
            "distinct": self.distinct,
            "min": self.min,
            "max": self.max,
        }
        if self.histogram is not None:
            d["histogram"] = self.histogram.as_dict()
        return d


@dataclass(frozen=True, slots=True)
class RelationStats:
    """Statistics for one analyzed object (relation or rep structure).

    ``row_count`` is maintained incrementally by the update path;
    ``analyzed_rows`` is the count at the last ``analyze`` — their drift
    defines :attr:`stale`.  ``observed`` maps predicate keys (formatted
    predicate terms) to selectivities folded back from execution feedback.
    """

    name: str
    row_count: int
    analyzed_rows: int
    attributes: dict[str, AttributeStats] = field(default_factory=dict)
    structure: dict = field(default_factory=dict)
    key_attr: Optional[str] = None
    observed: dict[str, float] = field(default_factory=dict)

    @property
    def stale(self) -> bool:
        base = max(self.analyzed_rows, 1)
        return abs(self.row_count - self.analyzed_rows) > STALE_FRACTION * base

    def attr(self, name: str) -> Optional[AttributeStats]:
        return self.attributes.get(name)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "row_count": self.row_count,
            "analyzed_rows": self.analyzed_rows,
            "stale": self.stale,
            "key_attr": self.key_attr,
            "structure": dict(self.structure),
            "attributes": {
                name: a.as_dict() for name, a in self.attributes.items()
            },
            "observed": dict(self.observed),
        }


class StatsCatalog:
    """Per-database statistics: object name -> :class:`RelationStats`.

    All mutations are copy-on-write over immutable entries, so
    :meth:`snapshot` / :meth:`restore` (the transaction hooks) are shallow
    dict copies — rollback-safe at pointer-copy cost, exactly like the
    ``aliases`` / ``objects`` catalog dictionaries.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Optional[dict] = None) -> None:
        self.entries: dict[str, RelationStats] = dict(entries or {})

    def get(self, name: str) -> Optional[RelationStats]:
        return self.entries.get(name)

    def put(self, stats: RelationStats) -> None:
        self.entries[stats.name] = stats

    def discard(self, name: str) -> None:
        self.entries.pop(name, None)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[RelationStats]:
        return iter(self.entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    # ---- incremental maintenance (hot path: guarded by `if entries`)

    def note_rowcount(self, name: str, count: int) -> None:
        """Record the live row count of an analyzed object (called from the
        transactional write path on every successful ``set_value``)."""
        entry = self.entries.get(name)
        if entry is not None and entry.row_count != count:
            self.entries[name] = replace(entry, row_count=count)

    def record_observed(
        self, name: str, key: str, selectivity: float, alpha: float = 0.5
    ) -> None:
        """Fold an observed predicate selectivity into the entry (EWMA with
        weight ``alpha`` on the newest observation)."""
        entry = self.entries.get(name)
        if entry is None:
            return
        previous = entry.observed.get(key)
        blended = (
            selectivity
            if previous is None
            else alpha * selectivity + (1.0 - alpha) * previous
        )
        observed = dict(entry.observed)
        observed[key] = blended
        self.entries[name] = replace(entry, observed=observed)

    # ---- transaction hooks

    def snapshot(self) -> dict[str, RelationStats]:
        return dict(self.entries)

    def restore(self, snap: dict[str, RelationStats]) -> None:
        self.entries.clear()
        self.entries.update(snap)

    def __repr__(self) -> str:
        return f"<StatsCatalog entries={sorted(self.entries)}>"
