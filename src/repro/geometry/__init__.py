"""Spatial data types used by the representation model of Section 4.

The paper's representation-level type system includes the atomic geometric
types ``point``, ``rect`` and ``pgon`` with the operators ``inside`` and
``bbox``.  These are full value implementations: the LSD-tree stores
rectangles (bounding boxes of polygons), and the spatial join examples rely
on point-in-polygon tests.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.polygon import Polygon

__all__ = ["Point", "Rect", "Polygon"]
