"""Axis-parallel rectangles (the atomic type ``rect``).

Rectangles are the objects the LSD-tree [HeSW89] stores: bounding boxes of
polygon attributes.  Intervals are closed on both ends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True, order=True)
class Rect:
    """An axis-parallel rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"degenerate rectangle: {self}")

    def contains_point(self, p: Point) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2, (self.ymin + self.ymax) / 2)

    @property
    def area(self) -> float:
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def __str__(self) -> str:
        return f"[{self.xmin}, {self.xmax}] x [{self.ymin}, {self.ymax}]"
