"""Simple polygons (the atomic type ``pgon``) with point containment and
bounding boxes.

The paper's running example joins cities to the states they lie in via
``center inside region`` where ``region`` is a polygon; its optimizer rule
replaces the scan by an LSD-tree search over ``bbox(region)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Polygon:
    """A simple polygon given by its vertex ring (implicitly closed)."""

    vertices: tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")

    @classmethod
    def from_coords(cls, coords) -> "Polygon":
        """Build from an iterable of (x, y) pairs."""
        return cls(tuple(Point(float(x), float(y)) for x, y in coords))

    @classmethod
    def rectangle(cls, xmin: float, ymin: float, xmax: float, ymax: float) -> "Polygon":
        """A rectangular polygon — convenient for synthetic regions."""
        return cls(
            (
                Point(xmin, ymin),
                Point(xmax, ymin),
                Point(xmax, ymax),
                Point(xmin, ymax),
            )
        )

    def bbox(self) -> Rect:
        """The bounding box — the ``bbox`` operator of the paper."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def contains_point(self, p: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if _on_segment(a, b, p):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def __str__(self) -> str:
        return "pgon(" + ", ".join(str(v) for v in self.vertices) + ")"


def _on_segment(a: Point, b: Point, p: Point) -> bool:
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > 1e-12:
        return False
    return (
        min(a.x, b.x) - 1e-12 <= p.x <= max(a.x, b.x) + 1e-12
        and min(a.y, b.y) - 1e-12 <= p.y <= max(a.y, b.y) + 1e-12
    )
