"""2-D points (the atomic type ``point`` of the representation model)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def __str__(self) -> str:
        return f"({self.x}, {self.y})"
