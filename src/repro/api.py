"""The public entry point: ``repro.api.connect``.

Everything user-facing goes through one call, addressed by DSN::

    from repro.api import connect

    db = connect()                       # in-memory, full relational stack
    db.run("create cities : rel(city)")
    result = db.query("cities select[pop > 100000]")
    print(result.value, result.timings)

    db = connect("file:./mydb")          # durable: WAL + checkpoints
    db.run('update cities := insert(cities, ...)')   # survives a crash
    db.close()

    db = connect("repro://localhost:7464")   # a multi-session server
    with connect("repro://localhost") as db: # default port, auto-close
        db.run_one("update cities := ...")   # same surface, same errors

The DSN forms:

``None`` (default)
    a fresh in-memory database with the rule-based optimizer.
``"file:PATH"``
    a durable database directory — recovered on open, write-ahead logged
    afterwards (``data_dir=PATH`` is sugar for this form).
``"repro://HOST[:PORT][?options]"``
    a session on a running multi-session server
    (``python -m repro serve``) — optimistic concurrency with
    first-committer-wins; a lost race raises
    :class:`~repro.errors.ConflictError`, and retrying the transaction
    succeeds.  Query options opt into client-side fault tolerance:
    ``?retries=3&deadline_ms=5000&backoff_ms=50`` enables transparent
    reconnect + retry with exactly-once commits (every mutation carries
    an idempotency token the server journals); ``connect_timeout_ms``
    and ``backoff_cap_ms`` tune the dial timeout and the backoff cap.
    See ``docs/API.md`` and ``docs/ROBUSTNESS.md``.
``"relational"`` / ``"model"``
    legacy model names, still accepted positionally (``model="model"``
    gives the plain Section 2.4 interpreter without optimizing
    translation).

Whatever the DSN, ``connect`` hands back a :class:`Session` —
:class:`LocalSession` in-process, ``NetworkSession`` over a socket — with
one surface: ``run`` / ``run_one`` / ``query`` speak
:class:`~repro.system.sos_system.SystemResult`, ``explain`` / ``lint`` /
``checkpoint`` / ``dump`` round it out, ``close`` is idempotent, and every
session is a context manager.  Network sessions raise the same exception
classes with the same fields as local ones (see ``docs/API.md``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CatalogError, LintError
from repro.observe import Event, Tracer
from repro.optimizer import Optimizer
from repro.system.dump import dump_program, restore_program
from repro.system.sos_system import (
    SOSSystem,
    SystemResult,
    build_model_interpreter,
    build_relational_system,
)

__all__ = ["connect", "Session", "LocalSession"]

_MODELS = ("relational", "model")


def connect(
    dsn: Optional[str] = None,
    *,
    model: Optional[str] = None,
    optimizer: Optional[Optimizer] = None,
    trace: object = None,
    data_dir: Optional[str] = None,
    group_commit: int = 1,
    checkpoint_interval: Optional[int] = None,
    lint: Optional[str] = None,
    precheck: Optional[str] = None,
) -> "Session":
    """Open a session on the database the DSN names (see the module
    docstring for the DSN forms).

    ``model``
        ``"relational"`` (default) — the full stack with the rule-based
        optimizer translating model-level statements to representation
        plans; ``"model"`` — a plain interpreter executing model-level
        statements directly, no translation.  (A bare model name is also
        accepted as the ``dsn``, the historical calling convention.)
    ``optimizer``
        a custom :class:`~repro.optimizer.Optimizer` (local relational
        sessions only; the standard rule set otherwise).
    ``trace``
        ``True`` enables metric collection (every result carries
        ``metrics`` and ``rule_trace``); a callable additionally
        subscribes to the session's event bus; a
        :class:`~repro.observe.Tracer` is used as the bus itself.
        ``None``/``False`` leaves observability off (the default).
        On a ``repro://`` session the same forms apply, and a session
        with subscribers also receives the *server's* phase spans,
        replayed into its bus under the session's trace ID (one
        cross-process timeline; see ``docs/OBSERVABILITY.md``).
    ``data_dir``
        sugar for a ``file:`` DSN: a directory for durable state
        (relational model only).  Opening recovers whatever the directory
        holds (checkpoint + committed write-ahead log); afterwards every
        mutating statement is logged ahead of execution and acknowledged
        only once its commit record is on disk.  See ``docs/DURABILITY.md``.
    ``group_commit``
        with a durable DSN: fsync the log every Nth commit instead of
        every commit (records are still flushed per statement, so a
        process crash loses nothing acknowledged; only a machine failure
        can).
    ``checkpoint_interval``
        with a durable DSN: committed statements between automatic
        checkpoints (default
        :data:`repro.durability.DEFAULT_CHECKPOINT_INTERVAL`; 0 disables
        automatic checkpoints — call :meth:`Session.checkpoint`).
    ``lint``
        ``"strict"`` runs the static analyzer (:mod:`repro.lint`) over the
        session's signature and rules right after building and raises
        :class:`~repro.errors.LintError` on error-severity diagnostics;
        ``"warn"`` prints them as :mod:`warnings` instead.  ``None`` (the
        default) skips the analysis; :meth:`Session.lint` runs it on
        demand.  See ``docs/STATIC_ANALYSIS.md``.
    ``precheck``
        statically analyze every program handed to :meth:`Session.run` /
        :meth:`Session.run_one` (the :func:`repro.lint.lint_program`
        pass) *before* it executes: ``"strict"`` raises
        :class:`~repro.errors.LintError` on error-severity findings —
        on a network session the program is rejected before any MVCC
        transaction begins or WAL frame is written; ``"warn"`` surfaces
        findings as :mod:`warnings` and runs the program anyway.
        ``None`` (the default) skips the pass; :meth:`Session.check`
        runs it on demand.  Works on every transport.
    """
    if precheck not in (None, "strict", "warn"):
        raise CatalogError(
            f"precheck must be None, 'strict' or 'warn', not {precheck!r}"
        )
    if dsn is not None and dsn.startswith("repro://"):
        for name, value in (
            ("model", model), ("optimizer", optimizer),
            ("data_dir", data_dir), ("lint", lint),
        ):
            if value is not None:
                raise CatalogError(
                    f"{name}= does not apply to a network session; "
                    "configure the server instead"
                )
        from repro.server.client import NetworkSession

        session = NetworkSession.open(dsn)
        session._precheck = precheck
        if isinstance(trace, Tracer):
            # Adopt the caller's bus, exactly like a local session: its
            # subscribers see client statement spans with the server's
            # phase spans stitched in.
            session._tracer = trace
        elif callable(trace):
            session.subscribe(trace)
        if trace:
            session.set_tracing(True)
        return session

    if dsn is not None:
        if dsn.startswith("file:"):
            path = dsn[len("file:"):]
            if not path:
                raise CatalogError("file: DSN needs a path, e.g. file:./mydb")
            if data_dir is not None and data_dir != path:
                raise CatalogError(
                    f"conflicting locations: dsn {dsn!r} vs data_dir={data_dir!r}"
                )
            data_dir = path
        elif dsn in _MODELS:
            if model is not None and model != dsn:
                raise CatalogError(
                    f"conflicting models: dsn {dsn!r} vs model={model!r}"
                )
            model = dsn
        else:
            raise CatalogError(
                f"unknown data model: {dsn!r}"
                " (expected file:PATH, repro://host:port,"
                " 'relational' or 'model')"
            )
    if model is None:
        model = "relational"
    if model not in _MODELS:
        raise CatalogError(f"unknown data model: {model!r}")
    if lint not in (None, "strict", "warn"):
        raise CatalogError(
            f"lint must be None, 'strict' or 'warn', not {lint!r}"
        )
    tracer = trace if isinstance(trace, Tracer) else None
    if model == "model":
        if optimizer is not None:
            raise CatalogError("the model-level interpreter takes no optimizer")
        if data_dir is not None:
            raise CatalogError(
                "durable mode needs the relational system; "
                "the model-level interpreter has no data_dir support"
            )
        session = LocalSession(
            _interpreter=build_model_interpreter(), _tracer=tracer
        )
    else:
        session = LocalSession(
            _system=build_relational_system(optimizer, tracer=tracer)
        )
    session._precheck = precheck
    if callable(trace) and not isinstance(trace, Tracer):
        session.tracer.subscribe(trace)
    if trace:
        session.set_tracing(True)
    if data_dir is not None:
        from repro.durability import DEFAULT_CHECKPOINT_INTERVAL, DurabilityManager

        manager = DurabilityManager(
            data_dir,
            group_commit=group_commit,
            checkpoint_interval=(
                DEFAULT_CHECKPOINT_INTERVAL
                if checkpoint_interval is None
                else checkpoint_interval
            ),
            tracer=session.tracer,
        )
        manager.attach(session.system)
    if lint is not None:
        report = session.lint()
        if lint == "strict" and not report.ok:
            raise LintError(
                "static analysis found "
                f"{len(report.errors)} error(s):\n{report.render_text()}",
                report,
            )
        if lint == "warn" and len(report):
            import warnings

            for diagnostic in report.sorted():
                warnings.warn(diagnostic.render(), stacklevel=2)
    return session


def enforce_precheck(mode: Optional[str], report, source: str) -> None:
    """Apply a session's ``precheck`` policy to a program's
    :class:`~repro.lint.LintReport` (shared by both transports).

    ``"strict"`` raises :class:`~repro.errors.LintError` when the report
    has error-severity findings; ``"warn"`` emits one :mod:`warnings`
    entry per error/warning finding (info stays silent) and lets the
    program run.
    """
    if mode is None or not len(report):
        return
    if mode == "strict" and not report.ok:
        raise LintError(
            f"precheck rejected the program ({len(report.errors)} "
            f"error(s)):\n{report.render_text()}",
            report,
        )
    if mode == "warn":
        import warnings

        for diagnostic in report.sorted():
            if diagnostic.severity != "info":
                warnings.warn(diagnostic.render(), stacklevel=3)


class Session:
    """The connection protocol every ``connect`` variant returns.

    ``run`` / ``run_one`` / ``query`` all return
    :class:`~repro.system.sos_system.SystemResult` (``run`` a list of
    them) whatever sits behind the session — the in-process system, the
    model interpreter, or a socket to a multi-session server.  ``explain``
    / ``lint`` / ``checkpoint`` / ``dump`` round out the shared surface;
    ``close`` is idempotent, and a closed session still answers queries
    while mutations raise :class:`~repro.errors.CatalogError`.  Sessions
    are context managers (``with connect(...) as db:``).
    """

    __slots__ = ()

    # -- shared conveniences -------------------------------------------------

    def query(self, source: str) -> SystemResult:
        """Run one query expression; the answer is ``result.value``."""
        return self.run_one("query " + source)

    def analyze(self, *names: str) -> SystemResult:
        """Gather statistics for ``names`` (all scannable objects when
        empty); shorthand for running an ``analyze`` statement."""
        statement = "analyze " + ", ".join(names) if names else "analyze"
        return self.run_one(statement)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the protocol each variant implements --------------------------------

    def run(self, source: str, atomic: bool = False) -> list[SystemResult]:
        raise NotImplementedError

    def run_one(self, source: str) -> SystemResult:
        raise NotImplementedError

    def explain(self, source: str, *, analyze: bool = False) -> dict:
        raise NotImplementedError

    def lint(self):
        raise NotImplementedError

    def check(self, source: str, *, atomic: bool = False):
        raise NotImplementedError

    def checkpoint(self) -> int:
        raise NotImplementedError

    def dump(self) -> str:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


class LocalSession(Session):
    """A session over an in-process database (the historical ``Session``).

    The underlying machinery stays reachable via ``session.system``,
    ``session.database`` and ``session.tracer``; ``restore`` / ``stats`` /
    ``subscribe`` / ``set_feedback`` are local-only extras.
    """

    __slots__ = ("_system", "_interpreter", "_tracer", "_closed", "_precheck")

    def __init__(self, *, _system=None, _interpreter=None, _tracer=None):
        self._system: Optional[SOSSystem] = _system
        self._interpreter = _interpreter
        self._tracer = (
            _system.tracer
            if _system is not None
            else (_tracer if _tracer is not None else Tracer())
        )
        self._closed = False
        self._precheck: Optional[str] = None

    # ----------------------------------------------------------- properties

    @property
    def system(self) -> SOSSystem:
        """The underlying :class:`SOSSystem` (relational sessions only)."""
        if self._system is None:
            raise CatalogError("a model-level session has no optimizer system")
        return self._system

    @property
    def interpreter(self):
        """The underlying interpreter (statement front end)."""
        if self._system is not None:
            return self._system.interpreter
        return self._interpreter

    @property
    def database(self):
        if self._system is not None:
            return self._system.database
        return self._interpreter.database

    @property
    def tracer(self) -> Tracer:
        """The session's event bus; subscribe callables to receive
        :class:`~repro.observe.Event` objects."""
        return self._tracer

    @property
    def durability(self):
        """The attached :class:`~repro.durability.DurabilityManager`, or
        ``None`` for an in-memory session."""
        return self._system.durability if self._system is not None else None

    @property
    def durable(self) -> bool:
        return self.durability is not None

    # ------------------------------------------------------------ durability

    def checkpoint(self) -> int:
        """Snapshot the database and truncate the write-ahead log; returns
        the new checkpoint epoch (durable sessions only)."""
        manager = self.durability
        if manager is None:
            raise CatalogError("session has no data_dir; nothing to checkpoint")
        return manager.checkpoint()

    def flush(self) -> None:
        """Fsync any commit records the group-commit policy left pending
        (no-op for in-memory sessions)."""
        manager = self.durability
        if manager is not None:
            manager.flush()

    def close(self) -> None:
        """Close the session (idempotent).  Durable state is flushed and
        its log closed.  A closed session still answers queries, but
        mutating statements raise :class:`~repro.errors.CatalogError` — a
        mutation after close would silently break the durability contract
        (and, in-memory, could never be observed again anyway).
        """
        if self._closed:
            return
        self._closed = True
        manager = self.durability
        if manager is not None:
            manager.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_mutable(self, source: str) -> None:
        """The closed-session contract for in-memory sessions; durable
        sessions enforce the same thing in the system front end."""
        if not self._closed or self.durable:
            return
        first = source.lstrip().split(None, 1)
        if first and first[0] != "query":
            raise CatalogError(
                "session is closed; reopen with connect() to mutate it"
            )

    # -------------------------------------------------------- observability

    def set_tracing(self, enabled: bool = True) -> None:
        """Toggle per-statement metric collection for this session."""
        if self._system is not None:
            self._system.set_tracing(enabled)

    @property
    def tracing(self) -> bool:
        return self._system.tracing if self._system is not None else False

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Shorthand for ``session.tracer.subscribe(fn)``."""
        return self._tracer.subscribe(fn)

    def set_feedback(self, enabled: bool = True) -> None:
        """Toggle cardinality feedback (relational sessions; requires
        tracing to also be on — see :meth:`SOSSystem.set_feedback`)."""
        if self._system is not None:
            self._system.set_feedback(enabled)

    # ------------------------------------------------------------------ lint

    def lint(self) -> "LintReport":
        """Run the static analyzer over this session's signature — and,
        for relational sessions, the optimizer's rules against it.
        Returns the :class:`~repro.lint.LintReport`; raises nothing."""
        from repro.lint import lint_database

        return lint_database(
            self.database,
            self._system.optimizer if self._system is not None else None,
            source=repr(self),
        )

    def check(self, source: str, *, atomic: bool = False):
        """Statically analyze a whole program against this session's
        signature and catalog without executing it — the
        :func:`repro.lint.lint_program` pass (``PRG...`` codes).
        Returns the :class:`~repro.lint.LintReport`; raises nothing."""
        from repro.lint import lint_program

        return lint_program(self.database, source, atomic=atomic)

    # ------------------------------------------------------------ statistics

    def stats(self, name: str) -> dict:
        """The statistics entries related to ``name`` (its own, or its
        registered representations'), as plain dictionaries."""
        from repro.stats.analyze import related_stats

        return {
            entry.name: entry.as_dict()
            for entry in related_stats(self.database, name)
        }

    # ------------------------------------------------------------ execution

    def run(self, source: str, atomic: bool = False) -> list[SystemResult]:
        """Process a program; one :class:`SystemResult` per statement."""
        if self._precheck is not None:
            enforce_precheck(
                self._precheck, self.check(source, atomic=atomic), source
            )
        if self._closed and not self.durable:
            from repro.lang.parser import split_statements

            for chunk in split_statements(source):
                self._check_mutable(chunk)
        if self._system is not None:
            return self._system.run(source, atomic=atomic)
        return [self._lift(r) for r in self._interpreter.run(source)]

    def run_one(self, source: str) -> SystemResult:
        """Process exactly one statement."""
        if self._precheck is not None:
            enforce_precheck(self._precheck, self.check(source), source)
        self._check_mutable(source)
        if self._system is not None:
            return self._system.run_one(source)
        return self._lift(self._interpreter.run_one(source))

    def explain(self, source: str, *, analyze: bool = False) -> dict:
        """The plan report for a query; see :meth:`SOSSystem.explain`."""
        return self.system.explain(source, analyze=analyze)

    # ---------------------------------------------------------- persistence

    def dump(self) -> str:
        """The database as a re-runnable program text."""
        return dump_program(self.database)

    def restore(self, text: str) -> None:
        """Replay a dumped program into this session."""
        restore_program(
            self._system if self._system is not None else self._interpreter,
            text,
        )

    # ------------------------------------------------------------- internal

    @staticmethod
    def _lift(result) -> SystemResult:
        """Adapt an interpreter StatementResult to the unified shape."""
        if isinstance(result, SystemResult):
            return result
        return SystemResult(
            kind=result.kind,
            level="model",
            name=result.name,
            type=result.type,
            value=result.value,
            term=result.term,
        )

    def __repr__(self) -> str:
        kind = "relational" if self._system is not None else "model"
        return f"<Session model={kind} objects={len(self.database.objects)}>"
