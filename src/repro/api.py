"""The public entry point: ``repro.api.connect``.

Everything user-facing goes through one call::

    from repro.api import connect

    db = connect()                      # full relational stack + optimizer
    db.run("create cities : rel(city)")
    result = db.query("cities select[pop > 100000]")
    print(result.value, result.timings)

    traced = connect(trace=True)        # operator metrics on every result
    plan = traced.explain("cities select[pop > 100000]", analyze=True)

    db = connect(data_dir="./mydb")     # durable: WAL + checkpoints
    db.run('update cities := insert(cities, ...)')   # survives a crash
    db.close()

``connect(model="model")`` gives a plain model-level interpreter (no
optimizing translation — Section 2.4 semantics); everything else is the
mixed-program system of Section 6.  Both hand back a :class:`Session`
whose ``run`` / ``run_one`` / ``query`` all speak the same result shape,
:class:`~repro.system.sos_system.SystemResult`.

``connect(data_dir=...)`` opens (or creates) a *durable* database: the
directory's state is recovered first (checkpoint + committed write-ahead
log), and every mutating statement is then logged ahead of execution —
see ``docs/DURABILITY.md``.

The old ``make_relational_system`` / ``make_model_interpreter`` /
``make_relational_database`` factories still work but emit a
``DeprecationWarning`` (once per process) pointing here.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CatalogError, LintError
from repro.observe import Event, Tracer
from repro.optimizer import Optimizer
from repro.system.dump import dump_program, restore_program
from repro.system.sos_system import (
    SOSSystem,
    SystemResult,
    build_model_interpreter,
    build_relational_system,
)

__all__ = ["connect", "Session"]


def connect(
    model: str = "relational",
    *,
    optimizer: Optional[Optimizer] = None,
    trace: object = None,
    data_dir: Optional[str] = None,
    group_commit: int = 1,
    checkpoint_interval: Optional[int] = None,
    lint: Optional[str] = None,
) -> "Session":
    """Open a session over a freshly built database.

    ``model``
        ``"relational"`` (default) — the full stack with the rule-based
        optimizer translating model-level statements to representation
        plans; ``"model"`` — a plain interpreter executing model-level
        statements directly, no translation.
    ``optimizer``
        a custom :class:`~repro.optimizer.Optimizer` (relational model
        only; the standard rule set otherwise).
    ``trace``
        ``True`` enables metric collection (every result carries
        ``metrics`` and ``rule_trace``); a callable additionally
        subscribes to the session's event bus; a
        :class:`~repro.observe.Tracer` is used as the bus itself.
        ``None``/``False`` leaves observability off (the default).
    ``data_dir``
        a directory for durable state (relational model only).  Opening
        recovers whatever the directory holds (checkpoint + committed
        write-ahead log); afterwards every mutating statement is logged
        ahead of execution and acknowledged only once its commit record
        is on disk.  See ``docs/DURABILITY.md``.
    ``group_commit``
        with ``data_dir``: fsync the log every Nth commit instead of every
        commit (records are still flushed per statement, so a process
        crash loses nothing acknowledged; only a machine failure can).
    ``checkpoint_interval``
        with ``data_dir``: committed statements between automatic
        checkpoints (default
        :data:`repro.durability.DEFAULT_CHECKPOINT_INTERVAL`; 0 disables
        automatic checkpoints — call :meth:`Session.checkpoint`).
    ``lint``
        ``"strict"`` runs the static analyzer (:mod:`repro.lint`) over the
        session's signature and rules right after building and raises
        :class:`~repro.errors.LintError` on error-severity diagnostics;
        ``"warn"`` prints them as :mod:`warnings` instead.  ``None`` (the
        default) skips the analysis; :meth:`Session.lint` runs it on
        demand.  See ``docs/STATIC_ANALYSIS.md``.
    """
    if model not in ("relational", "model"):
        raise CatalogError(f"unknown data model: {model!r}")
    if lint not in (None, "strict", "warn"):
        raise CatalogError(
            f"lint must be None, 'strict' or 'warn', not {lint!r}"
        )
    tracer = trace if isinstance(trace, Tracer) else None
    if model == "model":
        if optimizer is not None:
            raise CatalogError("the model-level interpreter takes no optimizer")
        if data_dir is not None:
            raise CatalogError(
                "durable mode needs the relational system; "
                "the model-level interpreter has no data_dir support"
            )
        session = Session(_interpreter=build_model_interpreter(), _tracer=tracer)
    else:
        session = Session(
            _system=build_relational_system(optimizer, tracer=tracer)
        )
    if callable(trace) and not isinstance(trace, Tracer):
        session.tracer.subscribe(trace)
    if trace:
        session.set_tracing(True)
    if data_dir is not None:
        from repro.durability import DEFAULT_CHECKPOINT_INTERVAL, DurabilityManager

        manager = DurabilityManager(
            data_dir,
            group_commit=group_commit,
            checkpoint_interval=(
                DEFAULT_CHECKPOINT_INTERVAL
                if checkpoint_interval is None
                else checkpoint_interval
            ),
            tracer=session.tracer,
        )
        manager.attach(session.system)
    if lint is not None:
        report = session.lint()
        if lint == "strict" and not report.ok:
            raise LintError(
                "static analysis found "
                f"{len(report.errors)} error(s):\n{report.render_text()}",
                report,
            )
        if lint == "warn" and len(report):
            import warnings

            for diagnostic in report.sorted():
                warnings.warn(diagnostic.render(), stacklevel=2)
    return session


class Session:
    """A connection-like handle over one database.

    ``run`` / ``run_one`` / ``query`` all return
    :class:`~repro.system.sos_system.SystemResult` (``run`` a list of
    them), whatever the underlying model — the single result shape of the
    API.  ``explain`` / ``dump`` / ``restore`` round out the surface; the
    underlying machinery stays reachable via ``session.system``,
    ``session.database`` and ``session.tracer``.
    """

    __slots__ = ("_system", "_interpreter", "_tracer")

    def __init__(self, *, _system=None, _interpreter=None, _tracer=None):
        self._system: Optional[SOSSystem] = _system
        self._interpreter = _interpreter
        self._tracer = (
            _system.tracer
            if _system is not None
            else (_tracer if _tracer is not None else Tracer())
        )

    # ----------------------------------------------------------- properties

    @property
    def system(self) -> SOSSystem:
        """The underlying :class:`SOSSystem` (relational sessions only)."""
        if self._system is None:
            raise CatalogError("a model-level session has no optimizer system")
        return self._system

    @property
    def interpreter(self):
        """The underlying interpreter (statement front end)."""
        if self._system is not None:
            return self._system.interpreter
        return self._interpreter

    @property
    def database(self):
        if self._system is not None:
            return self._system.database
        return self._interpreter.database

    @property
    def tracer(self) -> Tracer:
        """The session's event bus; subscribe callables to receive
        :class:`~repro.observe.Event` objects."""
        return self._tracer

    @property
    def durability(self):
        """The attached :class:`~repro.durability.DurabilityManager`, or
        ``None`` for an in-memory session."""
        return self._system.durability if self._system is not None else None

    @property
    def durable(self) -> bool:
        return self.durability is not None

    # ------------------------------------------------------------ durability

    def checkpoint(self) -> int:
        """Snapshot the database and truncate the write-ahead log; returns
        the new checkpoint epoch (durable sessions only)."""
        manager = self.durability
        if manager is None:
            raise CatalogError("session has no data_dir; nothing to checkpoint")
        return manager.checkpoint()

    def flush(self) -> None:
        """Fsync any commit records the group-commit policy left pending
        (no-op for in-memory sessions)."""
        manager = self.durability
        if manager is not None:
            manager.flush()

    def close(self) -> None:
        """Flush and close the durable log (no-op for in-memory sessions).

        A closed durable session still answers queries, but mutating
        statements raise — a mutation that could no longer be logged would
        silently break the durability contract.
        """
        manager = self.durability
        if manager is not None:
            manager.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------- observability

    def set_tracing(self, enabled: bool = True) -> None:
        """Toggle per-statement metric collection for this session."""
        if self._system is not None:
            self._system.set_tracing(enabled)

    @property
    def tracing(self) -> bool:
        return self._system.tracing if self._system is not None else False

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Shorthand for ``session.tracer.subscribe(fn)``."""
        return self._tracer.subscribe(fn)

    def set_feedback(self, enabled: bool = True) -> None:
        """Toggle cardinality feedback (relational sessions; requires
        tracing to also be on — see :meth:`SOSSystem.set_feedback`)."""
        if self._system is not None:
            self._system.set_feedback(enabled)

    # ------------------------------------------------------------------ lint

    def lint(self) -> "LintReport":
        """Run the static analyzer over this session's signature — and,
        for relational sessions, the optimizer's rules against it.
        Returns the :class:`~repro.lint.LintReport`; raises nothing."""
        from repro.lint import lint_database

        return lint_database(
            self.database,
            self._system.optimizer if self._system is not None else None,
            source=repr(self),
        )

    # ------------------------------------------------------------ statistics

    def analyze(self, *names: str) -> SystemResult:
        """Gather statistics for ``names`` (all scannable objects when
        empty); shorthand for running an ``analyze`` statement."""
        statement = "analyze " + ", ".join(names) if names else "analyze"
        return self.run_one(statement)

    def stats(self, name: str) -> dict:
        """The statistics entries related to ``name`` (its own, or its
        registered representations'), as plain dictionaries."""
        from repro.stats.analyze import related_stats

        return {
            entry.name: entry.as_dict()
            for entry in related_stats(self.database, name)
        }

    # ------------------------------------------------------------ execution

    def run(self, source: str, atomic: bool = False) -> list[SystemResult]:
        """Process a program; one :class:`SystemResult` per statement."""
        if self._system is not None:
            return self._system.run(source, atomic=atomic)
        return [self._lift(r) for r in self._interpreter.run(source)]

    def run_one(self, source: str) -> SystemResult:
        """Process exactly one statement."""
        if self._system is not None:
            return self._system.run_one(source)
        return self._lift(self._interpreter.run_one(source))

    def query(self, source: str) -> SystemResult:
        """Run one query expression; the answer is ``result.value``."""
        if self._system is not None:
            return self._system.query(source)
        return self._lift(self._interpreter.run_one("query " + source))

    def explain(self, source: str, *, analyze: bool = False) -> dict:
        """The plan report for a query; see :meth:`SOSSystem.explain`."""
        return self.system.explain(source, analyze=analyze)

    # ---------------------------------------------------------- persistence

    def dump(self) -> str:
        """The database as a re-runnable program text."""
        return dump_program(self.database)

    def restore(self, text: str) -> None:
        """Replay a dumped program into this session."""
        restore_program(
            self._system if self._system is not None else self._interpreter,
            text,
        )

    # ------------------------------------------------------------- internal

    @staticmethod
    def _lift(result) -> SystemResult:
        """Adapt an interpreter StatementResult to the unified shape."""
        if isinstance(result, SystemResult):
            return result
        return SystemResult(
            kind=result.kind,
            level="model",
            name=result.name,
            type=result.type,
            value=result.value,
            term=result.term,
        )

    def __repr__(self) -> str:
        kind = "relational" if self._system is not None else "model"
        return f"<Session model={kind} objects={len(self.database.objects)}>"
