"""Rule-based optimization (paper Section 5, following Gral [BeG92]).

Optimization rules are rewrite rules on algebra terms with typed variables:

* *term variables* bind operand subterms (relations, constants, whole
  parameter functions), constrained by type patterns and kinds;
* *operator variables* bind operator names in application position —
  ``(t1 point)`` matches any attribute/operator applied to ``t1`` with the
  declared functionality;
* *conditions* relate model objects to their representations through
  catalog lookups (``rep(rel1, rep1)``) and subtype/type tests
  (``lsd2: lsdtree(tuple2, f)``), evaluated with backtracking.

The engine applies rule collections in *steps*, each with its own control
strategy, and every rewrite result is re-typechecked before it replaces the
original term.
"""

from repro.optimizer.termmatch import (
    MatchState,
    RuleVar,
    TypeVar,
    instantiate,
    match_pattern,
)
from repro.optimizer.conditions import CatalogCondition, FunCondition, TypeCondition
from repro.optimizer.rules import RewriteRule
from repro.optimizer.engine import Optimizer, OptimizerStep, OptimizationResult
from repro.optimizer.cost import estimate
from repro.optimizer.ruleparser import parse_rule
from repro.optimizer.standard_rules import (
    cost_based_optimizer,
    standard_optimizer,
)

__all__ = [
    "TypeVar",
    "RuleVar",
    "MatchState",
    "match_pattern",
    "instantiate",
    "CatalogCondition",
    "TypeCondition",
    "FunCondition",
    "RewriteRule",
    "Optimizer",
    "OptimizerStep",
    "OptimizationResult",
    "parse_rule",
    "standard_optimizer",
    "cost_based_optimizer",
    "estimate",
]
