"""Rewrite rules: pattern ``=>`` template ``if`` conditions (Section 5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.core.terms import Term, format_term
from repro.optimizer.conditions import Condition, solve_conditions
from repro.optimizer.termmatch import (
    MatchState,
    RuleVar,
    instantiate,
    match_pattern,
)


@dataclass(slots=True)
class RewriteRule:
    """One optimization rule.

    ``apply_at(subject, db)`` yields the rewritten (unchecked) term for each
    way the rule matches at the root of ``subject`` and its conditions are
    satisfiable — the engine takes the first result whose re-typecheck
    succeeds.
    """

    name: str
    variables: Mapping[str, RuleVar]
    lhs: Term
    rhs: Term
    conditions: Sequence[Condition] = field(default_factory=tuple)
    doc: str = ""

    def apply_at(self, subject: Term, db, outcome: list | None = None) -> Iterator[Term]:
        """``outcome``, when given, is a single-element list the rule writes
        its condition-evaluation result into: ``no_match`` (pattern failed),
        ``conditions_failed`` (pattern matched, no condition solution) or
        ``conditions_ok`` — the engine refines the last one into
        ``typecheck_failed`` / ``fired``."""
        state = match_pattern(self.lhs, subject, self.variables, MatchState(), db.sos)
        if state is None:
            if outcome is not None:
                outcome[0] = "no_match"
            return
        if outcome is not None:
            outcome[0] = "conditions_failed"
        for solved in solve_conditions(tuple(self.conditions), state, db):
            if outcome is not None:
                outcome[0] = "conditions_ok"
            yield instantiate(self.rhs, solved)

    def __str__(self) -> str:
        return f"{self.name}: {format_term(self.lhs)} => {format_term(self.rhs)}"


def rule_vars(*declarations: RuleVar) -> dict[str, RuleVar]:
    """Build a variable table from declarations."""
    return {rv.name: rv for rv in declarations}
