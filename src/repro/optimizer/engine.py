"""The rule engine: steps with control strategies (Gral-style, [BeG92]).

An optimizer is a sequence of :class:`OptimizerStep`; each step owns a rule
collection and a control strategy:

``exhaustive``
    apply rules anywhere in the term, repeatedly, until no rule fires (with
    a safety bound on the number of rewrites);
``once_topdown`` / ``once_bottomup``
    one traversal; at each node the first applicable rule fires at most
    once.

Every candidate rewrite is re-typechecked before acceptance; a rewrite whose
instance does not typecheck is discarded (the rule simply does not apply
there), which keeps unsound rules from corrupting plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.terms import Apply, Call, Fun, ListTerm, Term, TupleTerm
from repro.errors import OptimizationError, TypeCheckError
from repro.optimizer.rules import RewriteRule
from repro.testing.faults import fault_point

MAX_REWRITES = 200


@dataclass(slots=True)
class OptimizerStep:
    name: str
    rules: Sequence[RewriteRule]
    strategy: str = "exhaustive"  # 'exhaustive' | 'once_topdown' | 'once_bottomup'
    cost_based: bool = False
    """If true, *all* applicable rewrites at a node are generated and the
    cheapest (by :mod:`repro.optimizer.cost`) is taken, instead of the first
    rule in list order winning."""


@dataclass(slots=True)
class OptimizationResult:
    term: Term
    fired: list[str] = field(default_factory=list)
    tried: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.fired)


class Optimizer:
    """Applies the steps in order to a typechecked term."""

    def __init__(self, steps: Sequence[OptimizerStep]):
        self.steps = list(steps)

    def optimize(self, term: Term, db) -> OptimizationResult:
        """Rewrite ``term`` (already typechecked against ``db``).

        Returns the rewritten, re-typechecked term plus statistics.
        """
        result = OptimizationResult(term)
        try:
            for step in self.steps:
                result.term = self._run_step(step, result.term, db, result)
        except RecursionError:
            raise OptimizationError(
                "optimization exceeded the recursion limit — a rule set is "
                "growing terms without bound"
            ) from None
        return result

    # ------------------------------------------------------------ strategies

    def _run_step(self, step: OptimizerStep, term: Term, db, stats) -> Term:
        if step.strategy == "exhaustive":
            for _ in range(MAX_REWRITES):
                new_term, fired = self._rewrite_once(
                    step.rules, term, db, stats, topdown=True,
                    cost_based=step.cost_based,
                )
                if not fired:
                    return new_term
                term = new_term
            raise OptimizationError(
                f"step {step.name} exceeded {MAX_REWRITES} rewrites "
                "(non-terminating rule set?)"
            )
        if step.strategy == "once_topdown":
            new_term, _ = self._rewrite_once(
                step.rules, term, db, stats, topdown=True,
                cost_based=step.cost_based,
            )
            return new_term
        if step.strategy == "once_bottomup":
            new_term, _ = self._rewrite_once(
                step.rules, term, db, stats, topdown=False,
                cost_based=step.cost_based,
            )
            return new_term
        raise OptimizationError(f"unknown strategy: {step.strategy}")

    def _rewrite_once(
        self,
        rules: Sequence[RewriteRule],
        term: Term,
        db,
        stats,
        topdown: bool,
        cost_based: bool = False,
    ) -> tuple[Term, bool]:
        """One traversal; returns (new term, any rule fired)."""
        if topdown:
            new_term = self._try_rules(rules, term, db, stats, cost_based)
            if new_term is not None:
                return new_term, True
        rebuilt, changed = self._rewrite_children(
            rules, term, db, stats, topdown, cost_based
        )
        if changed:
            return rebuilt, True
        if not topdown:
            new_term = self._try_rules(rules, rebuilt, db, stats, cost_based)
            if new_term is not None:
                return new_term, True
        return rebuilt, False

    def _rewrite_children(
        self, rules, term: Term, db, stats, topdown: bool, cost_based: bool = False
    ) -> tuple[Term, bool]:
        if isinstance(term, Apply):
            for i, arg in enumerate(term.args):
                new_arg, changed = self._rewrite_once(rules, arg, db, stats, topdown, cost_based)
                if changed:
                    term.args = term.args[:i] + (new_arg,) + term.args[i + 1 :]
                    return term, True
            return term, False
        if isinstance(term, Fun):
            new_body, changed = self._rewrite_once(rules, term.body, db, stats, topdown, cost_based)
            if changed:
                term.body = new_body
                return term, True
            return term, False
        if isinstance(term, (ListTerm, TupleTerm)):
            for i, item in enumerate(term.items):
                new_item, changed = self._rewrite_once(rules, item, db, stats, topdown, cost_based)
                if changed:
                    term.items = term.items[:i] + (new_item,) + term.items[i + 1 :]
                    return term, True
            return term, False
        if isinstance(term, Call):
            new_fn, changed = self._rewrite_once(rules, term.fn, db, stats, topdown, cost_based)
            if changed:
                term.fn = new_fn
                return term, True
            for i, arg in enumerate(term.args):
                new_arg, changed = self._rewrite_once(rules, arg, db, stats, topdown, cost_based)
                if changed:
                    term.args = term.args[:i] + (new_arg,) + term.args[i + 1 :]
                    return term, True
            return term, False
        return term, False

    def _try_rules(
        self, rules, term: Term, db, stats, cost_based: bool = False
    ) -> Optional[Term]:
        if not cost_based:
            for rule in rules:
                stats.tried += 1
                for candidate in rule.apply_at(term, db):
                    try:
                        checked = db.typechecker.check(candidate)
                    except TypeCheckError:
                        continue
                    fault_point("optimizer.rule")
                    stats.fired.append(rule.name)
                    return checked
            return None
        # Cost-based choice: generate every applicable rewrite and keep the
        # cheapest plan under the structural cost model.
        from repro.optimizer.cost import estimate

        best = None
        best_cost = None
        best_rule = None
        for rule in rules:
            stats.tried += 1
            for candidate in rule.apply_at(term, db):
                try:
                    checked = db.typechecker.check(candidate)
                except TypeCheckError:
                    continue
                cost = estimate(checked, db)
                if best_cost is None or cost < best_cost:
                    best, best_cost, best_rule = checked, cost, rule
        if best is not None:
            fault_point("optimizer.rule")
            stats.fired.append(best_rule.name)
            return best
        return None
