"""The rule engine: steps with control strategies (Gral-style, [BeG92]).

An optimizer is a sequence of :class:`OptimizerStep`; each step owns a rule
collection and a control strategy:

``exhaustive``
    apply rules anywhere in the term, repeatedly, until no rule fires (with
    a safety bound on the number of rewrites);
``once_topdown`` / ``once_bottomup``
    one traversal; at each node the first applicable rule fires at most
    once.

Every candidate rewrite is re-typechecked before acceptance; a rewrite whose
instance does not typecheck is discarded (the rule simply does not apply
there), which keeps unsound rules from corrupting plans.

Passing a :class:`~repro.observe.RuleTrace` to :meth:`Optimizer.optimize`
records the full decision log — every fired rewrite with the term before
and after, and per-rule attempt outcomes — at formatting cost only paid
when a trace is requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.terms import Apply, Call, Fun, ListTerm, Term, TupleTerm, format_term
from repro.errors import OptimizationError, TypeCheckError
from repro.observe import RuleTrace
from repro.optimizer.rules import RewriteRule
from repro.testing.faults import fault_point

MAX_REWRITES = 200


@dataclass(slots=True)
class OptimizerStep:
    name: str
    rules: Sequence[RewriteRule]
    strategy: str = "exhaustive"  # 'exhaustive' | 'once_topdown' | 'once_bottomup'
    cost_based: bool = False
    """If true, *all* applicable rewrites at a node are generated and the
    cheapest (by :mod:`repro.optimizer.cost`) is taken, instead of the first
    rule in list order winning."""


@dataclass(slots=True)
class OptimizationResult:
    term: Term
    fired: list[str] = field(default_factory=list)
    tried: int = 0
    trace: Optional[RuleTrace] = None

    @property
    def changed(self) -> bool:
        return bool(self.fired)


class Optimizer:
    """Applies the steps in order to a typechecked term."""

    def __init__(self, steps: Sequence[OptimizerStep]):
        self.steps = list(steps)

    def optimize(
        self, term: Term, db, trace: Optional[RuleTrace] = None
    ) -> OptimizationResult:
        """Rewrite ``term`` (already typechecked against ``db``).

        Returns the rewritten, re-typechecked term plus statistics.  With a
        ``trace``, every rule attempt and fired rewrite is recorded on it
        (and on ``result.trace``).
        """
        result = OptimizationResult(term, trace=trace)
        try:
            for step in self.steps:
                result.term = self._run_step(step, result.term, db, result, trace)
        except RecursionError:
            raise OptimizationError(
                "optimization exceeded the recursion limit — a rule set is "
                "growing terms without bound"
            ) from None
        return result

    # ------------------------------------------------------------ strategies

    def _run_step(self, step: OptimizerStep, term: Term, db, stats, trace) -> Term:
        if step.strategy == "exhaustive":
            for _ in range(MAX_REWRITES):
                new_term, fired = self._rewrite_once(
                    step, term, db, stats, topdown=True, trace=trace
                )
                if not fired:
                    return new_term
                term = new_term
            raise OptimizationError(
                f"step {step.name} exceeded {MAX_REWRITES} rewrites "
                "(non-terminating rule set?)"
            )
        if step.strategy == "once_topdown":
            new_term, _ = self._rewrite_once(
                step, term, db, stats, topdown=True, trace=trace
            )
            return new_term
        if step.strategy == "once_bottomup":
            new_term, _ = self._rewrite_once(
                step, term, db, stats, topdown=False, trace=trace
            )
            return new_term
        raise OptimizationError(f"unknown strategy: {step.strategy}")

    def _rewrite_once(
        self,
        step: OptimizerStep,
        term: Term,
        db,
        stats,
        topdown: bool,
        trace: Optional[RuleTrace] = None,
    ) -> tuple[Term, bool]:
        """One traversal; returns (new term, any rule fired)."""
        if topdown:
            new_term = self._try_rules(step, term, db, stats, trace)
            if new_term is not None:
                return new_term, True
        rebuilt, changed = self._rewrite_children(step, term, db, stats, topdown, trace)
        if changed:
            return rebuilt, True
        if not topdown:
            new_term = self._try_rules(step, rebuilt, db, stats, trace)
            if new_term is not None:
                return new_term, True
        return rebuilt, False

    def _rewrite_children(
        self, step: OptimizerStep, term: Term, db, stats, topdown: bool, trace
    ) -> tuple[Term, bool]:
        if isinstance(term, Apply):
            for i, arg in enumerate(term.args):
                new_arg, changed = self._rewrite_once(step, arg, db, stats, topdown, trace)
                if changed:
                    term.args = term.args[:i] + (new_arg,) + term.args[i + 1 :]
                    return term, True
            return term, False
        if isinstance(term, Fun):
            new_body, changed = self._rewrite_once(step, term.body, db, stats, topdown, trace)
            if changed:
                term.body = new_body
                return term, True
            return term, False
        if isinstance(term, (ListTerm, TupleTerm)):
            for i, item in enumerate(term.items):
                new_item, changed = self._rewrite_once(step, item, db, stats, topdown, trace)
                if changed:
                    term.items = term.items[:i] + (new_item,) + term.items[i + 1 :]
                    return term, True
            return term, False
        if isinstance(term, Call):
            new_fn, changed = self._rewrite_once(step, term.fn, db, stats, topdown, trace)
            if changed:
                term.fn = new_fn
                return term, True
            for i, arg in enumerate(term.args):
                new_arg, changed = self._rewrite_once(step, arg, db, stats, topdown, trace)
                if changed:
                    term.args = term.args[:i] + (new_arg,) + term.args[i + 1 :]
                    return term, True
            return term, False
        return term, False

    def _try_rules(
        self, step: OptimizerStep, term: Term, db, stats, trace: Optional[RuleTrace]
    ) -> Optional[Term]:
        if not step.cost_based:
            for rule in step.rules:
                stats.tried += 1
                outcome = None if trace is None else [None]
                for candidate in rule.apply_at(term, db, outcome):
                    try:
                        checked = db.typechecker.check(candidate)
                    except TypeCheckError:
                        if outcome is not None:
                            outcome[0] = "typecheck_failed"
                        continue
                    fault_point("optimizer.rule")
                    stats.fired.append(rule.name)
                    if trace is not None:
                        trace.record_fired(
                            rule.name, step.name,
                            format_term(term), format_term(checked),
                        )
                    return checked
                if trace is not None:
                    trace.record_attempt(rule.name, outcome[0] or "no_match")
            return None
        # Cost-based choice: generate every applicable rewrite and keep the
        # cheapest plan under the structural cost model.
        from repro.optimizer.cost import estimate

        best = None
        best_cost = None
        best_rule = None
        before = format_term(term) if trace is not None else ""
        applicable: list[str] = []
        for rule in step.rules:
            stats.tried += 1
            outcome = None if trace is None else [None]
            applied = False
            for candidate in rule.apply_at(term, db, outcome):
                try:
                    checked = db.typechecker.check(candidate)
                except TypeCheckError:
                    if outcome is not None:
                        outcome[0] = "typecheck_failed"
                    continue
                applied = True
                cost = estimate(checked, db)
                if best_cost is None or cost < best_cost:
                    best, best_cost, best_rule = checked, cost, rule
            if trace is not None:
                if applied:
                    applicable.append(rule.name)
                else:
                    trace.record_attempt(rule.name, outcome[0] or "no_match")
        if trace is not None and best_rule is not None:
            for name in applicable:
                if name != best_rule.name:
                    trace.record_attempt(name, "cost_rejected")
        if best is not None:
            fault_point("optimizer.rule")
            stats.fired.append(best_rule.name)
            if trace is not None:
                trace.record_fired(
                    best_rule.name, step.name, before, format_term(best)
                )
            return best
        return None
