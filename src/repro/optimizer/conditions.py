"""Rule conditions: catalog lookups and type tests (paper Sections 5/6).

Conditions extend a :class:`~repro.optimizer.termmatch.MatchState` and may
have several solutions (several representations for one relation), so each
condition yields all its solutions and the engine backtracks across the
condition list — "tests whether tuples are present can be written like
PROLOG predicates within an optimization rule".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.core.patterns import TypePattern, match_type
from repro.core.terms import ObjRef, Var
from repro.core.types import Sym
from repro.optimizer.termmatch import MatchState


class Condition:
    """Interface: yield extended states for each solution."""

    def solutions(self, state: MatchState, db) -> Iterator[MatchState]:  # pragma: no cover
        raise NotImplementedError


@dataclass(slots=True)
class CatalogCondition(Condition):
    """``catalog(v1, ..., vn)`` — rows of a catalog object.

    Already-bound variables constrain the lookup; unbound ones are bound to
    the object names found.  A variable bound to an object name also gets a
    ``Var`` term binding, so it can appear in the rule's right-hand side.
    """

    catalog: str
    variables: tuple[str, ...]

    def solutions(self, state: MatchState, db) -> Iterator[MatchState]:
        obj = db.objects.get(self.catalog)
        if obj is None or obj.value is None:
            return
        catalog = obj.value
        pattern: list[Optional[Sym]] = []
        for var in self.variables:
            name = _bound_name(state, var)
            if name is None and var in state.vbinds:
                # Bound to a complex subterm (e.g. a nested select), not an
                # object name: the catalog cannot vouch for it — the
                # condition fails rather than degrade into a wildcard, which
                # would silently drop the subterm (soundness!).
                return
            pattern.append(Sym(name) if name is not None else None)
        try:
            rows = list(catalog.lookup(tuple(pattern)))
        except ValueError:
            return
        for row in rows:
            new_state = state.copy()
            ok = True
            for var, component in zip(self.variables, row):
                if _bound_name(state, var) is None:
                    if not isinstance(component, Sym):
                        ok = False
                        break
                    term = Var(component.name)
                    term.type = db.type_of(component.name)
                    new_state.vbinds[var] = term
            if ok:
                yield new_state


@dataclass(slots=True)
class TypeCondition(Condition):
    """``v : pattern`` — the type of the object bound to ``v`` matches the
    pattern, possibly binding further type variables (``lsd2:
    lsdtree(tuple2, f)`` binds the key function ``f``)."""

    variable: str
    pattern: TypePattern
    subtype_ok: bool = False
    """Also accept a supertype match (``rep1 : relrep(tuple1)``)."""

    def solutions(self, state: MatchState, db) -> Iterator[MatchState]:
        term = state.vbinds.get(self.variable)
        if term is None or term.type is None:
            return
        candidates = [term.type]
        if self.subtype_ok:
            candidates.extend(
                sup for sup in db.sos.subtypes.supertypes(term.type)
                if sup != term.type
            )
        for candidate in candidates:
            matched = match_type(self.pattern, candidate, state.tbinds)
            if matched is not None:
                new_state = state.copy()
                new_state.tbinds = matched
                yield new_state
                return


@dataclass(slots=True)
class StatsCondition(Condition):
    """``stats(v) |= p`` — consult the statistics catalog entry of the
    object bound to ``v`` (paper Section 6: catalog facts guarding rules,
    here extended to gathered statistics).

    The predicate receives the object's
    :class:`~repro.stats.model.RelationStats` entry — or ``None`` when the
    object was never analyzed, so predicates decide whether missing
    statistics are acceptable.
    """

    variable: str
    predicate: Callable
    description: str = ""

    def solutions(self, state: MatchState, db) -> Iterator[MatchState]:
        name = _bound_name(state, self.variable)
        if name is None:
            return
        stats = getattr(db, "stats", None)
        entry = stats.get(name) if stats is not None else None
        if self.predicate(entry):
            yield state


@dataclass(slots=True)
class FunCondition(Condition):
    """An arbitrary predicate / generator over the match state.

    ``fn(state, db)`` may return a boolean (filter) or an iterator of new
    states (generator).  Used for conditions the declarative forms do not
    cover, e.g. "the modified attribute is (not) the B-tree key".
    """

    fn: Callable
    description: str = ""

    def solutions(self, state: MatchState, db) -> Iterator[MatchState]:
        result = self.fn(state, db)
        if result is True:
            yield state
        elif result is False or result is None:
            return
        else:
            yield from result


def solve_conditions(
    conditions: Sequence[Condition], state: MatchState, db
) -> Iterator[MatchState]:
    """Backtracking evaluation of a condition list."""
    if not conditions:
        yield state
        return
    first, rest = conditions[0], conditions[1:]
    for new_state in first.solutions(state, db):
        yield from solve_conditions(rest, new_state, db)


def _bound_name(state: MatchState, var: str) -> Optional[str]:
    term = state.vbinds.get(var)
    if isinstance(term, (Var, ObjRef)):
        return term.name
    return None
