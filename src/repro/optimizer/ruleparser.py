"""Textual optimization rules (paper Section 5).

A rule is written as::

    forall rel1: rel(tuple1) in REL. forall rel2: rel(tuple2) in REL.
    forall point: (tuple1 -> point). forall region: (tuple2 -> pgon).
    rel1 rel2 join[fun (t1: tuple1, t2: tuple2) (t1 point) inside (t2 region)]
    => rep1 feed
       fun (t1: tuple1) lsd2 (t1 point) point_search
           filter[fun (t2: tuple2) (t1 point) inside (t2 region)]
       search_join
    if rep(rel1, rep1) and rep1 : relrep(tuple1)
       and rep(rel2, lsd2) and lsd2 : lsdtree(tuple2, f)

— the ASCII form of the paper's rule, clause for clause.  Quantifiers over a
kind declare term variables (with an optional binding pattern); quantifiers
with a functionality ``(t -> r)`` declare operator variables.  The left- and
right-hand sides are ordinary concrete-syntax expressions parsed by the same
model-independent parser as queries; rule type variables simply enter the
parser as type aliases bound to :class:`~repro.optimizer.termmatch.TypeVar`.
Conditions are catalog lookups ``cat(v1, ..., vn)`` and type tests
``v : pattern`` (a test against ``relrep(...)`` allows subtyping).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.patterns import PApp, PVar, TypePattern, pattern_variables
from repro.core.sos import SecondOrderSignature
from repro.core.types import Type, TypeApp
from repro.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser
from repro.optimizer.conditions import (
    CatalogCondition,
    Condition,
    TypeCondition,
)
from repro.optimizer.rules import RewriteRule
from repro.optimizer.termmatch import RuleVar, TypeVar


def parse_rule(text: str, sos: SecondOrderSignature, name: str = "rule") -> RewriteRule:
    """Parse one textual rule against a signature."""
    quantifier_lines, lhs_text, rhs_text, cond_text = _split(text)
    variables: dict[str, RuleVar] = {}
    type_vars: set[str] = set()
    for line in quantifier_lines:
        for rv, tvs in _parse_quantifiers(line, sos):
            variables[rv.name] = rv
            type_vars |= tvs
    conditions, condition_vars = _parse_conditions(cond_text, variables, type_vars)
    term_vars = {
        v.name for v in variables.values() if not v.is_operator_var
    } | condition_vars
    aliases = {tv: TypeVar(tv) for tv in type_vars}
    parser = Parser(sos, aliases=aliases, is_object=term_vars.__contains__)
    lhs = parser.parse_expression(lhs_text.strip())
    rhs = parser.parse_expression(rhs_text.strip())
    _check_rhs_bound(lhs, rhs, variables, condition_vars, conditions)
    return RewriteRule(
        name=name,
        variables=variables,
        lhs=lhs,
        rhs=rhs,
        conditions=tuple(conditions),
        doc=text.strip(),
    )


def _check_rhs_bound(lhs, rhs, variables, condition_vars, conditions) -> None:
    """Reject a right-hand side that uses a declared rule variable nothing
    binds — previously such rules parsed fine and failed only when (and if)
    they fired, as a ``KeyError``/``OptimizationError`` deep inside
    instantiation."""
    from repro.core.terms import Apply, Call, Fun, ListTerm, TupleTerm, Var

    def uses(term, params: frozenset) -> set[str]:
        if isinstance(term, Var):
            if term.name in variables and term.name not in params:
                return {term.name}
            return set()
        if isinstance(term, Apply):
            out = {term.op} if term.op in variables else set()
            for a in term.args:
                out |= uses(a, params)
            return out
        if isinstance(term, Fun):
            return uses(term.body, params | {n for n, _ in term.params})
        if isinstance(term, (ListTerm, TupleTerm)):
            out = set()
            for i in term.items:
                out |= uses(i, params)
            return out
        if isinstance(term, Call):
            out = uses(term.fn, params)
            for a in term.args:
                out |= uses(a, params)
            return out
        return set()

    bound = uses(lhs, frozenset()) | set(condition_vars)
    for cond in conditions:
        if isinstance(cond, TypeCondition):
            bound |= pattern_variables(cond.pattern)
        elif isinstance(cond, CatalogCondition):
            bound |= set(cond.variables)
    unbound = sorted(uses(rhs, frozenset()) - bound)
    if unbound:
        raise ParseError(
            "right-hand side uses variable(s) "
            + ", ".join(unbound)
            + " that neither the left-hand side nor the conditions bind"
        )


def _split(text: str) -> tuple[list[str], str, str, str]:
    stripped = "\n".join(
        line for line in text.splitlines() if line.strip() and not line.strip().startswith("--")
    )
    quantifier_lines = []
    rest_lines = []
    in_quantifiers = True
    for line in stripped.splitlines():
        if in_quantifiers and line.lstrip().startswith("forall"):
            quantifier_lines.append(line.strip())
        else:
            in_quantifiers = False
            rest_lines.append(line)
    rest = "\n".join(rest_lines)
    if "=>" not in rest:
        raise ParseError("rule needs '=>' between left and right sides")
    lhs, _, after = rest.partition("=>")
    match = re.search(r"(?:^|\s)if(?:\s)", after)
    if match:
        rhs = after[: match.start()]
        conditions = after[match.end() :]
    else:
        rhs = after
        conditions = ""
    return quantifier_lines, lhs, rhs, conditions


def _parse_quantifiers(line: str, sos) -> list[tuple[RuleVar, set[str]]]:
    """All ``forall`` clauses on one line."""
    out: list[tuple[RuleVar, set[str]]] = []
    toks = _cursor(line)
    while toks.peek().kind != "EOF":
        word = toks.next()
        if word.text != "forall":
            raise ParseError(f"expected forall, got {word}")
        var = toks.next().text
        kind = None
        pattern: Optional[TypePattern] = None
        fun_args = None
        fun_result = None
        tvs: set[str] = set()
        if toks.peek().text == ":":
            toks.next()
            if toks.peek().text == "(":
                fun_args, fun_result, tvs = _parse_functionality(toks, sos)
            else:
                pattern = _parse_type_pattern(toks)
                tvs = pattern_variables(pattern) - {var}
        if toks.peek().text == "in":
            toks.next()
            kind = sos.type_system.kind(toks.next().text)
        if toks.peek().text == ".":
            toks.next()
        out.append(
            (
                RuleVar(
                    var,
                    kind=kind,
                    type_pattern=pattern,
                    fun_args=fun_args,
                    fun_result=fun_result,
                ),
                tvs,
            )
        )
    return out


def _parse_functionality(toks, sos) -> tuple[tuple[Type, ...], Type, set[str]]:
    """``(t1 x ... -> t)`` with rule type variables."""
    toks.expect("(")
    tvs: set[str] = set()
    args: list[Type] = []
    while toks.peek().text != "->":
        args.append(_rule_type(toks, sos, tvs))
        if toks.peek().text == "x" or (
            toks.peek().kind == "NAME" and toks.peek().text == "x"
        ):
            toks.next()
    toks.expect("->")
    result = _rule_type(toks, sos, tvs)
    toks.expect(")")
    return tuple(args), result, tvs


def _rule_type(toks, sos, tvs: set[str]) -> Type:
    name = toks.next().text
    if sos.type_system.has_constructor(name):
        return TypeApp(name)
    tvs.add(name)
    return TypeVar(name)


def _parse_type_pattern(toks) -> TypePattern:
    name = toks.next().text
    if toks.peek().text != "(":
        return PVar(name)
    toks.next()
    args = [_parse_type_pattern(toks)]
    while toks.peek().text == ",":
        toks.next()
        args.append(_parse_type_pattern(toks))
    toks.expect(")")
    return PApp(name, tuple(args))


def _parse_conditions(
    text: str, variables: dict[str, RuleVar], type_vars: set[str]
) -> tuple[list[Condition], set[str]]:
    """Conditions separated by 'and'; returns them plus the names of rule
    variables first bound by a catalog condition (usable on the RHS)."""
    conditions: list[Condition] = []
    new_vars: set[str] = set()
    stripped = text.strip().rstrip(".")
    if not stripped:
        return conditions, new_vars
    for clause in _split_on_and(stripped):
        toks = _cursor(clause)
        first = toks.next().text
        if toks.peek().text == "(":
            toks.next()
            args = [toks.next().text]
            while toks.peek().text == ",":
                toks.next()
                args.append(toks.next().text)
            toks.expect(")")
            for arg in args:
                if arg not in variables:
                    new_vars.add(arg)
            conditions.append(CatalogCondition(first, tuple(args)))
        elif toks.peek().text == ":":
            toks.next()
            pattern = _parse_type_pattern(toks)
            subtype_ok = isinstance(pattern, PApp) and pattern.constructor == "relrep"
            type_vars |= pattern_variables(pattern)
            conditions.append(TypeCondition(first, pattern, subtype_ok=subtype_ok))
        else:
            raise ParseError(f"cannot parse condition: {clause}")
    return conditions, new_vars


def _split_on_and(text: str) -> list[str]:
    parts = re.split(r"\band\b", text)
    return [p.strip() for p in parts if p.strip()]


class _cursor:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    def peek(self, ahead: int = 0):
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, text: str):
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok}", tok.line, tok.column)
        return tok
