"""Term pattern matching for optimization rules.

A rule's left-hand side is an ordinary term in which some names are *rule
variables*.  Matching walks the (typechecked) subject term:

* ``Var(v)`` with ``v`` a rule variable binds the whole subterm, after
  checking the variable's declared type pattern and kind against the
  subterm's type;
* ``Apply(op, ...)`` with ``op`` a rule variable is an *operator variable*:
  it matches any operator or attribute application of the right arity whose
  result type matches the declared functionality — this is how the paper's
  rule abstracts over the ``point`` and ``region`` attributes;
* ``Fun`` patterns match lambdas of the same arity up to alpha-renaming;
  their parameter types may be :class:`TypeVar` references to rule type
  variables (``t1: tuple1``).

All bindings live in one namespace (:class:`MatchState`): type variables
bind type arguments, term variables bind subterms, operator variables bind
their name as a :class:`~repro.core.types.Sym` — so a B-tree type pattern
``btree(tuple1, attr, dtype)`` and an operator variable ``attr`` agree
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.kinds import Kind
from repro.core.patterns import TypePattern, match_type
from repro.core.sorts import UnionSort
from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    ObjRef,
    OpRef,
    Term,
    TupleTerm,
    Var,
    clone_term,
    same_term,
)
from repro.core.types import Sym, Type, TypeApp, TypeArg
from repro.errors import OptimizationError


@dataclass(frozen=True, slots=True)
class TypeVar(Type):
    """A reference to a rule type variable inside a rule term's types,
    e.g. the parameter type ``tuple1`` in ``fun (t1: tuple1, ...)``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, slots=True)
class RuleVar:
    """Declaration of one rule variable.

    ``kind`` / ``type_pattern`` constrain term variables (``rel1: rel(tuple1)
    in REL``); ``fun_args`` / ``fun_result`` declare an operator variable's
    functionality (``point: (tuple1 -> point)``).
    """

    name: str
    kind: Optional[Kind | UnionSort] = None
    type_pattern: Optional[TypePattern] = None
    fun_args: Optional[tuple[Type, ...]] = None
    fun_result: Optional[Type] = None

    @property
    def is_operator_var(self) -> bool:
        return self.fun_result is not None


@dataclass(slots=True)
class MatchState:
    """Bindings accumulated during matching and condition evaluation."""

    tbinds: dict[str, TypeArg] = field(default_factory=dict)
    vbinds: dict[str, Term] = field(default_factory=dict)

    def copy(self) -> "MatchState":
        return MatchState(dict(self.tbinds), dict(self.vbinds))

    def op_name(self, var: str) -> Optional[str]:
        bound = self.tbinds.get(var)
        return bound.name if isinstance(bound, Sym) else None


def match_pattern(
    pattern: Term,
    subject: Term,
    rule_vars: Mapping[str, RuleVar],
    state: MatchState,
    sos,
) -> Optional[MatchState]:
    """Match a rule pattern against a typechecked subject term.

    Returns an extended copy of ``state`` on success, ``None`` on failure.
    """
    trial = state.copy()
    if _match(pattern, subject, rule_vars, trial, {}, sos):
        return trial
    return None


def _match(
    pattern: Term,
    subject: Term,
    rule_vars: Mapping[str, RuleVar],
    state: MatchState,
    params: dict[str, str],
    sos,
) -> bool:
    if isinstance(pattern, Var):
        name = pattern.name
        if name in params:
            return isinstance(subject, Var) and subject.name == params[name]
        if name in rule_vars:
            return _bind_term_var(rule_vars[name], subject, state, sos)
        # A concrete name in the pattern: matches the same object/variable.
        return isinstance(subject, (Var, ObjRef)) and subject.name == name
    if isinstance(pattern, ObjRef):
        return isinstance(subject, (Var, ObjRef)) and subject.name == pattern.name
    if isinstance(pattern, Literal):
        return (
            isinstance(subject, Literal)
            and subject.value == pattern.value
            and type(subject.value) is type(pattern.value)
        )
    if isinstance(pattern, Apply):
        if not isinstance(subject, Apply):
            return False
        if len(pattern.args) != len(subject.args):
            return False
        if pattern.op in rule_vars:
            if not _bind_operator_var(
                rule_vars[pattern.op], subject, state, sos
            ):
                return False
        elif pattern.op != subject.op:
            return False
        return all(
            _match(p, s, rule_vars, state, params, sos)
            for p, s in zip(pattern.args, subject.args)
        )
    if isinstance(pattern, Fun):
        if not isinstance(subject, Fun):
            return False
        if len(pattern.params) != len(subject.params):
            return False
        inner = dict(params)
        for (pname, ptype), (sname, stype) in zip(pattern.params, subject.params):
            if ptype is not None and stype is not None:
                if not _match_type_with_vars(ptype, stype, state):
                    return False
            inner[pname] = sname
        return _match(pattern.body, subject.body, rule_vars, state, inner, sos)
    if isinstance(pattern, (ListTerm, TupleTerm)):
        if type(subject) is not type(pattern):
            return False
        if len(pattern.items) != len(subject.items):
            return False
        return all(
            _match(p, s, rule_vars, state, params, sos)
            for p, s in zip(pattern.items, subject.items)
        )
    if isinstance(pattern, Call):
        if not isinstance(subject, Call) or len(pattern.args) != len(subject.args):
            return False
        if not _match(pattern.fn, subject.fn, rule_vars, state, params, sos):
            return False
        return all(
            _match(p, s, rule_vars, state, params, sos)
            for p, s in zip(pattern.args, subject.args)
        )
    if isinstance(pattern, OpRef):
        return isinstance(subject, OpRef) and subject.name == pattern.name
    raise OptimizationError(f"unsupported pattern node: {pattern!r}")


def _bind_term_var(rv: RuleVar, subject: Term, state: MatchState, sos) -> bool:
    bound = state.vbinds.get(rv.name)
    if bound is not None:
        return same_term(bound, subject)
    subject_type = subject.type
    if rv.type_pattern is not None:
        if subject_type is None:
            return False
        matched = match_type(rv.type_pattern, subject_type, state.tbinds)
        if matched is None:
            return False
        state.tbinds.clear()
        state.tbinds.update(matched)
        state.tbinds[rv.name + ".type"] = subject_type
    if rv.kind is not None:
        if subject_type is None:
            return False
        if not sos.type_system.has_kind(subject_type, rv.kind):
            return False
    state.vbinds[rv.name] = subject
    return True


def _bind_operator_var(rv: RuleVar, subject: Apply, state: MatchState, sos) -> bool:
    """Bind an operator variable to the subject's operator name, checking
    the declared functionality against the subject's types."""
    existing = state.op_name(rv.name)
    if existing is not None:
        if existing != subject.op:
            return False
    if rv.fun_result is not None:
        if subject.type is None:
            return False
        if not _match_type_with_vars(rv.fun_result, subject.type, state):
            return False
    if rv.fun_args is not None:
        if len(rv.fun_args) != len(subject.args):
            return False
        for declared, arg in zip(rv.fun_args, subject.args):
            if arg.type is None or not _match_type_with_vars(
                declared, arg.type, state
            ):
                return False
    state.tbinds[rv.name] = Sym(subject.op)
    return True


def _match_type_with_vars(declared: Type, actual: Type, state: MatchState) -> bool:
    """Match a rule type (possibly containing :class:`TypeVar`) against a
    concrete type, extending the type bindings."""
    if isinstance(declared, TypeVar):
        bound = state.tbinds.get(declared.name)
        if bound is None:
            state.tbinds[declared.name] = actual
            return True
        return bound == actual
    if isinstance(declared, TypeApp) and isinstance(actual, TypeApp):
        if declared.constructor != actual.constructor:
            return False
        if len(declared.args) != len(actual.args):
            return False
        for d, a in zip(declared.args, actual.args):
            if isinstance(d, Type) and isinstance(a, Type):
                if not _match_type_with_vars(d, a, state):
                    return False
            elif d != a:
                return False
        return True
    return declared == actual


# ---------------------------------------------------------------------------
# Instantiation (building the right-hand side)
# ---------------------------------------------------------------------------


def instantiate(template: Term, state: MatchState) -> Term:
    """Build the right-hand-side instance of a rule under full bindings.

    Term variables are replaced by (clones of) their bound subterms,
    operator variables by their bound names, :class:`TypeVar` parameter
    types by their bound types.  The result is unchecked — the engine
    re-typechecks it.
    """
    if isinstance(template, Var):
        bound = state.vbinds.get(template.name)
        if bound is not None:
            return clone_term(bound)
        sym = state.tbinds.get(template.name)
        if isinstance(sym, Sym):
            return Var(sym.name)
        return Var(template.name)
    if isinstance(template, Literal):
        return Literal(template.value)
    if isinstance(template, ObjRef):
        return ObjRef(template.name)
    if isinstance(template, Apply):
        op = template.op
        bound_op = state.op_name(op)
        if bound_op is not None:
            op = bound_op
        return Apply(op, tuple(instantiate(a, state) for a in template.args))
    if isinstance(template, Fun):
        params = []
        for name, ptype in template.params:
            params.append((name, _resolve_type(ptype, state)))
        return Fun(tuple(params), instantiate(template.body, state))
    if isinstance(template, ListTerm):
        return ListTerm(tuple(instantiate(i, state) for i in template.items))
    if isinstance(template, TupleTerm):
        return TupleTerm(tuple(instantiate(i, state) for i in template.items))
    if isinstance(template, Call):
        return Call(
            instantiate(template.fn, state),
            tuple(instantiate(a, state) for a in template.args),
        )
    if isinstance(template, OpRef):
        return OpRef(template.name)
    raise OptimizationError(f"unsupported template node: {template!r}")


def _resolve_type(t: Optional[Type], state: MatchState) -> Optional[Type]:
    if t is None:
        return None
    if isinstance(t, TypeVar):
        bound = state.tbinds.get(t.name)
        if not isinstance(bound, Type):
            raise OptimizationError(
                f"rule type variable {t.name} is unbound in the right-hand side"
            )
        return bound
    if isinstance(t, TypeApp) and any(
        isinstance(a, Type) and _contains_typevar(a) for a in t.args
    ):
        args = tuple(
            _resolve_type(a, state) if isinstance(a, Type) else a for a in t.args
        )
        return TypeApp(t.constructor, args)
    return t


def _contains_typevar(t: Type) -> bool:
    if isinstance(t, TypeVar):
        return True
    if isinstance(t, TypeApp):
        return any(isinstance(a, Type) and _contains_typevar(a) for a in t.args)
    return False
