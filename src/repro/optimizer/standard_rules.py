"""The standard model-to-representation rule set (paper Sections 5 and 6).

Rules translate model-level queries and updates over relations into
representation-level plans over the objects registered in the ``rep``
catalog (``rep(rel, repobj)``).  The collection contains:

* the paper's Section 5 rule verbatim: a join with a geometric ``inside``
  condition becomes a repeated LSD-tree ``point_search`` under a
  ``search_join``;
* selection rules: a comparison on the B-tree key attribute becomes a
  ``range`` / ``exact`` search (with a refining ``filter`` for the strict
  comparisons); any other selection becomes ``feed``-``filter``;
* join fallback: ``feed`` the outer side, ``feed``-``filter`` the inner per
  outer tuple through ``search_join``;
* the update translations of Section 6: ``insert`` goes to the structure;
  a key-range ``delete`` finds its victims by a ``range`` search; ``modify``
  becomes in-situ ``modify`` with a ``replace`` stream function, or
  ``re_insert`` when the modified attribute *is* the B-tree key.

Index rules precede scan fallbacks in each step, so the first applicable
(most specific) rule wins — the per-step control strategy of [BeG92].
"""

from __future__ import annotations

from repro.core.patterns import PApp, PVar
from repro.core.terms import Apply, Call, Fun, Literal, Var
from repro.core.types import Sym, TypeApp
from repro.optimizer.conditions import (
    CatalogCondition,
    FunCondition,
    StatsCondition,
    TypeCondition,
)
from repro.optimizer.engine import Optimizer, OptimizerStep
from repro.optimizer.rules import RewriteRule, rule_vars
from repro.optimizer.termmatch import RuleVar, TypeVar

REP_CATALOG = "rep"

T1 = TypeVar("tuple1")
T2 = TypeVar("tuple2")

REL1 = RuleVar("rel1", type_pattern=PApp("rel", (PVar("tuple1"),)))
REL2 = RuleVar("rel2", type_pattern=PApp("rel", (PVar("tuple2"),)))

RELREP1 = TypeCondition("rep1", PApp("relrep", (PVar("tuple1"),)), subtype_ok=True)
RELREP2 = TypeCondition("rep2", PApp("relrep", (PVar("tuple2"),)), subtype_ok=True)
BTREE1 = TypeCondition(
    "bt1", PApp("btree", (PVar("tuple1"), PVar("attr"), PVar("dtype")))
)
LSD2 = TypeCondition("lsd2", PApp("lsdtree", (PVar("tuple2"), PVar("f"))))

REP_REL1 = CatalogCondition(REP_CATALOG, ("rel1", "rep1"))
REP_REL2 = CatalogCondition(REP_CATALOG, ("rel2", "rep2"))
REP_BT1 = CatalogCondition(REP_CATALOG, ("rel1", "bt1"))
REP_LSD2 = CatalogCondition(REP_CATALOG, ("rel2", "lsd2"))


def _attr_cmp_pred(op: str) -> Fun:
    """``fun (t1: tuple1) (t1 attr) op c1`` — the indexed-selection shape."""
    return Fun(
        (("t1", T1),),
        Apply(op, (Apply("attr", (Var("t1"),)), Var("c1"))),
    )


def _select_vars() -> dict:
    return rule_vars(
        REL1,
        RuleVar("attr", fun_args=(T1,), fun_result=TypeVar("dtype")),
        RuleVar("c1"),
    )


def spatial_join_rule() -> RewriteRule:
    """The paper's Section 5 rule, structure for structure."""
    inside = Apply(
        "inside",
        (Apply("point", (Var("t1"),)), Apply("region", (Var("t2"),))),
    )
    lhs = Apply(
        "join",
        (Var("rel1"), Var("rel2"), Fun((("t1", T1), ("t2", T2)), inside)),
    )
    rhs = Apply(
        "search_join",
        (
            Apply("feed", (Var("rep1"),)),
            Fun(
                (("t1", T1),),
                Apply(
                    "filter",
                    (
                        Apply(
                            "point_search",
                            (Var("lsd2"), Apply("point", (Var("t1"),))),
                        ),
                        Fun(
                            (("t2", T2),),
                            Apply(
                                "inside",
                                (
                                    Apply("point", (Var("t1"),)),
                                    Apply("region", (Var("t2"),)),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    return RewriteRule(
        name="join_inside_lsdtree",
        variables=rule_vars(
            REL1,
            REL2,
            RuleVar("point", fun_args=(T1,), fun_result=TypeApp("point")),
            RuleVar("region", fun_args=(T2,), fun_result=TypeApp("pgon")),
        ),
        lhs=lhs,
        rhs=rhs,
        conditions=(REP_REL1, RELREP1, REP_LSD2, LSD2),
        doc="join by geometric inside -> repeated LSD-tree point search",
    )


def select_between_rule() -> RewriteRule:
    """``select[attr >= c1 and attr <= c2]`` becomes one ``range[c1, c2]`` —
    the conjunctive-range refinement of the single-comparison rules."""
    pred = Fun(
        (("t1", T1),),
        Apply(
            "and",
            (
                Apply(">=", (Apply("attr", (Var("t1"),)), Var("c1"))),
                Apply("<=", (Apply("attr", (Var("t1"),)), Var("c2"))),
            ),
        ),
    )
    variables = rule_vars(
        REL1,
        RuleVar("attr", fun_args=(T1,), fun_result=TypeVar("dtype")),
        RuleVar("c1"),
        RuleVar("c2"),
    )
    return RewriteRule(
        name="select_between_btree_range",
        variables=variables,
        lhs=Apply("select", (Var("rel1"), pred)),
        rhs=Apply("range", (Var("bt1"), Var("c1"), Var("c2"))),
        conditions=(REP_BT1, BTREE1),
        doc="conjunctive key range -> single B-tree range search",
    )


def select_index_rules() -> list[RewriteRule]:
    """Selections on the B-tree key attribute become index searches."""
    rules = []
    shapes = {
        "=": Apply("exact", (Var("bt1"), Var("c1"))),
        "<=": Apply("range", (Var("bt1"), Var("bottom"), Var("c1"))),
        ">=": Apply("range", (Var("bt1"), Var("c1"), Var("top"))),
        "<": Apply(
            "filter",
            (
                Apply("range", (Var("bt1"), Var("bottom"), Var("c1"))),
                _attr_cmp_pred("<"),
            ),
        ),
        ">": Apply(
            "filter",
            (
                Apply("range", (Var("bt1"), Var("c1"), Var("top"))),
                _attr_cmp_pred(">"),
            ),
        ),
    }
    for op, rhs in shapes.items():
        rules.append(
            RewriteRule(
                name=f"select_{_op_slug(op)}_btree_range",
                variables=_select_vars(),
                lhs=Apply("select", (Var("rel1"), _attr_cmp_pred(op))),
                rhs=rhs,
                conditions=(REP_BT1, BTREE1),
                doc=f"selection by key {op} constant -> B-tree search",
            )
        )
    return rules


def _op_slug(op: str) -> str:
    return {"=": "eq", "<=": "le", ">=": "ge", "<": "lt", ">": "gt"}[op]


def select_scan_rule() -> RewriteRule:
    """Fallback: any selection becomes a feed-filter scan."""
    return RewriteRule(
        name="select_scan",
        variables=rule_vars(REL1, RuleVar("p1")),
        lhs=Apply("select", (Var("rel1"), Var("p1"))),
        rhs=Apply("filter", (Apply("feed", (Var("rep1"),)), Var("p1"))),
        conditions=(REP_REL1, RELREP1),
        doc="selection -> scan of any relation representation",
    )


def _equi_join_rule(method: str) -> RewriteRule:
    pred = Fun(
        (("t1", T1), ("t2", T2)),
        Apply("=", (Apply("a1", (Var("t1"),)), Apply("a2", (Var("t2"),)))),
    )
    return RewriteRule(
        name=f"equi_join_{method.split('_')[0]}",
        variables=rule_vars(
            REL1,
            REL2,
            RuleVar("a1", fun_args=(T1,), fun_result=TypeVar("dtype")),
            RuleVar("a2", fun_args=(T2,), fun_result=TypeVar("dtype")),
        ),
        lhs=Apply("join", (Var("rel1"), Var("rel2"), pred)),
        rhs=Apply(
            method,
            (
                Apply("feed", (Var("rep1"),)),
                Apply("feed", (Var("rep2"),)),
                Var("a1"),
                Var("a2"),
            ),
        ),
        conditions=(REP_REL1, RELREP1, REP_REL2, RELREP2),
        doc=f"equality join -> {method}",
    )


def equi_join_rule() -> RewriteRule:
    """``join[a1 = a2]`` becomes a sort-merge join over both feeds."""
    return _equi_join_rule("merge_join")


def equi_join_hash_rule() -> RewriteRule:
    """``join[a1 = a2]`` becomes a hash join — the alternative the
    cost-based strategy chooses between."""
    return _equi_join_rule("hash_join")


def _join_attr_is_inner_key(state, db) -> bool:
    # Attribute rule variables (fun_args/fun_result) bind the operator
    # symbol into tbinds.
    a2 = state.tbinds.get("a2")
    key_attr = state.tbinds.get("attr2")
    if isinstance(a2, Sym):
        return a2 == key_attr
    return False


def equi_join_index_rule() -> RewriteRule:
    """``join[a1 = a2]`` becomes an index nested-loop join when the inner
    relation has a B-tree keyed on the join attribute: feed the outer side
    and probe the B-tree with ``exact`` per outer tuple.

    Listed after the merge/hash alternatives, so first-match never picks it;
    the cost-based strategy does — and only gets it right with statistics:
    under the textbook 1 %-per-probe constant the repeated descent looks
    more expensive than a hash join, while an analyzed near-unique key makes
    each probe ~1 row and the index plan the cheapest.  Stale statistics
    (row count drifted past the threshold since ``analyze``) withdraw the
    candidate rather than argue from outdated distinct counts.
    """
    pred = Fun(
        (("t1", T1), ("t2", T2)),
        Apply("=", (Apply("a1", (Var("t1"),)), Apply("a2", (Var("t2"),)))),
    )
    rhs = Apply(
        "search_join",
        (
            Apply("feed", (Var("rep1"),)),
            Fun(
                (("t1", T1),),
                Apply("exact", (Var("bt2"), Apply("a1", (Var("t1"),)))),
            ),
        ),
    )
    return RewriteRule(
        name="equi_join_index",
        variables=rule_vars(
            REL1,
            REL2,
            RuleVar("a1", fun_args=(T1,), fun_result=TypeVar("dtype")),
            RuleVar("a2", fun_args=(T2,), fun_result=TypeVar("dtype")),
        ),
        lhs=Apply("join", (Var("rel1"), Var("rel2"), pred)),
        rhs=rhs,
        conditions=(
            REP_REL1,
            RELREP1,
            CatalogCondition(REP_CATALOG, ("rel2", "bt2")),
            TypeCondition(
                "bt2",
                PApp("btree", (PVar("tuple2"), PVar("attr2"), PVar("dtype"))),
            ),
            FunCondition(_join_attr_is_inner_key, "a2 is the inner B-tree key"),
            StatsCondition(
                "bt2",
                lambda entry: entry is None or not entry.stale,
                "inner index statistics are missing or fresh",
            ),
        ),
        doc="equality join -> repeated exact search on the inner B-tree",
    )


def join_scan_rule() -> RewriteRule:
    """Fallback: any join becomes a repeated inner scan under search_join."""
    rhs = Apply(
        "search_join",
        (
            Apply("feed", (Var("rep1"),)),
            Fun(
                (("t1", T1),),
                Apply(
                    "filter",
                    (
                        Apply("feed", (Var("rep2"),)),
                        Fun(
                            (("t2", T2),),
                            Call(Var("p1"), (Var("t1"), Var("t2"))),
                        ),
                    ),
                ),
            ),
        ),
    )
    return RewriteRule(
        name="join_scan",
        variables=rule_vars(REL1, REL2, RuleVar("p1")),
        lhs=Apply("join", (Var("rel1"), Var("rel2"), Var("p1"))),
        rhs=rhs,
        conditions=(REP_REL1, RELREP1, REP_REL2, RELREP2),
        doc="join -> search_join with repeated inner scan",
    )


# ---------------------------------------------------------------------------
# Update translation (Section 6)
# ---------------------------------------------------------------------------


def insert_rule() -> RewriteRule:
    return RewriteRule(
        name="insert_to_rep",
        variables=rule_vars(REL1, RuleVar("x1")),
        lhs=Apply("insert", (Var("rel1"), Var("x1"))),
        rhs=Apply("insert", (Var("rep1"), Var("x1"))),
        conditions=(REP_REL1, RELREP1),
        doc="relational insert -> structure insert",
    )


def rel_insert_rule() -> RewriteRule:
    return RewriteRule(
        name="rel_insert_to_rep",
        variables=rule_vars(REL1, RuleVar("rel2", type_pattern=PApp("rel", (PVar("tuple1"),)))),
        lhs=Apply("rel_insert", (Var("rel1"), Var("rel2"))),
        rhs=Apply("stream_insert", (Var("rep1"), Apply("feed", (Var("rep2"),)))),
        conditions=(
            REP_REL1,
            RELREP1,
            CatalogCondition(REP_CATALOG, ("rel2", "rep2")),
            TypeCondition("rep2", PApp("relrep", (PVar("tuple1"),)), subtype_ok=True),
        ),
        doc="bulk insert -> stream_insert from the source representation",
    )


def delete_range_rules() -> list[RewriteRule]:
    """Deletion by a key range finds its victims with a range search —
    the paper's ``delete (cities_rep, cities_rep range[bottom, 10000])``."""
    rules = []
    shapes = {
        "<=": Apply("range", (Var("bt1"), Var("bottom"), Var("c1"))),
        ">=": Apply("range", (Var("bt1"), Var("c1"), Var("top"))),
        "=": Apply("exact", (Var("bt1"), Var("c1"))),
    }
    for op, search in shapes.items():
        rules.append(
            RewriteRule(
                name=f"delete_{_op_slug(op)}_btree_range",
                variables=_select_vars(),
                lhs=Apply("delete", (Var("rel1"), _attr_cmp_pred(op))),
                rhs=Apply("delete", (Var("bt1"), search)),
                conditions=(REP_BT1, BTREE1),
                doc=f"delete by key {op} constant -> range-search delete",
            )
        )
    return rules


def delete_scan_rule() -> RewriteRule:
    return RewriteRule(
        name="delete_scan",
        variables=rule_vars(REL1, RuleVar("p1")),
        lhs=Apply("delete", (Var("rel1"), Var("p1"))),
        rhs=Apply(
            "delete",
            (Var("bt1"), Apply("filter", (Apply("feed", (Var("bt1"),)), Var("p1")))),
        ),
        conditions=(REP_BT1, BTREE1),
        doc="delete -> scan-filter delete on the B-tree",
    )


def _stream_fun(body_op: str) -> Fun:
    """``fun (s: stream(tuple1)) s body_op[a1, v1]``"""
    return Fun(
        (("s", TypeApp("stream", (T1,))),),
        Apply(body_op, (Var("s"), Var("a1"), Var("v1"))),
    )


def _modified_attr_is_key(state, db) -> bool:
    a1 = state.vbinds.get("a1")
    key_attr = state.tbinds.get("attr")
    if isinstance(a1, Literal) and isinstance(a1.value, Sym):
        return a1.value == key_attr
    if isinstance(a1, Var):
        return Sym(a1.name) == key_attr
    return False


def modify_rules() -> list[RewriteRule]:
    """In-situ modify for non-key attributes; re_insert for key updates —
    exactly the two behaviours the paper distinguishes."""
    variables = rule_vars(REL1, RuleVar("p1"), RuleVar("a1"), RuleVar("v1"))
    lhs = Apply("modify", (Var("rel1"), Var("p1"), Var("a1"), Var("v1")))
    victims = Apply("filter", (Apply("feed", (Var("bt1"),)), Var("p1")))
    non_key = RewriteRule(
        name="modify_in_situ",
        variables=variables,
        lhs=lhs,
        rhs=Apply("modify", (Var("bt1"), victims, _stream_fun("replace"))),
        conditions=(
            REP_BT1,
            BTREE1,
            FunCondition(
                lambda state, db: not _modified_attr_is_key(state, db),
                "modified attribute is not the B-tree key",
            ),
        ),
        doc="non-key modify -> in-situ B-tree modify via replace",
    )
    key = RewriteRule(
        name="modify_key_re_insert",
        variables=variables,
        lhs=lhs,
        rhs=Apply("re_insert", (Var("bt1"), victims, _stream_fun("replace"))),
        conditions=(
            REP_BT1,
            BTREE1,
            FunCondition(_modified_attr_is_key, "modified attribute is the key"),
        ),
        doc="key modify -> delete + re-insert at the new key position",
    )
    return [non_key, key]


def nested_join_rules() -> list[RewriteRule]:
    """Joins over *selected* base relations (one level of nesting).

    ``join(select(rel, p), ..., pred)`` cannot bind ``rel1`` to the select
    subterm — the catalog only knows object names — so dedicated rules push
    the selection into the representation plan as a ``filter`` on the
    corresponding ``feed``/``point_search`` input.  Deeper nesting is out of
    the standard rule set's scope and fails with a clean
    :class:`~repro.errors.OptimizationError` rather than a wrong plan.
    """
    rules: list[RewriteRule] = []
    inside_pred = Fun(
        (("t1", T1), ("t2", T2)),
        Apply(
            "inside",
            (Apply("point", (Var("t1"),)), Apply("region", (Var("t2"),))),
        ),
    )
    spatial_vars = rule_vars(
        REL1,
        REL2,
        RuleVar("point", fun_args=(T1,), fun_result=TypeApp("point")),
        RuleVar("region", fun_args=(T2,), fun_result=TypeApp("pgon")),
        RuleVar("p1"),
        RuleVar("p2"),
    )
    outer_filtered = Apply(
        "filter", (Apply("feed", (Var("rep1"),)), Var("p1"))
    )
    spatial_inner = lambda probe: Fun(  # noqa: E731 - local plan builder
        (("t1", T1),),
        Apply(
            "filter",
            (
                probe,
                Fun(
                    (("t2", T2),),
                    Apply(
                        "inside",
                        (
                            Apply("point", (Var("t1"),)),
                            Apply("region", (Var("t2"),)),
                        ),
                    ),
                ),
            ),
        ),
    )
    probe = Apply("point_search", (Var("lsd2"), Apply("point", (Var("t1"),))))
    rules.append(
        RewriteRule(
            name="join_inside_lsdtree_outer_select",
            variables=spatial_vars,
            lhs=Apply(
                "join",
                (
                    Apply("select", (Var("rel1"), Var("p1"))),
                    Var("rel2"),
                    inside_pred,
                ),
            ),
            rhs=Apply("search_join", (outer_filtered, spatial_inner(probe))),
            conditions=(REP_REL1, RELREP1, REP_LSD2, LSD2),
            doc="selected outer side of the spatial join",
        )
    )
    filtered_probe = Apply("filter", (probe, Var("p2")))
    rules.append(
        RewriteRule(
            name="join_inside_lsdtree_inner_select",
            variables=spatial_vars,
            lhs=Apply(
                "join",
                (
                    Var("rel1"),
                    Apply("select", (Var("rel2"), Var("p2"))),
                    inside_pred,
                ),
            ),
            rhs=Apply(
                "search_join",
                (Apply("feed", (Var("rep1"),)), spatial_inner(filtered_probe)),
            ),
            conditions=(REP_REL1, RELREP1, REP_LSD2, LSD2),
            doc="selected inner side of the spatial join",
        )
    )
    # Generic scan fallbacks with a select on either (or both) sides.
    scan_vars = rule_vars(REL1, REL2, RuleVar("p"), RuleVar("p1"), RuleVar("p2"))

    def scan_rhs(outer, inner):
        return Apply(
            "search_join",
            (
                outer,
                Fun(
                    (("t1", T1),),
                    Apply(
                        "filter",
                        (
                            inner,
                            Fun(
                                (("t2", T2),),
                                Call(Var("p"), (Var("t1"), Var("t2"))),
                            ),
                        ),
                    ),
                ),
            ),
        )

    plain_outer = Apply("feed", (Var("rep1"),))
    plain_inner = Apply("feed", (Var("rep2"),))
    sel_outer = Apply("filter", (Apply("feed", (Var("rep1"),)), Var("p1")))
    sel_inner = Apply("filter", (Apply("feed", (Var("rep2"),)), Var("p2")))
    shapes = [
        (
            "join_scan_outer_select",
            Apply(
                "join",
                (Apply("select", (Var("rel1"), Var("p1"))), Var("rel2"), Var("p")),
            ),
            scan_rhs(sel_outer, plain_inner),
        ),
        (
            "join_scan_inner_select",
            Apply(
                "join",
                (Var("rel1"), Apply("select", (Var("rel2"), Var("p2"))), Var("p")),
            ),
            scan_rhs(plain_outer, sel_inner),
        ),
        (
            "join_scan_both_select",
            Apply(
                "join",
                (
                    Apply("select", (Var("rel1"), Var("p1"))),
                    Apply("select", (Var("rel2"), Var("p2"))),
                    Var("p"),
                ),
            ),
            scan_rhs(sel_outer, sel_inner),
        ),
    ]
    for name, lhs, rhs in shapes:
        rules.append(
            RewriteRule(
                name=name,
                variables=scan_vars,
                lhs=lhs,
                rhs=rhs,
                conditions=(REP_REL1, RELREP1, REP_REL2, RELREP2),
                doc="scan join with pushed-down selection(s)",
            )
        )
    return rules


def select_fusion_rule() -> RewriteRule:
    """Model-level normalization: ``select(select(r, p1), p2)`` becomes one
    selection with a conjunctive predicate.  Applied exhaustively before
    translation, it collapses select chains of any depth, so the translation
    rules only ever see a single selection."""
    return RewriteRule(
        name="select_fusion",
        variables=rule_vars(
            RuleVar("r", type_pattern=PApp("rel", (PVar("tuple1"),))),
            RuleVar("p1"),
            RuleVar("p2"),
        ),
        lhs=Apply("select", (Apply("select", (Var("r"), Var("p1"))), Var("p2"))),
        rhs=Apply(
            "select",
            (
                Var("r"),
                Fun(
                    (("t1", T1),),
                    Apply(
                        "and",
                        (
                            Call(Var("p1"), (Var("t1"),)),
                            Call(Var("p2"), (Var("t1"),)),
                        ),
                    ),
                ),
            ),
        ),
        doc="fuse stacked selections into one conjunctive selection",
    )


def normalization_rules() -> list[RewriteRule]:
    return [select_fusion_rule()]


def query_rules() -> list[RewriteRule]:
    return [
        spatial_join_rule(),
        equi_join_rule(),
        equi_join_hash_rule(),
        equi_join_index_rule(),
        *nested_join_rules(),
        select_between_rule(),
        *select_index_rules(),
        select_scan_rule(),
        join_scan_rule(),
    ]


def update_rules() -> list[RewriteRule]:
    return [
        insert_rule(),
        rel_insert_rule(),
        *delete_range_rules(),
        *modify_rules(),
        delete_scan_rule(),
    ]


def standard_optimizer() -> Optimizer:
    """The default two-step optimizer: translate updates, then queries.

    Within each step the first applicable rule wins, so the rule *order*
    encodes the preference for index plans (the [BeG92] heuristic)."""
    return Optimizer(
        [
            OptimizerStep("normalize", normalization_rules(), "exhaustive"),
            OptimizerStep("translate-updates", update_rules(), "exhaustive"),
            OptimizerStep("translate-queries", query_rules(), "exhaustive"),
        ]
    )


def cost_based_optimizer(shuffled: bool = False) -> Optimizer:
    """An optimizer that chooses among all applicable rewrites by estimated
    cost (:mod:`repro.optimizer.cost`) instead of rule order.

    With ``shuffled=True`` the query rules are listed *worst-first* (scan
    fallbacks before index rules) — under first-match that order produces
    scan plans; under cost-based choice the plan quality must not depend on
    rule order at all, which is the ablation benchmark B7.
    """
    rules = query_rules()
    if shuffled:
        rules = list(reversed(rules))
    return Optimizer(
        [
            OptimizerStep("normalize", normalization_rules(), "exhaustive"),
            OptimizerStep("translate-updates", update_rules(), "exhaustive"),
            OptimizerStep(
                "translate-queries", rules, "exhaustive", cost_based=True
            ),
        ]
    )


def misordered_optimizer() -> Optimizer:
    """First-match with the query rules listed worst-first — the baseline
    the cost-based ablation compares against."""
    return Optimizer(
        [
            OptimizerStep("translate-updates", update_rules(), "exhaustive"),
            OptimizerStep(
                "translate-queries", list(reversed(query_rules())), "exhaustive"
            ),
        ]
    )
