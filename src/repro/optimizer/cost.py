"""A statistics-aware structural cost model for representation-level plans.

[BeG92]'s Gral optimizer applies rules heuristically, in step order; a
natural refinement (and our ablation subject) is choosing among *all*
applicable rewrites by estimated cost.  The model prices each plan node
with ``(cost, output cardinality)``:

* ``feed(rep)`` — cost = size of the structure, cardinality = size;
* ``range``/``prefix`` — logarithmic descent + the selected fraction;
* ``exact`` — logarithmic descent + the matching fraction;
* ``point_search``/``overlap_search`` — logarithmic + 5 %;
* ``filter[p]`` — input cost + one predicate evaluation per input tuple;
* ``search_join`` — outer cost + outer cardinality × inner-function cost;
* ``merge_join``/``hash_join`` — sort/build-probe passes over both sides;
* everything else — sum of the argument costs.

Selectivities prefer the statistics catalog (``db.stats``, populated by
the ``analyze`` statement — see :mod:`repro.stats`) and fall back to the
textbook constants below when no statistics exist.  The preference order
for a filter predicate is: *observed* selectivity (cardinality feedback
from a previous execution) > histogram estimate > sample (only with
``sample=True``) > constant.  Every stats consultation bumps a
``cost.stats_hit`` / ``cost.stats_miss`` observe counter, and every silent
sample fallback bumps ``cost.sample_fallback`` — so ``explain`` can report
what the estimate was actually based on.
"""

from __future__ import annotations

import math
from typing import Optional

from repro import observe
from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    ObjRef,
    Term,
    TupleTerm,
    Var,
    format_term,
)
from repro.core.types import Sym

DEFAULT_SIZE = 1000.0
FILTER_SELECTIVITY = 1 / 3
RANGE_SELECTIVITY = 0.1
EXACT_SELECTIVITY = 0.01
SPATIAL_SELECTIVITY = 0.05
MODEL_OP_PENALTY = 1e12
"""Model-level operators are not executable plans; anything containing one
must lose against any fully translated plan."""

_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
_OPEN_BOUNDS = {"bottom", "top"}


def estimate(term: Term, db, sample: bool = False) -> float:
    """Estimated cost of a (typechecked) plan.

    With ``sample=True``, filter selectivities without catalog statistics
    are estimated by evaluating the predicate on a small sample of the
    underlying structure instead of using the textbook constant.
    """
    return CostModel(db, sample=sample).estimate(term)


def estimate_with_cardinalities(
    term: Term, db, sample: bool = False
) -> tuple[float, dict[str, float]]:
    """Like :func:`estimate`, additionally returning the estimated output
    cardinality per operator name (summed over occurrences, scaled by the
    number of probes for operators inside a ``search_join`` inner function)
    — the estimate side of the cardinality-feedback report."""
    model = CostModel(db, sample=sample)
    cost = model.estimate(term)
    return cost, model.cardinalities


SAMPLE_SIZE = 50


def sampled_selectivity(pred_term, source_term, db) -> float:
    """Fraction of a small sample of ``source_term``'s structure that
    satisfies the predicate; falls back to the textbook constant.

    Every fallback (wrong shapes, missing structure, empty or failing
    sample) bumps the ``cost.sample_fallback`` observe counter so the
    silent degradation is visible in ``explain`` output.
    """
    from itertools import islice

    from repro.core.algebra import Closure

    if not isinstance(pred_term, Fun) or not isinstance(source_term, (Var, ObjRef)):
        return _sample_fallback()
    obj = db.objects.get(source_term.name)
    if obj is None or obj.value is None or not hasattr(obj.value, "scan"):
        return _sample_fallback()
    try:
        closure = Closure(pred_term, {}, db.evaluator)
        rows = list(islice(obj.value.scan(), SAMPLE_SIZE))
        if not rows:
            return _sample_fallback()
        hits = sum(1 for row in rows if closure(row))
        return max(0.01, hits / len(rows))
    except Exception:
        return _sample_fallback()


def _sample_fallback() -> float:
    if observe.ENABLED:
        observe.incr("cost.sample_fallback")
    return FILTER_SELECTIVITY


class CostModel:
    """One estimate pass: walks a plan term, consulting ``db.stats``.

    ``cardinalities`` accumulates the estimated output rows per operator
    name as the walk proceeds (``scale`` multiplies cardinalities inside
    ``search_join`` inner functions by the estimated number of probes, so
    totals line up with what :class:`~repro.observe.ExecutionMetrics`
    counts across the whole statement).
    """

    def __init__(self, db, sample: bool = False):
        self.db = db
        self.stats = getattr(db, "stats", None)
        self.sample = sample
        self.cardinalities: dict[str, float] = {}

    def estimate(self, term: Term) -> float:
        cost, _ = self._walk(term, 1.0)
        return cost

    # ------------------------------------------------------------ stats access

    def _entry(self, term: Term):
        """The stats entry for a structure-naming term, or None."""
        if self.stats is None or not isinstance(term, (Var, ObjRef)):
            return None
        entry = self.stats.get(term.name)
        if observe.ENABLED:
            observe.incr("cost.stats_hit" if entry is not None else "cost.stats_miss")
        return entry

    def _structure_size(self, term: Term) -> float:
        entry = self._entry(term)
        if entry is not None:
            return float(entry.row_count)
        if isinstance(term, (Var, ObjRef)):
            obj = self.db.objects.get(term.name)
            if obj is not None and obj.value is not None:
                try:
                    return float(len(obj.value))
                except TypeError:
                    return DEFAULT_SIZE
        return DEFAULT_SIZE

    # ------------------------------------------------------------------ walk

    def _walk(self, term: Term, scale: float) -> tuple[float, float]:
        """Returns (cost, output cardinality)."""
        if isinstance(term, (Var, ObjRef)):
            return 0.0, self._structure_size(term)
        if isinstance(term, Fun):
            return self._walk(term.body, scale)
        if isinstance(term, Call):
            cost, card = self._walk(term.fn, scale)
            for a in term.args:
                c, _ = self._walk(a, scale)
                cost += c
            return cost, card
        if isinstance(term, (ListTerm, TupleTerm)):
            total = 0.0
            for item in term.items:
                c, _ = self._walk(item, scale)
                total += c
            return total, 1.0
        if not isinstance(term, Apply):
            return 0.0, 1.0
        return self._apply(term, scale)

    def _record(self, op: str, card: float, scale: float) -> None:
        self.cardinalities[op] = self.cardinalities.get(op, 0.0) + card * scale

    def _apply(self, term: Apply, scale: float) -> tuple[float, float]:
        op = term.op
        spec = term.resolved.spec if term.resolved is not None else None
        level = spec.level if spec is not None else "hybrid"
        if op == "feed":
            size = self._structure_size(term.args[0])
            self._record(op, size, scale)
            return size, size
        if op in ("range", "prefix"):
            size = self._structure_size(term.args[0])
            card = max(1.0, self._range_selectivity(term) * size)
            self._record(op, card, scale)
            return math.log2(size + 2) + card, card
        if op == "exact":
            size = self._structure_size(term.args[0])
            card = max(1.0, self._exact_selectivity(term) * size)
            self._record(op, card, scale)
            return math.log2(size + 2) + card, card
        if op in ("point_search", "overlap_search"):
            size = self._structure_size(term.args[0])
            card = max(1.0, SPATIAL_SELECTIVITY * size)
            self._record(op, card, scale)
            return math.log2(size + 2) + card, card
        if op == "filter":
            in_cost, in_card = self._walk(term.args[0], scale)
            pred_cost, _ = self._walk(term.args[1], scale)
            selectivity = self._filter_selectivity(term)
            card = in_card * selectivity
            self._record(op, card, scale)
            return in_cost + in_card * (1 + pred_cost), card
        if op in ("project", "replace"):
            in_cost, in_card = self._walk(term.args[0], scale)
            self._record(op, in_card, scale)
            return in_cost + in_card, in_card
        if op == "head":
            in_cost, in_card = self._walk(term.args[0], scale)
            n = 10.0
            if isinstance(term.args[1], Literal) and isinstance(
                term.args[1].value, int
            ):
                n = float(term.args[1].value)
            card = min(in_card, n)
            self._record(op, card, scale)
            return min(in_cost, card * 2), card
        if op == "search_join":
            outer_cost, outer_card = self._walk(term.args[0], scale)
            probes = scale * max(outer_card, 1.0)
            inner_cost, inner_card = self._walk(term.args[1], probes)
            card = outer_card * inner_card
            self._record(op, card, scale)
            return outer_cost + outer_card * inner_cost, card
        if op == "merge_join":
            l_cost, l_card = self._walk(term.args[0], scale)
            r_cost, r_card = self._walk(term.args[1], scale)
            sort = l_card * math.log2(l_card + 2) + r_card * math.log2(r_card + 2)
            card = self._join_cardinality(term, l_card, r_card)
            self._record(op, card, scale)
            return l_cost + r_cost + sort, card
        if op == "hash_join":
            l_cost, l_card = self._walk(term.args[0], scale)
            r_cost, r_card = self._walk(term.args[1], scale)
            # one build pass + one probe pass; no sorting
            card = self._join_cardinality(term, l_card, r_card)
            self._record(op, card, scale)
            return l_cost + r_cost + l_card + r_card, card
        if op == "collect":
            in_cost, in_card = self._walk(term.args[0], scale)
            self._record(op, in_card, scale)
            return in_cost + in_card, in_card
        if op == "count":
            in_cost, in_card = self._walk(term.args[0], scale)
            return in_cost + in_card, 1.0
        # Model-level operators make a plan non-executable.
        if level == "model":
            total = MODEL_OP_PENALTY
            for a in term.args:
                c, _ = self._walk(a, scale)
                total += c
            return total, DEFAULT_SIZE
        total = 0.0
        card = 1.0
        for a in term.args:
            c, k = self._walk(a, scale)
            total += c
            card = max(card, k)
        return total, card

    # ----------------------------------------------------------- selectivity

    def _range_selectivity(self, term: Apply) -> float:
        """``range(bt, low, high)`` via the key attribute's histogram."""
        entry = self._entry(term.args[0])
        if entry is not None and entry.key_attr is not None:
            attr = entry.attr(entry.key_attr)
            if attr is not None and len(term.args) >= 3:
                low = _bound_value(term.args[1])
                high = _bound_value(term.args[2])
                sel = attr.selectivity_range(low, high)
                if sel is not None:
                    return sel
        return RANGE_SELECTIVITY

    def _exact_selectivity(self, term: Apply) -> float:
        """``exact(bt, k)`` via the key attribute's distinct count."""
        entry = self._entry(term.args[0])
        if entry is not None and entry.key_attr is not None:
            attr = entry.attr(entry.key_attr)
            if attr is not None:
                probe = (
                    term.args[1].value
                    if len(term.args) > 1 and isinstance(term.args[1], Literal)
                    else None
                )
                sel = attr.selectivity_eq(probe) if probe is not None else (
                    1.0 / attr.distinct if attr.distinct > 0 else None
                )
                if sel is not None:
                    return sel
        return EXACT_SELECTIVITY

    def _filter_selectivity(self, term: Apply) -> float:
        """Preference order: observed feedback > histogram > sample >
        textbook constant."""
        source, pred = term.args[0], term.args[1]
        base = _base_structure(source)
        entry = self._entry(base) if base is not None else None
        if entry is not None:
            observed = entry.observed.get(format_term(pred))
            if observed is not None:
                return max(0.0, min(1.0, observed))
            # Histogram estimates are fractions of the whole structure, so
            # they only price a filter over an unrestricted feed.
            if (
                isinstance(source, Apply)
                and source.op == "feed"
                and isinstance(pred, Fun)
            ):
                parsed = _parse_comparison(pred)
                if parsed is not None:
                    sel = self._comparison_selectivity(entry, *parsed)
                    if sel is not None:
                        return sel
        if (
            self.sample
            and isinstance(source, Apply)
            and source.op == "feed"
            and source.args
        ):
            return sampled_selectivity(pred, source.args[0], self.db)
        return FILTER_SELECTIVITY

    def _comparison_selectivity(
        self, entry, attr_name: str, op: str, value
    ) -> Optional[float]:
        attr = entry.attr(attr_name)
        if attr is None:
            return None
        if op == "=":
            return attr.selectivity_eq(value)
        if op == "!=":
            eq = attr.selectivity_eq(value)
            return None if eq is None else max(0.0, 1.0 - eq)
        if op in ("<", "<="):
            return attr.selectivity_range(None, value)
        if op in (">", ">="):
            return attr.selectivity_range(value, None)
        return None

    def _join_cardinality(self, term: Apply, l_card: float, r_card: float) -> float:
        """Equi-join output via distinct counts (``l*r / max(d1, d2)``),
        falling back to the old ``max`` heuristic without statistics."""
        if len(term.args) >= 4:
            d1 = self._side_distinct(term.args[0], term.args[2])
            d2 = self._side_distinct(term.args[1], term.args[3])
            if d1 is not None or d2 is not None:
                d = max(d1 or 1.0, d2 or 1.0)
                return max(1.0, l_card * r_card / d)
        return max(l_card, r_card)

    def _side_distinct(self, side: Term, attr_term: Term) -> Optional[float]:
        base = _base_structure(side)
        if base is None:
            return None
        entry = self._entry(base)
        if entry is None:
            return None
        attr_name = _attr_name(attr_term)
        if attr_name is None:
            return None
        attr = entry.attr(attr_name)
        if attr is None or attr.distinct <= 0:
            return None
        return float(attr.distinct)


# ---------------------------------------------------------------------------
# Term-shape helpers
# ---------------------------------------------------------------------------


def _base_structure(term: Term) -> Optional[Term]:
    """The structure-naming term a stream expression reads directly."""
    if isinstance(term, (Var, ObjRef)):
        return term
    if (
        isinstance(term, Apply)
        and term.op in ("feed", "range", "exact", "prefix")
        and term.args
    ):
        first = term.args[0]
        if isinstance(first, (Var, ObjRef)):
            return first
    return None


def _bound_value(term: Term):
    """A literal range bound; ``bottom``/``top`` (or anything non-literal)
    is an open bound."""
    if isinstance(term, Literal):
        return term.value
    return None


def _attr_name(term: Term) -> Optional[str]:
    """The attribute name in a join attribute descriptor (``Var`` from the
    concrete syntax, ``Literal(Sym)`` from rule instantiation, or an
    attribute-access ``Apply``)."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Literal) and isinstance(term.value, Sym):
        return term.value.name
    if isinstance(term, Apply) and not term.args:
        return term.op
    return None


def _parse_comparison(pred: Fun) -> Optional[tuple[str, str, object]]:
    """``fun (t) (t attr) op literal`` (either side) -> (attr, op, value)."""
    if len(pred.params) != 1 or not isinstance(pred.body, Apply):
        return None
    body = pred.body
    if body.op not in _COMPARISONS or len(body.args) != 2:
        return None
    param = pred.params[0][0]
    left, right = body.args
    attr = _attr_access(left, param)
    if attr is not None and isinstance(right, Literal):
        return attr, body.op, right.value
    attr = _attr_access(right, param)
    if attr is not None and isinstance(left, Literal):
        return attr, _flip(body.op), left.value
    return None


def _attr_access(term: Term, param: str) -> Optional[str]:
    if (
        isinstance(term, Apply)
        and len(term.args) == 1
        and isinstance(term.args[0], Var)
        and term.args[0].name == param
    ):
        return term.op
    return None


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
