"""A simple structural cost model for representation-level plans.

[BeG92]'s Gral optimizer applies rules heuristically, in step order; a
natural refinement (and our ablation subject) is choosing among *all*
applicable rewrites by estimated cost.  The model here is deliberately
simple — textbook selectivity constants over actual structure sizes from
the database — but it is enough to rank scan plans against index plans
correctly, which is all the standard rules need.

``estimate(term, db)`` returns ``(cost, cardinality)``:

* ``feed(rep)`` — cost = size of the structure, cardinality = size;
* ``range``/``prefix`` — logarithmic descent + 10 % of the structure;
* ``exact`` — logarithmic descent + 1 %;
* ``point_search``/``overlap_search`` — logarithmic + 5 %;
* ``filter[p]`` — input cost + one predicate evaluation per input tuple,
  cardinality 1/3 of the input;
* ``search_join`` — outer cost + outer cardinality × inner-function cost;
* everything else — sum of the argument costs.
"""

from __future__ import annotations

import math

from repro.core.terms import Apply, Call, Fun, ListTerm, ObjRef, Term, TupleTerm, Var

DEFAULT_SIZE = 1000.0
FILTER_SELECTIVITY = 1 / 3
RANGE_SELECTIVITY = 0.1
EXACT_SELECTIVITY = 0.01
SPATIAL_SELECTIVITY = 0.05
MODEL_OP_PENALTY = 1e12
"""Model-level operators are not executable plans; anything containing one
must lose against any fully translated plan."""


def estimate(term: Term, db, sample: bool = False) -> float:
    """Estimated cost of a (typechecked) plan.

    With ``sample=True``, filter selectivities are estimated by evaluating
    the predicate on a small sample of the underlying structure instead of
    using the textbook constant — data-aware costing, at the price of a few
    predicate evaluations per estimate.
    """
    cost, _ = _walk(term, db, sample)
    return cost


SAMPLE_SIZE = 50


def sampled_selectivity(pred_term, source_term, db) -> float:
    """Fraction of a small sample of ``source_term``'s structure that
    satisfies the predicate; falls back to the textbook constant."""
    from itertools import islice

    from repro.core.algebra import Closure
    from repro.core.terms import Fun

    if not isinstance(pred_term, Fun) or not isinstance(source_term, (Var, ObjRef)):
        return FILTER_SELECTIVITY
    obj = db.objects.get(source_term.name)
    if obj is None or obj.value is None or not hasattr(obj.value, "scan"):
        return FILTER_SELECTIVITY
    try:
        closure = Closure(pred_term, {}, db.evaluator)
        rows = list(islice(obj.value.scan(), SAMPLE_SIZE))
        if not rows:
            return FILTER_SELECTIVITY
        hits = sum(1 for row in rows if closure(row))
        return max(0.01, hits / len(rows))
    except Exception:
        return FILTER_SELECTIVITY


def _structure_size(term: Term, db) -> float:
    if isinstance(term, (Var, ObjRef)):
        obj = db.objects.get(term.name)
        if obj is not None and obj.value is not None:
            try:
                return float(len(obj.value))
            except TypeError:
                return DEFAULT_SIZE
    return DEFAULT_SIZE


def _walk(term: Term, db, sample: bool = False) -> tuple[float, float]:
    """Returns (cost, output cardinality)."""
    if isinstance(term, (Var, ObjRef)):
        return 0.0, _structure_size(term, db)
    if isinstance(term, Fun):
        return _walk(term.body, db, sample)
    if isinstance(term, Call):
        cost, card = _walk(term.fn, db, sample)
        for a in term.args:
            c, _ = _walk(a, db, sample)
            cost += c
        return cost, card
    if isinstance(term, (ListTerm, TupleTerm)):
        total = 0.0
        for item in term.items:
            c, _ = _walk(item, db, sample)
            total += c
        return total, 1.0
    if not isinstance(term, Apply):
        return 0.0, 1.0
    return _apply_cost(term, db, sample)


def _apply_cost(term: Apply, db, sample: bool = False) -> tuple[float, float]:
    op = term.op
    spec = term.resolved.spec if term.resolved is not None else None
    level = spec.level if spec is not None else "hybrid"
    if op == "feed":
        size = _structure_size(term.args[0], db)
        return size, size
    if op in ("range", "prefix"):
        size = _structure_size(term.args[0], db)
        card = max(1.0, RANGE_SELECTIVITY * size)
        return math.log2(size + 2) + card, card
    if op == "exact":
        size = _structure_size(term.args[0], db)
        card = max(1.0, EXACT_SELECTIVITY * size)
        return math.log2(size + 2) + card, card
    if op in ("point_search", "overlap_search"):
        size = _structure_size(term.args[0], db)
        card = max(1.0, SPATIAL_SELECTIVITY * size)
        return math.log2(size + 2) + card, card
    if op == "filter":
        in_cost, in_card = _walk(term.args[0], db, sample)
        pred_cost, _ = _walk(term.args[1], db, sample)
        selectivity = FILTER_SELECTIVITY
        if (
            sample
            and isinstance(term.args[0], Apply)
            and term.args[0].op == "feed"
            and term.args[0].args
        ):
            selectivity = sampled_selectivity(term.args[1], term.args[0].args[0], db)
        return in_cost + in_card * (1 + pred_cost), in_card * selectivity
    if op in ("project", "replace"):
        in_cost, in_card = _walk(term.args[0], db, sample)
        return in_cost + in_card, in_card
    if op == "head":
        from repro.core.terms import Literal

        in_cost, in_card = _walk(term.args[0], db, sample)
        n = 10.0
        if isinstance(term.args[1], Literal) and isinstance(term.args[1].value, int):
            n = float(term.args[1].value)
        card = min(in_card, n)
        return min(in_cost, card * 2), card
    if op == "search_join":
        outer_cost, outer_card = _walk(term.args[0], db, sample)
        inner_cost, inner_card = _walk(term.args[1], db, sample)
        return outer_cost + outer_card * inner_cost, outer_card * inner_card
    if op == "merge_join":
        l_cost, l_card = _walk(term.args[0], db, sample)
        r_cost, r_card = _walk(term.args[1], db, sample)
        sort = l_card * math.log2(l_card + 2) + r_card * math.log2(r_card + 2)
        return l_cost + r_cost + sort, max(l_card, r_card)
    if op == "hash_join":
        l_cost, l_card = _walk(term.args[0], db, sample)
        r_cost, r_card = _walk(term.args[1], db, sample)
        # one build pass + one probe pass; no sorting
        return l_cost + r_cost + l_card + r_card, max(l_card, r_card)
    if op == "collect":
        in_cost, in_card = _walk(term.args[0], db, sample)
        return in_cost + in_card, in_card
    if op == "count":
        in_cost, in_card = _walk(term.args[0], db, sample)
        return in_cost + in_card, 1.0
    # Model-level operators make a plan non-executable.
    if level == "model":
        total = MODEL_OP_PENALTY
        for a in term.args:
            c, _ = _walk(a, db, sample)
            total += c
        return total, DEFAULT_SIZE
    total = 0.0
    card = 1.0
    for a in term.args:
        c, k = _walk(a, db, sample)
        total += c
        card = max(card, k)
    return total, card
