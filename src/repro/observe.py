"""Structured execution observability: events, spans, and metrics.

Three cooperating pieces, all optional and all zero-overhead when off:

:class:`Tracer`
    a lightweight structured event bus.  Producers call :meth:`Tracer.emit`
    / :meth:`Tracer.span`; when nobody subscribed, both are a length check
    and an early return.  Subscriber exceptions are swallowed — a broken
    listener must never kill query execution.

:class:`ExecutionMetrics`
    per-statement counters: tuples produced/consumed per algebra operator,
    storage node/page accesses, TID fetches, plus the simulated-I/O delta.
    Collection is armed with :func:`collecting`; instrumented code guards
    each counter behind the module-level :data:`ENABLED` flag (same pattern
    as :func:`repro.testing.faults.fault_point` — a single global load and
    an early return when disabled).

:class:`RuleTrace`
    the optimizer's decision log: every fired rewrite with the term before
    and after, and per-rule attempt counts broken down by outcome
    (``no_match`` / ``conditions_failed`` / ``typecheck_failed`` /
    ``fired``) — the Gral-style rule trace [BeG92] that rule sets are
    debugged with.

The system front end (:mod:`repro.system`) wires these into every
statement; :func:`repro.api.connect` exposes them as the ``trace`` option
and ``explain(..., analyze=True)``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

ENABLED = False
"""True while an :class:`ExecutionMetrics` is armed (fast-path guard)."""

_ACTIVE: Optional["ExecutionMetrics"] = None

_ARMED: list["ExecutionMetrics"] = []
"""The stack of armed sinks; the top one is :data:`_ACTIVE`.  Kept as an
explicit stack so :func:`collecting` scopes can exit in any order (e.g.
interleaved generators) without clobbering each other's state."""


# ---------------------------------------------------------------------------
# Event bus
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Event:
    """One structured trace event.

    ``kind`` is ``begin`` / ``end`` for spans (``value`` of an ``end`` event
    is the span duration in seconds) or ``counter`` for point events.
    ``depth`` is the span-nesting depth at emission time.  ``ts`` is
    normally ``None`` (the event happened *now*); events replayed from
    another process — server spans stitched into a client trace — carry
    an explicit ``time.perf_counter()``-scale timestamp instead.
    """

    name: str
    kind: str = "counter"
    value: float = 0.0
    data: dict = field(default_factory=dict)
    depth: int = 0
    ts: Optional[float] = None


class Tracer:
    """A subscribable event bus with span support.

    ``emit``/``span`` cost a subscriber-list check when nobody listens, so a
    tracer can stay permanently attached to a system.  Subscribers are
    callables of one :class:`Event` argument; exceptions they raise are
    caught and counted, never propagated.
    """

    __slots__ = ("_subscribers", "_depth", "subscriber_errors")

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Event], None]] = []
        self._depth = 0
        self.subscriber_errors = 0

    @property
    def enabled(self) -> bool:
        return bool(self._subscribers)

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register a subscriber; returns it (usable as a decorator)."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def emit(
        self, name: str, kind: str = "counter", value: float = 0.0, **data
    ) -> None:
        if not self._subscribers:
            return
        self.deliver(Event(name, kind, value, data, self._depth))

    def deliver(self, event: Event) -> None:
        """Dispatch a pre-built :class:`Event` to every subscriber.

        :meth:`emit` builds and delivers; replay paths (network sessions
        stitching server spans into the client trace) build events with
        explicit depths/timestamps and deliver them directly.
        """
        if not self._subscribers:
            return
        for fn in tuple(self._subscribers):
            try:
                fn(event)
            except Exception:
                self.subscriber_errors += 1

    @contextmanager
    def span(self, name: str, **data) -> Iterator[None]:
        """Emit ``begin``/``end`` events around a block; the ``end`` event
        carries the wall-clock duration."""
        if not self._subscribers:
            yield
            return
        self.emit(name, "begin", **data)
        self._depth += 1
        start = time.perf_counter()
        try:
            yield
        finally:
            self._depth -= 1
            self.emit(name, "end", value=time.perf_counter() - start, **data)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class Histogram:
    """A value-distribution counter: records observations, reports
    min/max/mean and interpolated percentiles.

    Stores the raw observations (statements observe at most a few thousand
    values — latencies, per-probe row counts), so percentiles are exact
    rather than bucketed.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def record(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), linearly interpolated."""
        if not self.values:
            raise ValueError("empty histogram has no percentiles")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(ordered):
            return ordered[-1]
        return ordered[low] + (ordered[low + 1] - ordered[low]) * frac

    def as_dict(self) -> dict:
        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "min": min(self.values),
            "max": max(self.values),
            "mean": sum(self.values) / len(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"<Histogram n={len(self.values)}>"


class ExecutionMetrics:
    """Counters collected over one statement (or any :func:`collecting`
    scope).

    ``operators`` maps an algebra operator name to its tuple flow:
    ``out`` tuples it produced, ``in`` tuples explicitly consumed (only
    operators with interesting input-side behavior report ``in``; for a
    pipeline, the consumption of an operator equals the production of its
    input).  ``counters`` holds storage-level counts
    (``btree.node_reads``, ``lsdtree.node_reads``, ``tidrel.fetches``, ...)
    and stream-internal ones (``hash_join.build_rows``, ``sort.rows``,
    ``search_join.probes``).  ``io`` is the simulated page-I/O delta of the
    statement, filled in by the system front end.
    """

    __slots__ = ("operators", "counters", "io", "histograms")

    def __init__(self) -> None:
        self.operators: dict[str, dict[str, int]] = {}
        self.counters: dict[str, int] = {}
        self.io: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    # ---- hot-path recording (only reached while ENABLED)

    def op_slot(self, op: str) -> dict[str, int]:
        slot = self.operators.get(op)
        if slot is None:
            slot = self.operators[op] = {"in": 0, "out": 0}
        return slot

    def count_out(self, op: str, iterator) -> Iterator:
        """Wrap an operator's output iterator, counting produced tuples."""
        slot = self.op_slot(op)
        for item in iterator:
            slot["out"] += 1
            yield item

    def count_in(self, op: str, iterator) -> Iterator:
        """Wrap an operator's input iterator, counting consumed tuples."""
        slot = self.op_slot(op)
        for item in iterator:
            slot["in"] += 1
            yield item

    def incr(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def record(self, name: str, value: float) -> None:
        """Add one observation to the named :class:`Histogram`."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    # ---- reporting

    def tuples_out(self, op: str) -> int:
        slot = self.operators.get(op)
        return slot["out"] if slot else 0

    def as_dict(self) -> dict:
        d = {
            "operators": {op: dict(slot) for op, slot in self.operators.items()},
            "counters": dict(self.counters),
            "io": dict(self.io),
        }
        if self.histograms:
            d["histograms"] = {
                name: hist.as_dict() for name, hist in self.histograms.items()
            }
        return d

    def __repr__(self) -> str:
        ops = ", ".join(
            f"{op}:{slot['out']}" for op, slot in sorted(self.operators.items())
        )
        return f"<ExecutionMetrics ops=[{ops}] counters={self.counters}>"


def active() -> Optional[ExecutionMetrics]:
    """The armed metrics sink, or None when collection is off."""
    return _ACTIVE


def incr(name: str, value: int = 1) -> None:
    """Bump a named counter on the active sink (no-op when disarmed).

    Hot call sites should guard with ``if observe.ENABLED:`` first so the
    disabled path is a module-attribute load, not a function call.
    """
    sink = _ACTIVE
    if sink is not None:
        sink.counters[name] = sink.counters.get(name, 0) + value


def record(name: str, value: float) -> None:
    """Add one observation to a named histogram on the active sink
    (no-op when disarmed).  Same guard discipline as :func:`incr`."""
    sink = _ACTIVE
    if sink is not None:
        sink.record(name, value)


@contextmanager
def collecting(metrics: Optional[ExecutionMetrics] = None) -> Iterator[ExecutionMetrics]:
    """Arm ``metrics`` (a fresh sink by default) as the active collector.

    Fully reentrant: scopes nest, and — because generators can suspend a
    scope and finalize later — they may also *exit out of order*.  Each
    exit removes its own sink from the armed stack (by identity, innermost
    occurrence first) and recomputes the active sink from whatever remains,
    so a stale exit never clobbers a scope armed after it.
    """
    global _ACTIVE, ENABLED
    sink = metrics if metrics is not None else ExecutionMetrics()
    _ARMED.append(sink)
    _ACTIVE = sink
    ENABLED = True
    try:
        yield sink
    finally:
        for i in range(len(_ARMED) - 1, -1, -1):
            if _ARMED[i] is sink:
                del _ARMED[i]
                break
        _ACTIVE = _ARMED[-1] if _ARMED else None
        ENABLED = _ACTIVE is not None


# ---------------------------------------------------------------------------
# Trace export
# ---------------------------------------------------------------------------


class ChromeTraceExporter:
    """A :class:`Tracer` subscriber that renders events in the Chrome trace
    event format (``chrome://tracing`` / Perfetto ``about:tracing`` JSON).

    Subscribe it to a tracer, run statements, then :meth:`write` (or
    :meth:`to_json`) the collected events::

        exporter = ChromeTraceExporter()
        session.subscribe(exporter)
        ...
        exporter.write("trace.json")

    Span ``begin``/``end`` events map to ``ph: "B"``/``"E"`` duration
    events; point events map to ``ph: "i"`` instants.  Timestamps are
    microseconds since the exporter was created.
    """

    __slots__ = ("events", "_origin", "pid", "tid")

    def __init__(self, pid: int = 1, tid: int = 1) -> None:
        self.events: list[dict] = []
        self._origin = time.perf_counter()
        self.pid = pid
        self.tid = tid

    def __call__(self, event: Event) -> None:
        ph = {"begin": "B", "end": "E"}.get(event.kind, "i")
        when = event.ts if event.ts is not None else time.perf_counter()
        record: dict = {
            "name": event.name,
            "ph": ph,
            "ts": (when - self._origin) * 1e6,
            "pid": self.pid,
            "tid": self.tid,
        }
        if ph == "i":
            record["s"] = "t"  # thread-scoped instant
        args = {k: _jsonable(v) for k, v in event.data.items()}
        if event.kind == "end":
            args["duration_ms"] = event.value * 1000.0
        elif event.kind == "counter" and event.value:
            args["value"] = event.value
        if args:
            record["args"] = args
        self.events.append(record)

    def to_json(self) -> str:
        return json.dumps(
            {"traceEvents": self.events, "displayTimeUnit": "ms"}, indent=1
        )

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    def __repr__(self) -> str:
        return f"<ChromeTraceExporter events={len(self.events)}>"


class SpanRecorder:
    """A :class:`Tracer` subscriber that captures events as JSON-able
    dicts with timestamps relative to its creation.

    The server subscribes one per traced request while it holds the
    engine lock, so the recording contains exactly that statement's
    events; the frames ship over the wire and the client replays them
    into its own tracer (:class:`Event` with an explicit ``ts``) to
    stitch one cross-process timeline.
    """

    __slots__ = ("events", "_origin")

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._origin = time.perf_counter()

    def __call__(self, event: Event) -> None:
        self.events.append(
            {
                "name": event.name,
                "kind": event.kind,
                "value": event.value,
                "depth": event.depth,
                "t": time.perf_counter() - self._origin,
                "data": {k: _jsonable(v) for k, v in event.data.items()},
            }
        )

    def elapsed(self) -> float:
        return time.perf_counter() - self._origin

    def __repr__(self) -> str:
        return f"<SpanRecorder events={len(self.events)}>"


def _jsonable(value):
    """Event payloads may carry live objects (metrics, terms); flatten them
    to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    as_dict = getattr(value, "as_dict", None)
    if as_dict is not None:
        try:
            return as_dict()
        except Exception:
            return repr(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


# ---------------------------------------------------------------------------
# Optimizer rule trace
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class FiredRule:
    """One accepted rewrite: the rule plus the term before and after (in
    abstract syntax), and which optimizer step it fired in."""

    rule: str
    step: str
    before: str
    after: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "step": self.step,
            "before": self.before,
            "after": self.after,
        }


class RuleTrace:
    """The optimizer's decision log for one optimization run.

    ``fired`` lists accepted rewrites in order; ``attempts`` maps each rule
    name to outcome counts over every place it was tried:

    ``no_match``
        the left-hand-side pattern did not match the node;
    ``conditions_failed``
        the pattern matched but no condition solution exists (the catalog
        lookup or type test came back empty);
    ``typecheck_failed``
        conditions held but every instantiated right-hand side failed the
        re-typecheck;
    ``fired``
        the rewrite was accepted.
    """

    __slots__ = ("fired", "attempts")

    def __init__(self) -> None:
        self.fired: list[FiredRule] = []
        self.attempts: dict[str, dict[str, int]] = {}

    def record_attempt(self, rule: str, outcome: str) -> None:
        per_rule = self.attempts.get(rule)
        if per_rule is None:
            per_rule = self.attempts[rule] = {}
        per_rule[outcome] = per_rule.get(outcome, 0) + 1

    def record_fired(self, rule: str, step: str, before: str, after: str) -> None:
        self.fired.append(FiredRule(rule, step, before, after))
        self.record_attempt(rule, "fired")

    def as_dict(self) -> dict:
        return {
            "fired": [f.as_dict() for f in self.fired],
            "attempts": {r: dict(o) for r, o in self.attempts.items()},
        }

    def __repr__(self) -> str:
        names = ", ".join(f.rule for f in self.fired) or "(none)"
        return f"<RuleTrace fired=[{names}]>"
