"""Structured execution observability: events, spans, and metrics.

Three cooperating pieces, all optional and all zero-overhead when off:

:class:`Tracer`
    a lightweight structured event bus.  Producers call :meth:`Tracer.emit`
    / :meth:`Tracer.span`; when nobody subscribed, both are a length check
    and an early return.  Subscriber exceptions are swallowed — a broken
    listener must never kill query execution.

:class:`ExecutionMetrics`
    per-statement counters: tuples produced/consumed per algebra operator,
    storage node/page accesses, TID fetches, plus the simulated-I/O delta.
    Collection is armed with :func:`collecting`; instrumented code guards
    each counter behind the module-level :data:`ENABLED` flag (same pattern
    as :func:`repro.testing.faults.fault_point` — a single global load and
    an early return when disabled).

:class:`RuleTrace`
    the optimizer's decision log: every fired rewrite with the term before
    and after, and per-rule attempt counts broken down by outcome
    (``no_match`` / ``conditions_failed`` / ``typecheck_failed`` /
    ``fired``) — the Gral-style rule trace [BeG92] that rule sets are
    debugged with.

The system front end (:mod:`repro.system`) wires these into every
statement; :func:`repro.api.connect` exposes them as the ``trace`` option
and ``explain(..., analyze=True)``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

ENABLED = False
"""True while an :class:`ExecutionMetrics` is armed (fast-path guard)."""

_ACTIVE: Optional["ExecutionMetrics"] = None


# ---------------------------------------------------------------------------
# Event bus
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Event:
    """One structured trace event.

    ``kind`` is ``begin`` / ``end`` for spans (``value`` of an ``end`` event
    is the span duration in seconds) or ``counter`` for point events.
    ``depth`` is the span-nesting depth at emission time.
    """

    name: str
    kind: str = "counter"
    value: float = 0.0
    data: dict = field(default_factory=dict)
    depth: int = 0


class Tracer:
    """A subscribable event bus with span support.

    ``emit``/``span`` cost a subscriber-list check when nobody listens, so a
    tracer can stay permanently attached to a system.  Subscribers are
    callables of one :class:`Event` argument; exceptions they raise are
    caught and counted, never propagated.
    """

    __slots__ = ("_subscribers", "_depth", "subscriber_errors")

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Event], None]] = []
        self._depth = 0
        self.subscriber_errors = 0

    @property
    def enabled(self) -> bool:
        return bool(self._subscribers)

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register a subscriber; returns it (usable as a decorator)."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def emit(
        self, name: str, kind: str = "counter", value: float = 0.0, **data
    ) -> None:
        if not self._subscribers:
            return
        event = Event(name, kind, value, data, self._depth)
        for fn in tuple(self._subscribers):
            try:
                fn(event)
            except Exception:
                self.subscriber_errors += 1

    @contextmanager
    def span(self, name: str, **data) -> Iterator[None]:
        """Emit ``begin``/``end`` events around a block; the ``end`` event
        carries the wall-clock duration."""
        if not self._subscribers:
            yield
            return
        self.emit(name, "begin", **data)
        self._depth += 1
        start = time.perf_counter()
        try:
            yield
        finally:
            self._depth -= 1
            self.emit(name, "end", value=time.perf_counter() - start, **data)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class ExecutionMetrics:
    """Counters collected over one statement (or any :func:`collecting`
    scope).

    ``operators`` maps an algebra operator name to its tuple flow:
    ``out`` tuples it produced, ``in`` tuples explicitly consumed (only
    operators with interesting input-side behavior report ``in``; for a
    pipeline, the consumption of an operator equals the production of its
    input).  ``counters`` holds storage-level counts
    (``btree.node_reads``, ``lsdtree.node_reads``, ``tidrel.fetches``, ...)
    and stream-internal ones (``hash_join.build_rows``, ``sort.rows``,
    ``search_join.probes``).  ``io`` is the simulated page-I/O delta of the
    statement, filled in by the system front end.
    """

    __slots__ = ("operators", "counters", "io")

    def __init__(self) -> None:
        self.operators: dict[str, dict[str, int]] = {}
        self.counters: dict[str, int] = {}
        self.io: dict[str, int] = {}

    # ---- hot-path recording (only reached while ENABLED)

    def op_slot(self, op: str) -> dict[str, int]:
        slot = self.operators.get(op)
        if slot is None:
            slot = self.operators[op] = {"in": 0, "out": 0}
        return slot

    def count_out(self, op: str, iterator) -> Iterator:
        """Wrap an operator's output iterator, counting produced tuples."""
        slot = self.op_slot(op)
        for item in iterator:
            slot["out"] += 1
            yield item

    def count_in(self, op: str, iterator) -> Iterator:
        """Wrap an operator's input iterator, counting consumed tuples."""
        slot = self.op_slot(op)
        for item in iterator:
            slot["in"] += 1
            yield item

    def incr(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    # ---- reporting

    def tuples_out(self, op: str) -> int:
        slot = self.operators.get(op)
        return slot["out"] if slot else 0

    def as_dict(self) -> dict:
        return {
            "operators": {op: dict(slot) for op, slot in self.operators.items()},
            "counters": dict(self.counters),
            "io": dict(self.io),
        }

    def __repr__(self) -> str:
        ops = ", ".join(
            f"{op}:{slot['out']}" for op, slot in sorted(self.operators.items())
        )
        return f"<ExecutionMetrics ops=[{ops}] counters={self.counters}>"


def active() -> Optional[ExecutionMetrics]:
    """The armed metrics sink, or None when collection is off."""
    return _ACTIVE


def incr(name: str, value: int = 1) -> None:
    """Bump a named counter on the active sink (no-op when disarmed).

    Hot call sites should guard with ``if observe.ENABLED:`` first so the
    disabled path is a module-attribute load, not a function call.
    """
    sink = _ACTIVE
    if sink is not None:
        sink.counters[name] = sink.counters.get(name, 0) + value


@contextmanager
def collecting(metrics: Optional[ExecutionMetrics] = None) -> Iterator[ExecutionMetrics]:
    """Arm ``metrics`` (a fresh sink by default) as the active collector.

    Nests: the previous sink is restored on exit, so a traced statement that
    internally runs another statement keeps its own counters.
    """
    global _ACTIVE, ENABLED
    sink = metrics if metrics is not None else ExecutionMetrics()
    previous = _ACTIVE
    _ACTIVE = sink
    ENABLED = True
    try:
        yield sink
    finally:
        _ACTIVE = previous
        ENABLED = previous is not None


# ---------------------------------------------------------------------------
# Optimizer rule trace
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class FiredRule:
    """One accepted rewrite: the rule plus the term before and after (in
    abstract syntax), and which optimizer step it fired in."""

    rule: str
    step: str
    before: str
    after: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "step": self.step,
            "before": self.before,
            "after": self.after,
        }


class RuleTrace:
    """The optimizer's decision log for one optimization run.

    ``fired`` lists accepted rewrites in order; ``attempts`` maps each rule
    name to outcome counts over every place it was tried:

    ``no_match``
        the left-hand-side pattern did not match the node;
    ``conditions_failed``
        the pattern matched but no condition solution exists (the catalog
        lookup or type test came back empty);
    ``typecheck_failed``
        conditions held but every instantiated right-hand side failed the
        re-typecheck;
    ``fired``
        the rewrite was accepted.
    """

    __slots__ = ("fired", "attempts")

    def __init__(self) -> None:
        self.fired: list[FiredRule] = []
        self.attempts: dict[str, dict[str, int]] = {}

    def record_attempt(self, rule: str, outcome: str) -> None:
        per_rule = self.attempts.get(rule)
        if per_rule is None:
            per_rule = self.attempts[rule] = {}
        per_rule[outcome] = per_rule.get(outcome, 0) + 1

    def record_fired(self, rule: str, step: str, before: str, after: str) -> None:
        self.fired.append(FiredRule(rule, step, before, after))
        self.record_attempt(rule, "fired")

    def as_dict(self) -> dict:
        return {
            "fired": [f.as_dict() for f in self.fired],
            "attempts": {r: dict(o) for r, o in self.attempts.items()},
        }

    def __repr__(self) -> str:
        names = ", ".join(f.rule for f in self.fired) or "(none)"
        return f"<RuleTrace fired=[{names}]>"
