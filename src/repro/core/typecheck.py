"""Type checking of terms against a second-order signature.

Checking an operator application means *matching* the operand types against
the spec's argument sorts under the quantifier bindings (Section 2.2 of the
paper): a quantifier ``rel: rel(tuple) in REL`` is satisfied by binding
``rel`` (and simultaneously ``tuple``) through a pattern match, followed by a
kind-membership check.  The result type is the instantiated result sort, or
— for type operators in Δ such as ``join`` — the value of the type-operator
function on the bindings and operand descriptors.

The checker is also the *elaborator* of the concrete syntax (Section 2.3):

* an expression in a function position (``select[age > 30]``) is implicitly
  abstracted over parameters whose types come from the application context,
  and free identifiers naming attributes of those parameters are rewritten
  into attribute accesses — exactly the "simplification recognized by the
  parser" the paper describes;
* ``fun`` parameters without declared types receive them from the expected
  function sort;
* polymorphic constants (``bottom``, ``top``) are resolved from the expected
  type of their operand position.

The checker returns a (possibly rewritten) term with ``type`` and
``resolved`` annotations filled in; the evaluator dispatches on those.
Overloaded operators are retried safely: each candidate spec works on a
clone of the operand terms, so a failed attempt leaves no partial
elaboration behind.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.operators import (
    OperatorSpec,
    Quantifier,
    ResolvedOp,
    TypeOperator,
)
from repro.core.patterns import Bindings, PVar, match_type
from repro.core.sorts import (
    AppSort,
    BindSort,
    FunSort,
    KindSort,
    ListSort,
    ProductSort,
    Sort,
    TypeSort,
    UnionSort,
    VarSort,
)
from repro.core.sos import SecondOrderSignature
from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    ObjRef,
    OpRef,
    Term,
    TupleTerm,
    Var,
    clone_term,
    format_term,
)
from repro.core.types import (
    FunType,
    ProductType,
    Sym,
    Type,
    TypeApp,
    attr_type,
    format_type,
)
from repro.errors import NoMatchingOperator, SpecificationError, TypeCheckError

DEFAULT_LITERAL_TYPES = {bool: "bool", int: "int", float: "real", str: "string"}

TypeEnv = dict[str, Type]


class _Failure(Exception):
    """Internal: one spec candidate failed to match (not a user error)."""


class TypeChecker:
    """Checks and elaborates terms against a second-order signature."""

    def __init__(
        self,
        sos: SecondOrderSignature,
        object_types: Optional[Callable[[str], Optional[Type]]] = None,
        literal_types: Optional[dict[type, str]] = None,
    ):
        self.sos = sos
        self.object_types = (
            object_types if object_types is not None else lambda name: None
        )
        self.literal_types = (
            dict(literal_types)
            if literal_types is not None
            else dict(DEFAULT_LITERAL_TYPES)
        )
        self._implicit_frames: list[list[tuple[str, Type]]] = []
        self._fresh = 0

    # ------------------------------------------------------------------ API

    def check(self, term: Term, env: Optional[TypeEnv] = None) -> Term:
        """Typecheck ``term``; returns the elaborated term with ``type`` set.

        Raises :class:`TypeCheckError` (or a subclass) on failure.
        """
        if env is None:
            env = {}
        return self._check(term, env)

    def type_of(self, term: Term, env: Optional[TypeEnv] = None) -> Type:
        checked = self.check(term, env)
        assert checked.type is not None
        return checked.type

    # ------------------------------------------------------------ dispatch

    def _check(self, term: Term, env: TypeEnv) -> Term:
        if isinstance(term, Literal):
            return self._check_literal(term)
        if isinstance(term, Var):
            return self._check_var(term, env)
        if isinstance(term, ObjRef):
            obj_type = self.object_types(term.name)
            if obj_type is None:
                raise TypeCheckError(f"unknown object: {term.name}")
            term.type = obj_type
            return term
        if isinstance(term, Fun):
            return self._check_fun(term, env, expected_params=None)
        if isinstance(term, Apply):
            return self._check_apply(term, env)
        if isinstance(term, Call):
            return self._check_call(term, env)
        if isinstance(term, TupleTerm):
            items = tuple(self._check(i, env) for i in term.items)
            term.items = items
            term.type = ProductType(tuple(i.type for i in items))  # type: ignore[arg-type]
            return term
        if isinstance(term, ListTerm):
            raise TypeCheckError(
                "a list term <...> is only meaningful as an operator operand"
            )
        if isinstance(term, OpRef):
            raise TypeCheckError(
                f"operator {term.name} used as a value in an unconstrained "
                "position; a function sort context is required"
            )
        raise TypeCheckError(f"cannot typecheck: {term!r}")

    def _check_literal(self, term: Literal) -> Literal:
        if term.type is not None:
            return term
        ctor = self.literal_types.get(type(term.value))
        if ctor is None or not self.sos.type_system.has_constructor(ctor):
            raise TypeCheckError(
                f"no type for literal {term.value!r} in this type system"
            )
        term.type = TypeApp(ctor)
        return term

    def _check_var(self, term: Var, env: TypeEnv) -> Term:
        if term.name in env:
            term.type = env[term.name]
            return term
        # Implicit-lambda elaboration: a free identifier naming an attribute
        # of an implicit parameter becomes an attribute access on it.
        for frame in reversed(self._implicit_frames):
            for pname, ptype in frame:
                dtype = attr_type(ptype, term.name)
                if dtype is not None:
                    access = Apply(term.name, (Var(pname, type=ptype),))
                    return self._check_apply(access, env)
        obj_type = self.object_types(term.name)
        if obj_type is not None:
            term.type = obj_type
            return term
        raise TypeCheckError(f"unknown identifier: {term.name}")

    # ----------------------------------------------------------- functions

    def _check_fun(
        self,
        term: Fun,
        env: TypeEnv,
        expected_params: Optional[tuple[Optional[Type], ...]],
    ) -> Fun:
        """Check a lambda.  ``expected_params`` supplies parameter types from
        the application context, if any."""
        params: list[tuple[str, Type]] = []
        if expected_params is not None:
            if len(expected_params) != len(term.params):
                raise TypeCheckError(
                    f"function takes {len(term.params)} parameter(s); "
                    f"{len(expected_params)} required"
                )
            pairs = zip(term.params, expected_params)
            for (name, declared), expected in pairs:
                if declared is not None and expected is not None and declared != expected:
                    raise TypeCheckError(
                        f"parameter {name} declared as {format_type(declared)}, "
                        f"required {format_type(expected)}"
                    )
                ptype = declared if declared is not None else expected
                if ptype is None:
                    raise TypeCheckError(f"cannot infer type of parameter {name}")
                params.append((name, ptype))
        else:
            for name, declared in term.params:
                if declared is None:
                    raise TypeCheckError(
                        f"parameter {name} needs a type annotation here"
                    )
                self.sos.type_system.check_type(declared)
                params.append((name, declared))
        inner = dict(env)
        inner.update(params)
        term.params = tuple(params)
        term.body = self._check(term.body, inner)
        body_type = term.body.type
        if body_type is None:
            raise TypeCheckError(
                f"function body has no type: {format_term(term.body)}"
            )
        term.type = FunType(tuple(t for _, t in params), body_type)
        return term

    def _check_call(self, term: Call, env: TypeEnv):
        """Application of a function value (views, parameterized views).

        A call whose head is a bare name that does not denote a function
        value falls back to operator/attribute application — this makes the
        abstract (prefix) syntax ``age(p)`` parseable everywhere, as the
        paper uses it in all formal definitions.
        """
        if isinstance(term.fn, Var):
            head = term.fn.name
            known_value = head in env or self.object_types(head) is not None
            if not known_value and (
                self.sos.is_operator(head) or self.sos.families
            ):
                return self._check_apply(Apply(head, term.args), env)
        term.fn = self._check(term.fn, env)
        fn_type = term.fn.type
        if getattr(fn_type, "wildcard", False):
            # Calling a lint wildcard: the arguments are checked on their
            # own; the result is again unconstrained.
            term.args = tuple(self._check(a, env) for a in term.args)
            term.type = fn_type
            return term
        if not isinstance(fn_type, FunType):
            raise TypeCheckError(
                f"{format_term(term.fn)} is not a function value "
                f"(type {format_type(fn_type) if fn_type else '?'})"
            )
        if len(term.args) != len(fn_type.args):
            raise TypeCheckError(
                f"function takes {len(fn_type.args)} argument(s), "
                f"got {len(term.args)}"
            )
        new_args = []
        for arg, expected in zip(term.args, fn_type.args):
            new_args.append(self.check_value_term(arg, expected, env))
        term.args = tuple(new_args)
        term.type = fn_type.result
        return term

    def check_value_term(
        self, term: Term, expected: Type, env: Optional[TypeEnv] = None
    ) -> Term:
        """Check a term against an *expected type* (update statements,
        function-call arguments).  Enables subtype coercion, polymorphic
        constant resolution (``empty``, ``bottom``) and view dereferencing,
        exactly like an operand position with sort ``expected``."""
        if env is None:
            env = {}
        dummy = OperatorSpec(
            name="<expected>",
            quantifiers=(),
            arg_sorts=(TypeSort(expected),),
            result=TypeSort(expected),
        )
        try:
            new_term, _ = self._match_term(term, TypeSort(expected), {}, env, dummy)
        except _Failure as exc:
            raise TypeCheckError(str(exc)) from None
        return new_term

    # --------------------------------------------------------- applications

    def _check_apply(self, term: Apply, env: TypeEnv) -> Apply:
        specs = self.sos.operators(term.op)
        failures: list[str] = []
        for spec in specs:
            attempt = Apply(term.op, tuple(clone_term(a) for a in term.args))
            try:
                return self._try_spec(attempt, spec, env)
            except _Failure as exc:
                failures.append(f"[{spec}]: {exc}")
            except TypeCheckError as exc:
                failures.append(f"[{spec}]: {exc}")
        resolved = self._try_families(term, env)
        if resolved is not None:
            return resolved
        if not specs:
            raise NoMatchingOperator(f"unknown operator: {term.op}")
        detail = "; ".join(failures)
        raise NoMatchingOperator(f"no functionality of {term.op} matches: {detail}")

    def _try_families(self, term: Apply, env: TypeEnv) -> Optional[Apply]:
        if len(term.args) != 1 or not self.sos.families:
            return None
        try:
            arg = self._check(clone_term(term.args[0]), env)
        except TypeCheckError:
            return None
        if arg.type is None:
            return None
        for family in self.sos.families:
            resolved = family.resolve(term.op, (arg.type,))
            if resolved is not None:
                term.args = (arg,)
                term.type = resolved.result_type
                term.resolved = resolved
                return term
        return None

    def _try_spec(self, term: Apply, spec: OperatorSpec, env: TypeEnv) -> Apply:
        if len(term.args) != len(spec.arg_sorts):
            raise _Failure(
                f"expects {len(spec.arg_sorts)} operand(s), got {len(term.args)}"
            )
        binds: Bindings = {}
        checked: list[Term] = []
        descriptors: list[object] = []
        for arg, sort in zip(term.args, spec.arg_sorts):
            new_arg, descriptor = self._match_term(arg, sort, binds, env, spec)
            checked.append(new_arg)
            descriptors.append(descriptor)
        if spec.post_check is not None:
            message = spec.post_check(
                self.sos.type_system, binds, tuple(descriptors)
            )
            if message is not None:
                raise _Failure(message)
        result_type = self._result_type(spec, binds, tuple(descriptors))
        term.args = tuple(checked)
        term.type = result_type
        term.resolved = ResolvedOp(
            result_type=result_type, spec=spec, bindings=binds, impl=spec.impl
        )
        return term

    def _result_type(
        self, spec: OperatorSpec, binds: Bindings, descriptors: tuple
    ) -> Type:
        if isinstance(spec.result, TypeOperator):
            try:
                result = spec.result.compute(
                    self.sos.type_system, binds, descriptors
                )
            except (TypeError, ValueError, KeyError) as exc:
                raise _Failure(f"type operator {spec.result.name} failed: {exc}")
            if not self.sos.type_system.has_kind(result, spec.result.result_kind):
                raise _Failure(
                    f"type operator {spec.result.name} produced "
                    f"{format_type(result)}, not of kind {spec.result.result_kind}"
                )
            return result
        resolved = self._resolve_sort(spec.result, binds)
        if resolved is None:
            raise SpecificationError(
                f"result sort of {spec.name} does not resolve to a type; "
                "a type operator is needed"
            )
        return resolved

    # ------------------------------------------------- term-vs-sort matching

    def _match_term(
        self,
        term: Term,
        sort: Sort,
        binds: Bindings,
        env: TypeEnv,
        spec: OperatorSpec,
    ) -> tuple[Term, object]:
        """Match one operand term against an argument sort.

        Returns ``(elaborated term, descriptor)`` where the descriptor is the
        operand's type, or a structural summary for identifier / list /
        product operands (consumed by type operators in Δ).  Raises
        :class:`_Failure` on mismatch.
        """
        if isinstance(sort, BindSort):
            new_term, descriptor = self._match_term(term, sort.sort, binds, env, spec)
            if isinstance(descriptor, Type):
                binds.setdefault(sort.name, descriptor)
            return new_term, descriptor
        if isinstance(sort, ListSort):
            if not isinstance(term, ListTerm):
                raise _Failure("expected a list operand <...>")
            if not term.items:
                raise _Failure("list operand must be non-empty")
            items = []
            descriptors = []
            for item in term.items:
                new_item, descriptor = self._match_term(
                    item, sort.element, binds, env, spec
                )
                items.append(new_item)
                descriptors.append(descriptor)
            term.items = tuple(items)
            return term, descriptors
        if isinstance(sort, ProductSort):
            if not isinstance(term, TupleTerm):
                raise _Failure("expected a product operand (...)")
            if len(term.items) != len(sort.parts):
                raise _Failure(
                    f"product operand has {len(term.items)} component(s), "
                    f"expected {len(sort.parts)}"
                )
            items = []
            descriptors = []
            for item, part in zip(term.items, sort.parts):
                new_item, descriptor = self._match_term(item, part, binds, env, spec)
                items.append(new_item)
                descriptors.append(descriptor)
            term.items = tuple(items)
            return term, tuple(descriptors)
        if isinstance(sort, UnionSort):
            errors = []
            for alternative in sort.alternatives:
                trial = dict(binds)
                try:
                    new_term, descriptor = self._match_term(
                        clone_term(term), alternative, trial, env, spec
                    )
                    binds.clear()
                    binds.update(trial)
                    return new_term, descriptor
                except (_Failure, TypeCheckError) as exc:
                    errors.append(str(exc))
            raise _Failure("no union alternative matched: " + "; ".join(errors))
        if isinstance(sort, FunSort):
            return self._match_function(term, sort, binds, env, spec)
        if self._is_ident_sort(sort):
            return self._match_ident(term)
        # Plain type-valued operand.
        try:
            checked = self._check(term, env)
        except TypeCheckError as first_error:
            constant = self._constant_op(term, sort, binds, spec)
            if constant is None:
                raise _Failure(str(first_error))
            checked = constant
        if checked.type is None:
            raise _Failure(f"operand {format_term(checked)} has no type")
        try:
            self._match_type(checked.type, sort, binds, spec)
        except _Failure:
            # A 0-ary function value (a view) may stand for its result:
            # ``query french_cities select[...]`` dereferences the view.
            if isinstance(checked.type, FunType) and not checked.type.args:
                call = Call(checked, ())
                call.type = checked.type.result
                self._match_type(call.type, sort, binds, spec)
                return call, call.type
            raise
        return checked, checked.type

    def _is_ident_sort(self, sort: Sort) -> bool:
        return (
            isinstance(sort, TypeSort)
            and isinstance(sort.type, TypeApp)
            and sort.type.constructor == "ident"
        )

    def _match_ident(self, term: Term) -> tuple[Term, object]:
        """An identifier-valued operand (attribute names in project/replace)."""
        if isinstance(term, Var):
            lit = Literal(Sym(term.name), type=TypeApp("ident"))
            return lit, Sym(term.name)
        if isinstance(term, Literal) and isinstance(term.value, Sym):
            term.type = TypeApp("ident")
            return term, term.value
        raise _Failure(f"expected an identifier, got {format_term(term)}")

    def _constant_op(
        self, term: Term, sort: Sort, binds: Bindings, spec: OperatorSpec
    ) -> Optional[Apply]:
        """Resolve a polymorphic constant (``bottom``, ``top``) from the
        expected type of its operand position."""
        if isinstance(term, Var):
            name = term.name
        elif isinstance(term, Apply) and not term.args:
            name = term.op
        else:
            return None
        expected = self._resolve_sort(sort, binds)
        if expected is None:
            return None
        for candidate in self.sos.operators(name):
            if candidate.arg_sorts:
                continue
            trial: Bindings = {}
            try:
                self._match_type(expected, candidate.result, trial, candidate)
            except _Failure:
                continue
            resolved = ResolvedOp(
                result_type=expected,
                spec=candidate,
                bindings=trial,
                impl=candidate.impl,
            )
            app = Apply(name, ())
            app.type = expected
            app.resolved = resolved
            return app
        return None

    def _match_function(
        self,
        term: Term,
        sort: FunSort,
        binds: Bindings,
        env: TypeEnv,
        spec: OperatorSpec,
    ) -> tuple[Term, object]:
        param_types = tuple(self._resolve_sort(p, binds) for p in sort.args)
        if isinstance(term, OpRef):
            result = self._resolve_sort(sort.result, binds)
            if result is None or any(p is None for p in param_types):
                raise _Failure(
                    f"cannot determine the functionality of operator value {term.name}"
                )
            term.type = FunType(tuple(param_types), result)  # type: ignore[arg-type]
            return term, term.type
        implicit = False
        if not isinstance(term, Fun):
            if any(p is None for p in param_types):
                raise _Failure(
                    "shorthand function bodies need fully determined parameter types"
                )
            params = tuple((self._fresh_name(), p) for p in param_types)
            term = Fun(params, term)
            implicit = True
        if implicit:
            self._implicit_frames.append([(n, t) for n, t in term.params])  # type: ignore[misc]
        try:
            fun = self._check_fun(term, env, expected_params=param_types)
        except TypeCheckError as exc:
            raise _Failure(str(exc)) from exc
        finally:
            if implicit:
                self._implicit_frames.pop()
        assert isinstance(fun.type, FunType)
        self._match_type(fun.type.result, sort.result, binds, spec)
        return fun, fun.type

    def _fresh_name(self) -> str:
        self._fresh += 1
        return f"_t{self._fresh}"

    # ------------------------------------------------- type-vs-sort matching

    def _match_type(
        self, t: Type, sort: Sort, binds: Bindings, spec: OperatorSpec
    ) -> None:
        """Match an operand *type* against a sort, possibly extending
        ``binds`` through quantifiers; tries supertypes on direct failure."""
        candidates = [t] + [
            sup for sup in self.sos.subtypes.supertypes(t) if sup != t
        ]
        errors: list[str] = []
        for candidate in candidates:
            trial = dict(binds)
            try:
                self._match_type_direct(candidate, sort, trial, spec)
                binds.clear()
                binds.update(trial)
                return
            except _Failure as exc:
                errors.append(str(exc))
        raise _Failure(errors[0] if errors else f"{format_type(t)} does not match")

    def _match_type_direct(
        self, t: Type, sort: Sort, binds: Bindings, spec: OperatorSpec
    ) -> None:
        if getattr(t, "wildcard", False):
            # A lint wildcard (repro.lint.symbolic.AnyType) matches every
            # sort; bind the names the sort would have bound so result
            # sorts still resolve during the symbolic check.
            self._bind_wildcard(t, sort, binds, spec)
            return
        if isinstance(sort, BindSort):
            self._match_type_direct(t, sort.sort, binds, spec)
            binds.setdefault(sort.name, t)
            return
        if isinstance(sort, VarSort):
            bound = binds.get(sort.name)
            if bound is not None:
                if bound != t:
                    raise _Failure(
                        f"operand type {format_type(t)} differs from earlier "
                        f"binding of {sort.name}"
                    )
                return
            quantifier = self._quantifier_for(sort.name, spec)
            if quantifier is None:
                raise _Failure(f"variable {sort.name} has no quantifier")
            self._bind_quantifier(quantifier, t, binds)
            return
        if isinstance(sort, KindSort):
            if not self.sos.type_system.has_kind(t, sort.kind):
                raise _Failure(f"{format_type(t)} is not of kind {sort.kind}")
            return
        if isinstance(sort, TypeSort):
            if t == sort.type or self.sos.subtypes.is_subtype(t, sort.type):
                return
            raise _Failure(
                f"expected {format_type(sort.type)}, got {format_type(t)}"
            )
        if isinstance(sort, FunSort):
            if not isinstance(t, FunType) or len(t.args) != len(sort.args):
                raise _Failure(f"expected a function type, got {format_type(t)}")
            for arg, part in zip(t.args, sort.args):
                self._match_type_direct(arg, part, binds, spec)
            self._match_type_direct(t.result, sort.result, binds, spec)
            return
        if isinstance(sort, ProductSort):
            if not isinstance(t, ProductType) or len(t.parts) != len(sort.parts):
                raise _Failure(f"expected a product type, got {format_type(t)}")
            for part_type, part_sort in zip(t.parts, sort.parts):
                self._match_type_direct(part_type, part_sort, binds, spec)
            return
        if isinstance(sort, UnionSort):
            errors = []
            for alternative in sort.alternatives:
                trial = dict(binds)
                try:
                    self._match_type_direct(t, alternative, trial, spec)
                    binds.clear()
                    binds.update(trial)
                    return
                except _Failure as exc:
                    errors.append(str(exc))
            raise _Failure("; ".join(errors))
        if isinstance(sort, AppSort):
            if not isinstance(t, TypeApp) or t.constructor != sort.constructor:
                raise _Failure(
                    f"expected a {sort.constructor}(...) type, got {format_type(t)}"
                )
            if len(t.args) != len(sort.args):
                raise _Failure(
                    f"{sort.constructor} arity mismatch in {format_type(t)}"
                )
            for arg, part in zip(t.args, sort.args):
                if isinstance(arg, Type):
                    self._match_type_direct(arg, part, binds, spec)
                elif isinstance(part, VarSort):
                    bound = binds.get(part.name)
                    if bound is None:
                        binds[part.name] = arg
                    elif bound != arg:
                        raise _Failure(
                            f"argument {arg!r} differs from earlier binding "
                            f"of {part.name}"
                        )
                else:
                    raise _Failure(
                        f"cannot match non-type argument {arg!r} against "
                        f"sort {part!r}"
                    )
            return
        raise _Failure(f"cannot match a type against sort {sort!r}")

    def _bind_wildcard(
        self, t: Type, sort: Sort, binds: Bindings, spec: OperatorSpec
    ) -> None:
        """Bind the names ``sort`` would bind when matched by a wildcard."""
        if isinstance(sort, BindSort):
            binds.setdefault(sort.name, t)
            self._bind_wildcard(t, sort.sort, binds, spec)
            return
        if isinstance(sort, VarSort):
            binds.setdefault(sort.name, t)
            quantifier = self._quantifier_for(sort.name, spec)
            if quantifier is not None and quantifier.pattern is not None:
                from repro.core.patterns import pattern_variables

                for name in pattern_variables(quantifier.pattern):
                    binds.setdefault(name, t)

    def _quantifier_for(self, name: str, spec: OperatorSpec) -> Optional[Quantifier]:
        for quantifier in spec.quantifiers:
            if quantifier.var == name:
                return quantifier
        return None

    def _bind_quantifier(
        self, quantifier: Quantifier, t: Type, binds: Bindings
    ) -> None:
        pattern = (
            quantifier.pattern
            if quantifier.pattern is not None
            else PVar(quantifier.var)
        )
        matched = match_type(pattern, t, binds)
        if matched is None:
            raise _Failure(
                f"{format_type(t)} does not match the pattern of "
                f"quantifier {quantifier.var}"
            )
        if not self.sos.type_system.has_kind(t, quantifier.kind):
            kind = (
                quantifier.kind.name
                if hasattr(quantifier.kind, "name")
                else str(quantifier.kind)
            )
            raise _Failure(f"{format_type(t)} is not of kind {kind}")
        binds.clear()
        binds.update(matched)
        binds[quantifier.var] = t

    # ----------------------------------------------------- sort resolution

    def _resolve_sort(self, sort: Sort, binds: Bindings) -> Optional[Type]:
        """Resolve a sort to a concrete type under current bindings, or
        ``None`` if it is not yet determined (e.g. an unbound variable)."""
        if isinstance(sort, TypeSort):
            return sort.type
        if isinstance(sort, VarSort):
            bound = binds.get(sort.name)
            return bound if isinstance(bound, Type) else None
        if isinstance(sort, BindSort):
            return self._resolve_sort(sort.sort, binds)
        if isinstance(sort, AppSort):
            args = []
            for part in sort.args:
                if isinstance(part, VarSort):
                    bound = binds.get(part.name)
                    if bound is None:
                        return None
                    args.append(bound)
                    continue
                resolved = self._resolve_sort(part, binds)
                if resolved is None:
                    return None
                args.append(resolved)
            return TypeApp(sort.constructor, tuple(args))
        if isinstance(sort, FunSort):
            args = tuple(self._resolve_sort(a, binds) for a in sort.args)
            result = self._resolve_sort(sort.result, binds)
            if result is None or any(a is None for a in args):
                return None
            return FunType(args, result)  # type: ignore[arg-type]
        if isinstance(sort, ProductSort):
            parts = tuple(self._resolve_sort(p, binds) for p in sort.parts)
            if any(p is None for p in parts):
                return None
            return ProductType(parts)  # type: ignore[arg-type]
        return None
