"""Second-order signature: the quintuple Σ = (K, Γ, T, Δ, Ω) (paper Def. 3.3).

:class:`SecondOrderSignature` bundles

* ``K`` and ``Γ`` — the kinds and type constructors, held by a
  :class:`~repro.core.signature.TypeSystem` (``T`` is the set of well-formed
  type terms it accepts);
* ``Δ`` — the type operators, reachable through the operator specs whose
  result is a :class:`~repro.core.operators.TypeOperator`;
* ``Ω`` — the operator specifications, plus operator *families* (attribute
  access) that denote infinitely many operators at once;
* the subtype relation of Section 4.

:class:`SignatureBuilder` is the ergonomic way to assemble one; the textual
specification parser (:mod:`repro.spec`) produces the same structures.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.core.kinds import Kind
from repro.core.operators import (
    AttributeFamily,
    OperatorSpec,
    Quantifier,
    SyntaxPattern,
    TypeOperator,
)
from repro.core.patterns import TypePattern
from repro.core.signature import TypeSystem
from repro.core.sorts import KindSort, Sort, UnionSort
from repro.core.subtypes import SubtypeRelation, SubtypeRule
from repro.core.constructors import ConstructorSpec, TypeConstructor
from repro.errors import SpecificationError


class SecondOrderSignature:
    """The coupled pair of signatures with subtyping."""

    def __init__(
        self,
        type_system: Optional[TypeSystem] = None,
        subtypes: Optional[SubtypeRelation] = None,
    ):
        self.type_system = type_system if type_system is not None else TypeSystem()
        self.subtypes = subtypes if subtypes is not None else SubtypeRelation()
        self._operators: dict[str, list[OperatorSpec]] = {}
        self._families: list[AttributeFamily] = []

    # -- operators -----------------------------------------------------------

    def add_operator(self, spec: OperatorSpec) -> OperatorSpec:
        self._validate_spec(spec)
        self._operators.setdefault(spec.name, []).append(spec)
        return spec

    def add_family(self, family: AttributeFamily) -> AttributeFamily:
        self._families.append(family)
        return family

    def _validate_spec(self, spec: OperatorSpec) -> None:
        for q in spec.quantifiers:
            kinds = (
                [a.kind for a in q.kind.alternatives if isinstance(a, KindSort)]
                if isinstance(q.kind, UnionSort)
                else [q.kind]
            )
            for kind in kinds:
                if not self.type_system.has_kind_named(kind.name):
                    raise SpecificationError(
                        f"operator {spec.name}: unknown kind {kind} in quantifier"
                    )

    def operators(self, name: str) -> list[OperatorSpec]:
        """All specs registered under ``name`` (may be empty)."""
        return list(self._operators.get(name, ()))

    def all_operators(self) -> Iterable[OperatorSpec]:
        for specs in self._operators.values():
            yield from specs

    @property
    def families(self) -> tuple[AttributeFamily, ...]:
        return tuple(self._families)

    def is_operator(self, name: str) -> bool:
        return name in self._operators

    def syntax_of(self, name: str) -> Optional[SyntaxPattern]:
        """The syntax pattern of ``name``.

        All specs sharing a name must agree on syntax; the first spec with an
        explicit pattern wins, prefix notation is the default.
        """
        for spec in self._operators.get(name, ()):
            if spec.syntax is not None:
                return spec.syntax
        return None

    def type_operators(self) -> list[TypeOperator]:
        """The Δ signature: every distinct type operator in use."""
        seen: list[TypeOperator] = []
        for spec in self.all_operators():
            if isinstance(spec.result, TypeOperator) and spec.result not in seen:
                seen.append(spec.result)
        return seen

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "SecondOrderSignature") -> "SecondOrderSignature":
        """A new signature combining this one with ``other``.

        This is how mixed model/representation type systems (paper Section 6)
        are assembled: constructors and operators of both levels coexist, and
        shared *hybrid* constructors (same name, same definition) unify.
        """
        merged = SecondOrderSignature()
        for source in (self, other):
            for kind in source.type_system.kinds:
                merged.type_system.add_kind(kind)
        for source in (self, other):
            for ctor in source.type_system.constructors:
                if merged.type_system.has_constructor(ctor.name):
                    same_arity = [
                        c
                        for c in merged.type_system.overloads(ctor.name)
                        if len(c.arg_sorts) == len(ctor.arg_sorts)
                    ]
                    if same_arity:
                        existing = same_arity[0]
                        if (
                            existing.arg_sorts != ctor.arg_sorts
                            or existing.result_kind != ctor.result_kind
                        ):
                            raise SpecificationError(
                                f"conflicting definitions of constructor {ctor.name}"
                            )
                        continue
                merged.type_system.add_constructor(ctor)
        for source in (self, other):
            for ctor_name, kinds in source.type_system._extra_kinds.items():
                for kind in kinds:
                    merged.type_system.add_kind_member(ctor_name, kind)
        for source in (self, other):
            for rule in source.subtypes.rules:
                merged.subtypes.add(rule)
            for specs in source._operators.values():
                for spec in specs:
                    merged._operators.setdefault(spec.name, []).append(spec)
            for family in source._families:
                if family not in merged._families:
                    merged._families.append(family)
        return merged


class SignatureBuilder:
    """Fluent construction of a :class:`SecondOrderSignature`.

    The builder mirrors the sections of a paper specification: ``kinds``,
    ``type constructors`` (with optional constructor specs), ``subtypes``
    and ``operators``.
    """

    def __init__(self, sos: Optional[SecondOrderSignature] = None):
        self.sos = sos if sos is not None else SecondOrderSignature()

    # -- kinds / constructors -------------------------------------------------

    def kind(self, name: str) -> Kind:
        return self.sos.type_system.add_kind(name)

    def kind_member(self, constructor: str, kind: Union[Kind, str]):
        """Record an additional kind membership (``int`` in ``ORD``)."""
        self.sos.type_system.add_kind_member(constructor, kind)
        return self

    def kinds(self, *names: str) -> tuple[Kind, ...]:
        return tuple(self.kind(n) for n in names)

    def constant_types(self, kind: Union[Kind, str], *names: str, level: str = "model"):
        """Declare 0-ary constructors, e.g. ``-> DATA  int, real, string``."""
        if isinstance(kind, str):
            kind = self.sos.type_system.kind(kind)
        for name in names:
            self.sos.type_system.add_constructor(
                TypeConstructor(name, (), kind, level=level)
            )
        return self

    def constructor(
        self,
        name: str,
        arg_sorts: Iterable[Sort],
        result_kind: Union[Kind, str],
        spec: Optional[ConstructorSpec] = None,
        level: str = "model",
        span: Optional[tuple[int, int]] = None,
    ) -> TypeConstructor:
        if isinstance(result_kind, str):
            result_kind = self.sos.type_system.kind(result_kind)
        ctor = TypeConstructor(name, tuple(arg_sorts), result_kind, spec, level, span)
        return self.sos.type_system.add_constructor(ctor)

    # -- subtypes ---------------------------------------------------------------

    def subtype(
        self,
        sub: TypePattern,
        sup: TypePattern,
        span: Optional[tuple[int, int]] = None,
    ) -> "SignatureBuilder":
        self.sos.subtypes.add(SubtypeRule(sub, sup, span))
        return self

    # -- operators ---------------------------------------------------------------

    def op(
        self,
        name: str,
        quantifiers: Iterable[Quantifier] = (),
        args: Iterable[Sort] = (),
        result: Union[Sort, TypeOperator, None] = None,
        syntax: Optional[str] = None,
        impl: Optional[Callable] = None,
        is_update: bool = False,
        level: str = "model",
        doc: str = "",
        eager: bool = False,
        post_check: Optional[Callable] = None,
        span: Optional[tuple[int, int]] = None,
    ) -> OperatorSpec:
        if result is None:
            raise SpecificationError(f"operator {name} needs a result sort")
        spec = OperatorSpec(
            name=name,
            quantifiers=tuple(quantifiers),
            arg_sorts=tuple(args),
            result=result,
            syntax=SyntaxPattern(syntax) if syntax is not None else None,
            is_update=is_update,
            level=level,
            doc=doc,
            impl=impl,
            eager=eager,
            post_check=post_check,
            span=span,
        )
        return self.sos.add_operator(spec)

    def attribute_family(self, constructors: Optional[Iterable[str]] = None):
        family = AttributeFamily(
            frozenset(constructors) if constructors is not None else None
        )
        return self.sos.add_family(family)

    def build(self) -> SecondOrderSignature:
        return self.sos
