"""Type constructors: the operators of the top-level signature.

A :class:`TypeConstructor` declares argument sorts (over kinds and types —
the (K ∪ T, K)-sorted signature Γ of Def. 3.3) and a result kind.  A
constructor with no arguments is a *constant type* (``int``, ``ident``).

A *constructor spec* (paper Section 4) is a dependent constraint relating the
arguments, e.g. the single-attribute B-tree requires its ``(attrname,
dtype)`` arguments to name an actual component of its tuple argument.  Specs
are represented as predicates plus a human-readable description, so error
messages can echo the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.kinds import Kind
from repro.core.sorts import Sort
from repro.core.types import TypeArg

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.signature import TypeSystem


@dataclass(frozen=True, slots=True)
class ConstructorSpec:
    """A dependent constraint on a constructor's arguments.

    ``check(type_system, args)`` returns an error message if the constraint
    is violated and ``None`` otherwise.
    """

    description: str
    check: Callable[["TypeSystem", Sequence[TypeArg]], str | None]


@dataclass(frozen=True, slots=True)
class TypeConstructor:
    """An operator of the top-level signature Γ.

    ``arg_sorts`` may mention kinds, concrete types, and — via
    :class:`~repro.core.sorts.BindSort` / :class:`~repro.core.sorts.VarSort`
    — variables bound by earlier argument positions, which is how the paper
    specifies the function-indexed B-tree and the LSD-tree.
    """

    name: str
    arg_sorts: tuple[Sort, ...]
    result_kind: Kind
    spec: ConstructorSpec | None = None
    level: str = "model"
    """Which level this constructor belongs to: ``model``, ``rep``, or
    ``hybrid`` (paper Section 6)."""
    span: tuple[int, int] | None = field(default=None, compare=False)
    """``(line, column)`` of the declaring spec line, when parsed from text;
    diagnostics anchor here."""

    @property
    def is_constant(self) -> bool:
        """True for 0-ary constructors, which denote constant types."""
        return not self.arg_sorts

    def __str__(self) -> str:
        from repro.core.sorts import format_sort

        if self.is_constant:
            return f"-> {self.result_kind.name}  {self.name}"
        args = " x ".join(format_sort(s) for s in self.arg_sorts)
        return f"{args} -> {self.result_kind.name}  {self.name}"
