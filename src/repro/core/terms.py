"""Value terms: the terms of the bottom-level signature (paper Defs. 3.1/3.2).

Terms denote values — including *function values* written in the typed
lambda notation ``fun (x1: s1, ..., xn: sn) t`` of Section 2.3.  The
constructors follow the extended term definition:

``Literal``      a constant of an atomic type
``ObjRef``       a named database object (created by a ``create`` statement)
``Var``          a lambda-bound variable
``Apply``        an operator application ``op(t1, ..., tn)``
``Fun``          a function abstraction
``ListTerm``     a list term ``<t1, ..., tn>`` (term of a list sort)
``TupleTerm``    a product term ``(t1, ..., tn)``
``OpRef``        an operator used as a function value (Def. 3.2 (v), last clause)

Terms are plain dataclasses; the ``type`` annotation field filled in by the
typechecker is excluded from structural equality so that two parses of the
same expression compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.core.types import Type, format_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.operators import ResolvedOp


@dataclass(eq=True, slots=True)
class Literal:
    value: object
    type: Optional[Type] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class ObjRef:
    name: str
    type: Optional[Type] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class Var:
    name: str
    type: Optional[Type] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class Apply:
    op: str
    args: tuple["Term", ...]
    type: Optional[Type] = field(default=None, compare=False)
    resolved: Optional["ResolvedOp"] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class Fun:
    """A typed lambda abstraction ``fun (x1: t1, ..., xn: tn) body``.

    Parameter types may be ``None`` before elaboration (the concrete-syntax
    shorthand ``select[age > 30]``); the typechecker fills them in from the
    application context, as the paper's parser does.
    """

    params: tuple[tuple[str, Optional[Type]], ...]
    body: "Term"
    type: Optional[Type] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class ListTerm:
    items: tuple["Term", ...]
    type: Optional[Type] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class TupleTerm:
    items: tuple["Term", ...]
    type: Optional[Type] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class OpRef:
    """An operator name used as a value of a function sort."""

    name: str
    type: Optional[Type] = field(default=None, compare=False)


@dataclass(eq=True, slots=True)
class Call:
    """Application of a function *value* (not an operator): ``fn(a1, ..., an)``.

    This is how views are used — ``cities_in("Germany")`` calls the function
    value stored in the object ``cities_in`` (paper Section 2.4).
    """

    fn: "Term"
    args: tuple["Term", ...]
    type: Optional[Type] = field(default=None, compare=False)


Term = Union[Literal, ObjRef, Var, Apply, Fun, ListTerm, TupleTerm, OpRef, Call]


def format_term(t: Term) -> str:
    """Render a term in the paper's *abstract* syntax (prefix notation)."""
    if isinstance(t, Literal):
        if isinstance(t.value, str):
            return f'"{t.value}"'
        if isinstance(t.value, bool):
            return "true" if t.value else "false"
        return str(t.value)
    if isinstance(t, ObjRef):
        return t.name
    if isinstance(t, Var):
        return t.name
    if isinstance(t, Apply):
        return t.op + "(" + ", ".join(format_term(a) for a in t.args) + ")"
    if isinstance(t, Fun):
        params = ", ".join(
            name if ptype is None else f"{name}: {format_type(ptype)}"
            for name, ptype in t.params
        )
        return f"fun ({params}) {format_term(t.body)}"
    if isinstance(t, ListTerm):
        return "<" + ", ".join(format_term(i) for i in t.items) + ">"
    if isinstance(t, TupleTerm):
        return "(" + ", ".join(format_term(i) for i in t.items) + ")"
    if isinstance(t, OpRef):
        return t.name
    if isinstance(t, Call):
        return format_term(t.fn) + "(" + ", ".join(format_term(a) for a in t.args) + ")"
    raise TypeError(f"not a term: {t!r}")


def same_term(a: Term, b: Term) -> bool:
    """Structural equality of terms, modulo alpha-renaming of lambdas."""
    return _same(a, b, {})


def _same(a: Term, b: Term, rename: dict[str, str]) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Literal):
        return a.value == b.value and type(a.value) is type(b.value)
    if isinstance(a, ObjRef):
        return a.name == b.name
    if isinstance(a, Var):
        return rename.get(a.name, a.name) == b.name
    if isinstance(a, Apply):
        return (
            a.op == b.op
            and len(a.args) == len(b.args)
            and all(_same(x, y, rename) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, Fun):
        if len(a.params) != len(b.params):
            return False
        for (_, ta), (_, tb) in zip(a.params, b.params):
            if ta is not None and tb is not None and ta != tb:
                return False
        inner = dict(rename)
        for (na, _), (nb, _) in zip(a.params, b.params):
            inner[na] = nb
        return _same(a.body, b.body, inner)
    if isinstance(a, (ListTerm, TupleTerm)):
        return len(a.items) == len(b.items) and all(
            _same(x, y, rename) for x, y in zip(a.items, b.items)
        )
    if isinstance(a, OpRef):
        return a.name == b.name
    if isinstance(a, Call):
        return (
            _same(a.fn, b.fn, rename)
            and len(a.args) == len(b.args)
            and all(_same(x, y, rename) for x, y in zip(a.args, b.args))
        )
    return False


def term_fingerprint(t: Term, rename: dict[str, int] | None = None) -> tuple:
    """A hashable, alpha-invariant fingerprint of a term."""
    if rename is None:
        rename = {}
    if isinstance(t, Literal):
        return ("lit", type(t.value).__name__, t.value)
    if isinstance(t, ObjRef):
        return ("obj", t.name)
    if isinstance(t, Var):
        bound = rename.get(t.name)
        return ("bvar", bound) if bound is not None else ("fvar", t.name)
    if isinstance(t, Apply):
        return ("app", t.op) + tuple(term_fingerprint(a, rename) for a in t.args)
    if isinstance(t, Fun):
        inner = dict(rename)
        for i, (name, _) in enumerate(t.params):
            inner[name] = len(rename) + i
        return ("fun", len(t.params), term_fingerprint(t.body, inner))
    if isinstance(t, ListTerm):
        return ("list",) + tuple(term_fingerprint(i, rename) for i in t.items)
    if isinstance(t, TupleTerm):
        return ("tuple",) + tuple(term_fingerprint(i, rename) for i in t.items)
    if isinstance(t, OpRef):
        return ("opref", t.name)
    if isinstance(t, Call):
        return ("call", term_fingerprint(t.fn, rename)) + tuple(
            term_fingerprint(a, rename) for a in t.args
        )
    raise TypeError(f"not a term: {t!r}")


def free_variables(t: Term, bound: frozenset[str] = frozenset()) -> set[str]:
    """The free :class:`Var` names of a term."""
    if isinstance(t, Var):
        return set() if t.name in bound else {t.name}
    if isinstance(t, Apply):
        out: set[str] = set()
        for a in t.args:
            out |= free_variables(a, bound)
        return out
    if isinstance(t, Fun):
        inner = bound | {name for name, _ in t.params}
        return free_variables(t.body, inner)
    if isinstance(t, (ListTerm, TupleTerm)):
        out = set()
        for i in t.items:
            out |= free_variables(i, bound)
        return out
    if isinstance(t, Call):
        out = free_variables(t.fn, bound)
        for a in t.args:
            out |= free_variables(a, bound)
        return out
    return set()


def substitute_term(t: Term, mapping: dict[str, Term]) -> Term:
    """Substitute free variables by terms.

    Lambda parameters shadow outer substitutions.  The substituted terms are
    assumed not to capture the lambda parameters they are placed under (the
    optimizer guarantees this by construction: pattern variables and lambda
    parameters live in disjoint namespaces within a rule).
    """
    if isinstance(t, Var):
        replacement = mapping.get(t.name)
        return replacement if replacement is not None else t
    if isinstance(t, Apply):
        return Apply(t.op, tuple(substitute_term(a, mapping) for a in t.args))
    if isinstance(t, Fun):
        shadowed = {k: v for k, v in mapping.items() if k not in {n for n, _ in t.params}}
        return Fun(t.params, substitute_term(t.body, shadowed))
    if isinstance(t, ListTerm):
        return ListTerm(tuple(substitute_term(i, mapping) for i in t.items))
    if isinstance(t, TupleTerm):
        return TupleTerm(tuple(substitute_term(i, mapping) for i in t.items))
    if isinstance(t, Call):
        return Call(
            substitute_term(t.fn, mapping),
            tuple(substitute_term(a, mapping) for a in t.args),
        )
    return t


def clone_term(t: Term) -> Term:
    """A structural deep copy without typechecking annotations.

    The typechecker elaborates terms in place; when several functionalities
    of an overloaded operator are tried in turn, each attempt works on a
    fresh clone so a failed attempt cannot leak partial elaboration.
    """
    if isinstance(t, Literal):
        return Literal(t.value, type=t.type)
    if isinstance(t, ObjRef):
        return ObjRef(t.name)
    if isinstance(t, Var):
        return Var(t.name)
    if isinstance(t, Apply):
        return Apply(t.op, tuple(clone_term(a) for a in t.args))
    if isinstance(t, Fun):
        return Fun(tuple(t.params), clone_term(t.body))
    if isinstance(t, ListTerm):
        return ListTerm(tuple(clone_term(i) for i in t.items))
    if isinstance(t, TupleTerm):
        return TupleTerm(tuple(clone_term(i) for i in t.items))
    if isinstance(t, OpRef):
        return OpRef(t.name)
    if isinstance(t, Call):
        return Call(clone_term(t.fn), tuple(clone_term(a) for a in t.args))
    raise TypeError(f"not a term: {t!r}")


def walk_terms(t: Term) -> Iterable[Term]:
    """Yield ``t`` and every subterm, pre-order."""
    yield t
    if isinstance(t, Apply):
        for a in t.args:
            yield from walk_terms(a)
    elif isinstance(t, Fun):
        yield from walk_terms(t.body)
    elif isinstance(t, (ListTerm, TupleTerm)):
        for i in t.items:
            yield from walk_terms(i)
    elif isinstance(t, Call):
        yield from walk_terms(t.fn)
        for a in t.args:
            yield from walk_terms(a)
