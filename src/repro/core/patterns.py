"""Type patterns: term trees with variables (paper Section 3, Figure 1).

A pattern is a type term tree in which some subtrees have been cut off and
replaced by variables, and in which internal nodes may additionally be
labeled by variables.  The paper's Figure 1 example::

    stream: stream ( tuple: tuple ( list ) )

is ``PBind("stream", PApp("stream", (PBind("tuple", PApp("tuple",
(PVar("list"),))),)))`` and matching it against the type
``stream(tuple(<(name, string), (age, int)>))`` binds all three variables.

Patterns match not only types but any :data:`~repro.core.types.TypeArg`
(identifier values, literals, lists, products, embedded terms), because type
constructors take all of those as arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.types import (
    ArgList,
    ArgTuple,
    FunType,
    Lit,
    ProductType,
    Sym,
    Type,
    TypeApp,
    TypeArg,
)

Bindings = dict[str, TypeArg]


@dataclass(frozen=True, slots=True)
class PVar:
    """Matches anything; binds it to ``name``."""

    name: str


@dataclass(frozen=True, slots=True)
class PBind:
    """``name: pattern`` — binds the whole matched argument to ``name`` and
    continues matching ``pattern`` against it."""

    name: str
    pattern: "TypePattern"


@dataclass(frozen=True, slots=True)
class PApp:
    """Matches a constructor application with the given argument patterns."""

    constructor: str
    args: tuple["TypePattern", ...] = ()


@dataclass(frozen=True, slots=True)
class PList:
    """Matches an :class:`ArgList` whose every item matches ``element``."""

    element: "TypePattern"


@dataclass(frozen=True, slots=True)
class PTuple:
    """Matches an :class:`ArgTuple` (or :class:`ProductType`) componentwise."""

    items: tuple["TypePattern", ...]


@dataclass(frozen=True, slots=True)
class PLit:
    """Matches a specific literal value."""

    value: object


@dataclass(frozen=True, slots=True)
class PSym:
    """Matches a specific identifier."""

    name: str


@dataclass(frozen=True, slots=True)
class PFun:
    """Matches a :class:`FunType` with the given parameter/result patterns."""

    args: tuple["TypePattern", ...]
    result: "TypePattern"


@dataclass(frozen=True, slots=True)
class PAny:
    """Matches anything without binding."""


TypePattern = Union[PVar, PBind, PApp, PList, PTuple, PLit, PSym, PFun, PAny]


def match_type(
    pattern: TypePattern, arg: TypeArg, bindings: Optional[Bindings] = None
) -> Optional[Bindings]:
    """Match ``pattern`` against a type argument.

    Returns the extended bindings on success and ``None`` on failure.  A
    variable that is already bound only matches an equal argument (non-linear
    patterns, as used by ``union: rel+ -> rel``).
    The input ``bindings`` dict is never mutated.
    """
    if bindings is None:
        bindings = {}
    out = _match(pattern, arg, dict(bindings))
    return out


def _match(pattern: TypePattern, arg: TypeArg, bindings: Bindings) -> Optional[Bindings]:
    if isinstance(pattern, PAny):
        return bindings
    if isinstance(pattern, PVar):
        bound = bindings.get(pattern.name)
        if bound is None:
            bindings[pattern.name] = arg
            return bindings
        return bindings if bound == arg else None
    if isinstance(pattern, PBind):
        bound = bindings.get(pattern.name)
        if bound is not None and bound != arg:
            return None
        bindings[pattern.name] = arg
        return _match(pattern.pattern, arg, bindings)
    if isinstance(pattern, PApp):
        if not isinstance(arg, TypeApp):
            return None
        if arg.constructor != pattern.constructor:
            return None
        if len(arg.args) != len(pattern.args):
            return None
        for sub, item in zip(pattern.args, arg.args):
            if _match(sub, item, bindings) is None:
                return None
        return bindings
    if isinstance(pattern, PList):
        if not isinstance(arg, ArgList):
            return None
        for item in arg.items:
            if _match(pattern.element, item, bindings) is None:
                return None
        return bindings
    if isinstance(pattern, PTuple):
        if isinstance(arg, ArgTuple):
            items: tuple[TypeArg, ...] = arg.items
        elif isinstance(arg, ProductType):
            items = arg.parts
        else:
            return None
        if len(items) != len(pattern.items):
            return None
        for sub, item in zip(pattern.items, items):
            if _match(sub, item, bindings) is None:
                return None
        return bindings
    if isinstance(pattern, PLit):
        if isinstance(arg, Lit) and arg.value == pattern.value:
            return bindings
        return None
    if isinstance(pattern, PSym):
        if isinstance(arg, Sym) and arg.name == pattern.name:
            return bindings
        return None
    if isinstance(pattern, PFun):
        if not isinstance(arg, FunType):
            return None
        if len(arg.args) != len(pattern.args):
            return None
        for sub, item in zip(pattern.args, arg.args):
            if _match(sub, item, bindings) is None:
                return None
        return _match(pattern.result, arg.result, bindings)
    raise TypeError(f"not a type pattern: {pattern!r}")


def instantiate_pattern(pattern: TypePattern, bindings: Bindings) -> TypeArg:
    """Build a type argument from a pattern under complete bindings.

    The inverse of matching: every variable in ``pattern`` must be bound.
    Used to construct the supertype side of subtype rules and result types.
    """
    if isinstance(pattern, PVar):
        try:
            return bindings[pattern.name]
        except KeyError:
            raise KeyError(f"unbound pattern variable: {pattern.name}") from None
    if isinstance(pattern, PBind):
        bound = bindings.get(pattern.name)
        if bound is not None:
            return bound
        return instantiate_pattern(pattern.pattern, bindings)
    if isinstance(pattern, PApp):
        return TypeApp(
            pattern.constructor,
            tuple(instantiate_pattern(a, bindings) for a in pattern.args),
        )
    if isinstance(pattern, PTuple):
        return ArgTuple(tuple(instantiate_pattern(i, bindings) for i in pattern.items))
    if isinstance(pattern, PLit):
        return Lit(pattern.value)
    if isinstance(pattern, PSym):
        return Sym(pattern.name)
    if isinstance(pattern, PFun):
        args = tuple(instantiate_pattern(a, bindings) for a in pattern.args)
        result = instantiate_pattern(pattern.result, bindings)
        if not all(isinstance(a, Type) for a in args) or not isinstance(result, Type):
            raise TypeError("function pattern instantiated to non-types")
        return FunType(args, result)  # type: ignore[arg-type]
    raise TypeError(f"cannot instantiate pattern: {pattern!r}")


def pattern_variables(pattern: TypePattern) -> set[str]:
    """All variable names a pattern can bind."""
    if isinstance(pattern, PVar):
        return {pattern.name}
    if isinstance(pattern, PBind):
        return {pattern.name} | pattern_variables(pattern.pattern)
    if isinstance(pattern, PApp):
        out: set[str] = set()
        for sub in pattern.args:
            out |= pattern_variables(sub)
        return out
    if isinstance(pattern, PList):
        return pattern_variables(pattern.element)
    if isinstance(pattern, (PTuple,)):
        out = set()
        for sub in pattern.items:
            out |= pattern_variables(sub)
        return out
    if isinstance(pattern, PFun):
        out = set()
        for sub in pattern.args:
            out |= pattern_variables(sub)
        return out | pattern_variables(pattern.result)
    return set()
