"""Operator specifications (paper Section 2.2).

An :class:`OperatorSpec` describes a (usually polymorphic) operator of the
bottom-level signature Ω by

* *quantifiers* over kinds, each binding one primary variable and possibly
  more via a type pattern — ``rel: rel(tuple) in REL`` binds ``rel`` and
  ``tuple`` simultaneously;
* *argument sorts* over the quantified variables and concrete types;
* a *result*: either a sort to be instantiated under the match bindings, or
  a :class:`TypeOperator` — an element of the Δ signature whose function
  computes the result type (the paper's ``join`` result, ``rel: REL``);
* an optional *syntax pattern* (Section 2.3) giving the operator its
  concrete syntax, e.g. ``_ #[ _ ]`` for ``select``;
* an *update* flag marking update functions (Section 6).

Attribute access (``tuple x -> dtype  attrname``) defines one operator per
attribute of every tuple type — infinitely many.  Such families are
represented by :class:`AttributeFamily`, which resolves operator names
against the structure of the first operand's type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.core.kinds import Kind
from repro.core.patterns import Bindings, TypePattern
from repro.core.sorts import Sort, UnionSort, format_sort
from repro.core.types import Type, attr_type, attrs_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.signature import TypeSystem


@dataclass(frozen=True, slots=True)
class Quantifier:
    """``var [: pattern] in kind`` — quantification over the types of a kind.

    ``kind`` may be a union of kinds (``DATA | REL`` in the nested relational
    model).  ``pattern`` defaults to just binding ``var`` to the whole type.
    """

    var: str
    kind: Union[Kind, UnionSort]
    pattern: Optional[TypePattern] = None

    def __str__(self) -> str:
        kind = self.kind.name if isinstance(self.kind, Kind) else format_sort(self.kind)
        if self.pattern is None:
            return f"forall {self.var} in {kind}"
        return f"forall {self.var}: <pattern> in {kind}"


class SyntaxPattern:
    """A concrete-syntax pattern such as ``_ #[ _ ]`` (paper Section 2.3).

    ``_`` marks an operand, ``#`` the operator name.  Operands before ``#``
    are written prefix-of-the-operator (postfix application); operands after
    ``#`` come in plain, bracketed ``[...]`` or parenthesized ``(...)``
    groups.  Parsed patterns drive the model-independent expression parser.
    """

    __slots__ = ("text", "pre", "groups")

    def __init__(self, text: str):
        self.text = text
        self.pre, self.groups = _parse_syntax_pattern(text)

    @property
    def arity(self) -> int:
        """Total number of operands the pattern mentions."""
        return self.pre + sum(n for _, n in self.groups)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SyntaxPattern) and other.text == self.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"SyntaxPattern({self.text!r})"


def _parse_syntax_pattern(text: str) -> tuple[int, tuple[tuple[str, int], ...]]:
    """Parse a pattern string into (operands before #, groups after #)."""
    stripped = text.strip()
    # Outer parentheses that wrap the entire pattern are decoration:
    # "( _ # _ )" is the infix comparison pattern of the paper.
    if stripped.startswith("(") and stripped.endswith(")") and "#" in stripped:
        inner = stripped[1:-1]
        if inner.count("(") == inner.count(")"):
            stripped = inner.strip()
    tokens = _tokenize_pattern(stripped)
    pre = 0
    i = 0
    while i < len(tokens) and tokens[i] == "_":
        pre += 1
        i += 1
    if i >= len(tokens) or tokens[i] != "#":
        raise ValueError(f"malformed syntax pattern (no #): {text!r}")
    i += 1
    groups: list[tuple[str, int]] = []
    while i < len(tokens):
        tok = tokens[i]
        if tok == "_":
            groups.append(("plain", 1))
            i += 1
        elif tok in "([":
            close = ")" if tok == "(" else "]"
            style = "paren" if tok == "(" else "bracket"
            i += 1
            count = 0
            expect_operand = True
            while i < len(tokens) and tokens[i] != close:
                if tokens[i] == "_":
                    if not expect_operand:
                        raise ValueError(f"malformed syntax pattern: {text!r}")
                    count += 1
                    expect_operand = False
                elif tokens[i] == ",":
                    expect_operand = True
                else:
                    raise ValueError(f"malformed syntax pattern: {text!r}")
                i += 1
            if i >= len(tokens):
                raise ValueError(f"unclosed group in syntax pattern: {text!r}")
            i += 1
            groups.append((style, count))
        else:
            raise ValueError(f"unexpected token {tok!r} in syntax pattern: {text!r}")
    return pre, tuple(groups)


def _tokenize_pattern(text: str) -> list[str]:
    tokens = []
    for ch in text:
        if ch.isspace():
            continue
        if ch in "_#[](),":
            tokens.append(ch)
        else:
            raise ValueError(f"bad character {ch!r} in syntax pattern {text!r}")
    return tokens


PREFIX = SyntaxPattern("# ( _ )")
"""Default syntax: prefix notation (the abstract syntax)."""

INFIX = SyntaxPattern("( _ # _ )")
POSTFIX_1 = SyntaxPattern("_ #")
POSTFIX_2 = SyntaxPattern("_ _ #")
POSTFIX_BRACKET_1 = SyntaxPattern("_ #[ _ ]")


@dataclass(frozen=True, slots=True)
class TypeOperator:
    """An element of the Δ signature (paper Section 2.2, "type operators").

    ``compute(type_system, bindings, arg_types)`` maps the operand types of
    an application to its result type; how it does so is part of the algebra
    (e.g. ``join`` concatenates the two tuple types).
    """

    name: str
    result_kind: Kind
    compute: Callable[["TypeSystem", Bindings, tuple[Type, ...]], Type]

    def __str__(self) -> str:
        return f"{self.name}: ... -> {self.result_kind.name}"


@dataclass(eq=False, slots=True)
class OperatorSpec:
    """One specification of a (polymorphic) operator.

    Several specs may share a ``name`` (overloading across models or levels);
    the typechecker tries them in registration order.  ``impl`` is the
    algebra function giving the operator its semantics; keeping it on the
    spec is a practical shortcut for "the algebra is provided by
    implementation" — :class:`~repro.core.algebra.SecondOrderAlgebra`
    collects these.
    """

    name: str
    quantifiers: tuple[Quantifier, ...]
    arg_sorts: tuple[Sort, ...]
    result: Union[Sort, TypeOperator]
    syntax: Optional[SyntaxPattern] = None
    is_update: bool = False
    level: str = "model"
    doc: str = ""
    impl: Optional[Callable] = field(default=None, compare=False)
    eager: bool = False
    """If true, stream-valued operands are fully consumed before the call
    (used by operators whose semantics require materialized input)."""
    post_check: Optional[Callable] = field(default=None, compare=False)
    """A dependent constraint checked after all operands matched:
    ``post_check(type_system, bindings, descriptors)`` returns an error
    message or ``None``.  This expresses second-level quantifications like
    ``forall (attrname, dtype) in list`` relating an identifier operand to
    the attribute list of a tuple type (``modify``, ``replace``)."""
    span: Optional[tuple[int, int]] = field(default=None, compare=False)
    """``(line, column)`` of the declaring spec line, when parsed from text
    (:mod:`repro.spec.parser`); diagnostics anchor here."""

    def __str__(self) -> str:
        args = " x ".join(format_sort(s) for s in self.arg_sorts)
        result = (
            f"{self.result.name}: {self.result.result_kind.name}"
            if isinstance(self.result, TypeOperator)
            else format_sort(self.result)
        )
        arrow = "~>" if self.is_update else "->"
        return f"{args} {arrow} {result}  {self.name}"


@dataclass(eq=False, slots=True)
class ResolvedOp:
    """The outcome of typechecking one operator application.

    Records which spec (or attribute family) matched, the quantifier
    bindings, and the computed result type; the evaluator dispatches on it.
    """

    result_type: Type
    spec: Optional[OperatorSpec] = None
    bindings: Bindings = field(default_factory=dict)
    attr_name: Optional[str] = None
    attr_index: Optional[int] = None
    impl: Optional[Callable] = None

    @property
    def is_attribute(self) -> bool:
        return self.attr_name is not None

    @property
    def is_update(self) -> bool:
        return self.spec is not None and self.spec.is_update


class AttributeFamily:
    """The attribute-access operator family of Section 2.2::

        forall tuple: tuple(list) in TUPLE. forall (attrname, dtype) in list.
            tuple -> dtype   attrname

    One instance serves *every* tuple-shaped type (any constructor whose
    single argument is a list of ``(ident, type)`` pairs), across models —
    exactly the paper's second-level quantification over the attribute list.
    """

    syntax = SyntaxPattern("_ #")

    def __init__(self, constructors: Optional[frozenset[str]] = None):
        self.constructors = constructors
        """Restrict to these tuple constructors; ``None`` accepts any
        tuple-shaped type."""

    def resolve(self, name: str, arg_types: tuple[Type, ...]) -> Optional[ResolvedOp]:
        """Resolve ``name`` as attribute access on the single operand type."""
        if len(arg_types) != 1:
            return None
        tup = arg_types[0]
        if self.constructors is not None:
            from repro.core.types import TypeApp

            if not isinstance(tup, TypeApp) or tup.constructor not in self.constructors:
                return None
        dtype = attr_type(tup, name)
        if dtype is None:
            return None
        index = next(i for i, (a, _) in enumerate(attrs_of(tup)) if a == name)
        return ResolvedOp(
            result_type=dtype,
            attr_name=name,
            attr_index=index,
            impl=_attribute_access(index),
        )


def _attribute_access(index: int) -> Callable:
    def access(ctx, tup):
        return tup.values[index]

    access.__name__ = f"attr_{index}"
    return access
