"""Second-order algebra: values and evaluation (paper Def. 3.4).

A second-order algebra supplies a carrier set for every type, a function for
every type operator, and a function for every operator.  Here:

* carriers are Python values validated by per-constructor predicates
  (:meth:`SecondOrderAlgebra.check_value`);
* type-operator functions live on the
  :class:`~repro.core.operators.TypeOperator` objects in Δ;
* operator functions are the ``impl`` callables of the operator specs,
  invoked by the :class:`Evaluator`.

The module also defines the generic value classes shared by all models:
:class:`TupleValue`, :class:`Relation`, :class:`Stream` and function values
(:class:`Closure`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic as _monotonic
from typing import Callable, Iterable, Iterator, Optional

from repro.core.operators import ResolvedOp
from repro.core.sos import SecondOrderSignature
from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    ObjRef,
    OpRef,
    Term,
    TupleTerm,
    Var,
)
from repro.core.types import (
    FunType,
    ProductType,
    Type,
    TypeApp,
    attrs_of,
    format_type,
)
from repro.errors import (
    ExecutionError,
    ResourceLimitError,
    StatementTimeoutError,
    UpdateError,
)
from repro.testing.faults import fault_point
from repro import observe


class TupleValue:
    """A tuple value: a schema (its tuple type) plus the component values."""

    __slots__ = ("schema", "values", "_index")

    def __init__(self, schema: Type, values: tuple):
        self.schema = schema
        self.values = tuple(values)
        self._index: Optional[dict[str, int]] = None

    def _attr_index(self) -> dict[str, int]:
        if self._index is None:
            self._index = {
                name: i for i, (name, _) in enumerate(attrs_of(self.schema))
            }
        return self._index

    def attr(self, name: str):
        """The value of attribute ``name``."""
        try:
            return self.values[self._attr_index()[name]]
        except KeyError:
            raise ExecutionError(f"tuple has no attribute {name}") from None

    def with_attr(self, name: str, value) -> "TupleValue":
        """A copy with attribute ``name`` replaced (the ``replace`` op)."""
        index = self._attr_index()[name]
        values = list(self.values)
        values[index] = value
        return TupleValue(self.schema, tuple(values))

    def concat(self, other: "TupleValue", schema: Type) -> "TupleValue":
        """Concatenation with another tuple under a given result schema."""
        return TupleValue(schema, self.values + other.values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TupleValue)
            and other.schema == self.schema
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}: {value!r}"
            for (name, _), value in zip(attrs_of(self.schema), self.values)
        )
        return f"({pairs})"


class Relation:
    """A relation value: a multiset of tuples of one tuple type."""

    __slots__ = ("type", "rows")

    def __init__(self, rel_type: Type, rows: Optional[Iterable[TupleValue]] = None):
        self.type = rel_type
        self.rows: list[TupleValue] = list(rows) if rows is not None else []

    @property
    def tuple_type(self) -> Type:
        assert isinstance(self.type, TypeApp)
        arg = self.type.args[0]
        assert isinstance(arg, Type)
        return arg

    def insert(self, row: TupleValue) -> None:
        self.rows.append(row)

    def clone(self) -> "Relation":
        """A snapshot copy (tuples are immutable and shared)."""
        return Relation(self.type, self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[TupleValue]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation) or other.type != self.type:
            return NotImplemented if not isinstance(other, Relation) else False
        return sorted(map(repr, self.rows)) == sorted(map(repr, other.rows))

    def __repr__(self) -> str:
        return f"Relation[{format_type(self.type)}]({len(self.rows)} rows)"


class Stream:
    """A pipelined stream of tuples (kind STREAM of Section 4).

    Streams are one-shot: iterating consumes them, which models the paper's
    assumption that the execution engine processes stream operator sequences
    in a pipelined fashion.  Operators that need the input repeatedly must
    ``collect`` it first.
    """

    __slots__ = ("tuple_type", "_iterator", "_consumed")

    def __init__(self, tuple_type: Type, iterator: Iterable[TupleValue]):
        self.tuple_type = tuple_type
        self._iterator = iter(iterator)
        self._consumed = False

    def __iter__(self) -> Iterator[TupleValue]:
        if self._consumed:
            raise ExecutionError("stream already consumed; collect it first")
        self._consumed = True
        return self._iterator

    def materialize(self) -> list[TupleValue]:
        return list(self)

    def __repr__(self) -> str:
        return f"Stream[{format_type(self.tuple_type)}]"


class Closure:
    """A function value: a lambda abstraction closed over an environment."""

    __slots__ = ("fun", "env", "evaluator")

    def __init__(self, fun: Fun, env: dict, evaluator: "Evaluator"):
        self.fun = fun
        self.env = env
        self.evaluator = evaluator

    @property
    def param_types(self) -> tuple[Optional[Type], ...]:
        return tuple(ptype for _, ptype in self.fun.params)

    def __call__(self, *args):
        if len(args) != len(self.fun.params):
            raise ExecutionError(
                f"function expects {len(self.fun.params)} argument(s), got {len(args)}"
            )
        env = dict(self.env)
        for (name, _), value in zip(self.fun.params, args):
            env[name] = value
        return self.evaluator.eval(self.fun.body, env)

    def __repr__(self) -> str:
        from repro.core.terms import format_term

        return f"<fun {format_term(self.fun)}>"


CarrierCheck = Callable[["SecondOrderAlgebra", object, Type], bool]


class SecondOrderAlgebra:
    """Carriers and functions for a second-order signature.

    Operator functions are taken from the specs' ``impl`` attributes (set by
    the model modules); carrier membership is checked through predicates
    registered per type constructor.
    """

    def __init__(self, sos: SecondOrderSignature):
        self.sos = sos
        self._carriers: dict[str, CarrierCheck] = {}

    def register_carrier(self, constructor: str, check: CarrierCheck) -> None:
        self._carriers[constructor] = check

    def check_value(self, value: object, t: Type) -> bool:
        """Does ``value`` inhabit the carrier of type ``t``?"""
        if isinstance(t, FunType):
            return callable(value)
        if isinstance(t, ProductType):
            return (
                isinstance(value, tuple)
                and len(value) == len(t.parts)
                and all(self.check_value(v, p) for v, p in zip(value, t.parts))
            )
        if isinstance(t, TypeApp):
            check = self._carriers.get(t.constructor)
            if check is None:
                return True  # unconstrained carrier
            return check(self, value, t)
        return False

    def require_value(self, value: object, t: Type) -> None:
        if not self.check_value(value, t):
            raise ExecutionError(
                f"value {value!r} does not inhabit type {format_type(t)}"
            )


@dataclass(slots=True)
class OpContext:
    """Passed to every operator implementation as its first argument."""

    evaluator: "Evaluator"
    algebra: SecondOrderAlgebra
    resolved: ResolvedOp
    term: Optional[Apply] = None

    @property
    def result_type(self) -> Type:
        return self.resolved.result_type

    @property
    def bindings(self):
        return self.resolved.bindings

    def binding_type(self, name: str) -> Type:
        """A type bound by the spec's quantifiers during typechecking."""
        bound = self.resolved.bindings[name]
        if not isinstance(bound, Type):
            raise ExecutionError(f"binding {name} is not a type: {bound!r}")
        return bound


@dataclass(slots=True)
class ResourceLimits:
    """Guards on evaluation: a budget of evaluation steps (term nodes
    visited, closure bodies included) and a recursion-depth bound.

    Either bound may be ``None`` (unbounded).  Exceeding a bound raises
    :class:`~repro.errors.ResourceLimitError`, so a pathological query
    degrades to a clean per-statement error instead of hanging or blowing
    the Python stack.

    ``deadline`` is a wall-clock cancellation point (a
    ``time.monotonic()`` instant): evaluation past it raises
    :class:`~repro.errors.StatementTimeoutError`.  The server arms it per
    statement from ``--statement-timeout-ms``; the clock is only read
    every :data:`DEADLINE_CHECK_STEPS` evaluation steps so an unarmed or
    rarely-firing deadline costs a bit test per step, not a syscall.
    """

    max_steps: Optional[int] = None
    max_depth: Optional[int] = None
    deadline: Optional[float] = None


DEADLINE_CHECK_STEPS = 64
"""Evaluation steps between deadline clock reads (a power of two)."""


class Evaluator:
    """Evaluates typechecked terms against an algebra.

    ``resolver`` maps object names (:class:`ObjRef`) to their current values
    — typically :meth:`repro.catalog.database.Database.value_of`.

    ``limits`` (a :class:`ResourceLimits`) arms the resource guard; the
    step/depth counters are reset per statement via :meth:`begin_statement`.
    """

    def __init__(
        self,
        algebra: SecondOrderAlgebra,
        resolver: Optional[Callable[[str], object]] = None,
        limits: Optional[ResourceLimits] = None,
    ):
        self.algebra = algebra
        self.resolver = resolver
        self.limits = limits
        self._steps = 0
        self._depth = 0

    def begin_statement(self) -> None:
        """Reset the resource-guard counters (called once per statement)."""
        self._steps = 0
        self._depth = 0

    def eval(self, term: Term, env: Optional[dict] = None, allow_update: bool = False):
        """Evaluate a term.  ``allow_update`` permits an update function at
        the *root* only (the interpreter's update statement)."""
        limits = self.limits
        if limits is None:
            return self._eval(term, env, allow_update)
        self._steps += 1
        if limits.max_steps is not None and self._steps > limits.max_steps:
            raise ResourceLimitError(
                f"evaluation exceeded the step budget of {limits.max_steps}"
            )
        if (
            limits.deadline is not None
            and self._steps % DEADLINE_CHECK_STEPS == 1
            and _monotonic() > limits.deadline
        ):
            raise StatementTimeoutError(
                "statement cancelled: evaluation ran past its deadline"
            )
        self._depth += 1
        try:
            if limits.max_depth is not None and self._depth > limits.max_depth:
                raise ResourceLimitError(
                    f"evaluation exceeded the recursion-depth limit of "
                    f"{limits.max_depth}"
                )
            return self._eval(term, env, allow_update)
        finally:
            self._depth -= 1

    def _eval(self, term: Term, env: Optional[dict], allow_update: bool):
        if env is None:
            env = {}
        if isinstance(term, Literal):
            return term.value
        if isinstance(term, Var):
            if term.name in env:
                return env[term.name]
            # Bare identifiers that survived typechecking as object
            # references are resolved like ObjRef.
            if self.resolver is not None:
                value = self.resolver(term.name)
                if value is None:
                    raise ExecutionError(
                        f"object {term.name} is undefined or unknown"
                    )
                return value
            raise ExecutionError(f"unbound variable: {term.name}")
        if isinstance(term, ObjRef):
            if self.resolver is None:
                raise ExecutionError(
                    f"no object resolver; cannot evaluate object {term.name}"
                )
            return self.resolver(term.name)
        if isinstance(term, Fun):
            return Closure(term, dict(env), self)
        if isinstance(term, ListTerm):
            return [self.eval(item, env) for item in term.items]
        if isinstance(term, TupleTerm):
            return tuple(self.eval(item, env) for item in term.items)
        if isinstance(term, OpRef):
            return self._op_value(term)
        if isinstance(term, Apply):
            return self._apply(term, env, allow_update)
        if isinstance(term, Call):
            fn = self.eval(term.fn, env)
            if not callable(fn):
                raise ExecutionError(f"value {fn!r} is not callable")
            return fn(*(self.eval(a, env) for a in term.args))
        raise ExecutionError(f"cannot evaluate: {term!r}")

    def _apply(self, term: Apply, env: dict, allow_update: bool):
        resolved = term.resolved
        if resolved is None:
            raise ExecutionError(
                f"term was not typechecked: {term.op}(...) has no resolved operator"
            )
        if resolved.is_update and not allow_update:
            raise UpdateError(
                f"update function {term.op} applied outside an update statement"
            )
        impl = resolved.impl if resolved.impl is not None else (
            resolved.spec.impl if resolved.spec is not None else None
        )
        if impl is None:
            raise ExecutionError(f"operator {term.op} has no implementation")
        fault_point("evaluator.apply")
        args = [self.eval(a, env) for a in term.args]
        if resolved.spec is not None and resolved.spec.eager:
            args = [
                a.materialize() if isinstance(a, Stream) else a for a in args
            ]
        ctx = OpContext(self, self.algebra, resolved, term)
        try:
            result = impl(ctx, *args)
        except TypeError as exc:
            # Polymorphic constants (``bottom``/``top`` unify with any
            # ordered domain) can deliver a value a Python impl cannot
            # operate on; surface that as a clean statement error instead
            # of a raw TypeError escaping the evaluator.
            raise ExecutionError(
                f"operator {term.op} cannot be applied to "
                f"{', '.join(repr(a) for a in args) or 'no arguments'}: {exc}"
            ) from exc
        if observe.ENABLED and isinstance(result, Stream):
            # Operator-level tuple accounting: the stream an operator
            # returns is wrapped so every tuple it produces is counted
            # under the operator's name (zero-overhead when collection is
            # off — the guard above is a module-attribute load).
            sink = observe.active()
            if sink is not None:
                result = Stream(
                    result.tuple_type, sink.count_out(term.op, iter(result))
                )
        return result

    def _op_value(self, term: OpRef):
        """An operator used as a function value.

        Resolution happened at typecheck time only for applications; for a
        bare operator value we require a unique spec of that name.
        """
        specs = self.algebra.sos.operators(term.name)
        if len(specs) != 1 or specs[0].impl is None:
            raise ExecutionError(
                f"operator {term.name} cannot be used as a value "
                "(ambiguous or unimplemented)"
            )
        spec = specs[0]

        def call(*args):
            result_type = term.type.result if isinstance(term.type, FunType) else None
            resolved = ResolvedOp(result_type=result_type, spec=spec, impl=spec.impl)
            ctx = OpContext(self, self.algebra, resolved, None)
            return spec.impl(ctx, *args)

        return call
