"""Type terms: the terms of the top-level signature (paper Def. 3.3 (iii)).

A *type* is a term built from type constructors.  Because constructors may
take not only types but also *values* as arguments (``string(4)``,
``btree(city, pop, int)``, ``lsdtree(state, fun (s: state) bbox(s region))``),
the argument positions of a :class:`TypeApp` accept a small algebra of
*type arguments*:

``Type``
    a nested type, e.g. the tuple type inside ``rel(tuple(...))``;
``Sym``
    an identifier value (type ``ident``), e.g. attribute names;
``Lit``
    a literal value of an atomic type, e.g. the ``4`` in ``string(4)``;
``ArgList``
    a list term ``<a1, ..., an>`` (a term of a list sort ``s+``);
``ArgTuple``
    a product term ``(a1, ..., an)`` (a term of a product sort);
``TermArg``
    an embedded value term, used for function-valued constructor arguments
    such as the key function of a function-indexed B-tree or LSD-tree.

Besides constructor applications the extended signature of Def. 3.2 yields
function types (``FunType``) and product types (``ProductType``); these occur
as the types of views (``( -> city_rel)``) and parameterized views
(``(string -> city_rel)``) in Section 2.4 of the paper.

All type terms are immutable and structurally comparable/hashable, which the
optimizer's pattern matcher and the typechecker rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.terms import Term


class Type:
    """Abstract base class of all type terms."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden, kept for safety
        return format_type(self)


@dataclass(frozen=True, slots=True)
class Sym:
    """An identifier value — a term of the constant type ``ident``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Lit:
    """A literal value argument of a type constructor, e.g. ``string(4)``."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class ArgList:
    """A list term ``<a1, ..., an>`` used as a constructor argument."""

    items: tuple["TypeArg", ...]

    def __str__(self) -> str:
        return "<" + ", ".join(_format_arg(a) for a in self.items) + ">"

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True, slots=True)
class ArgTuple:
    """A product term ``(a1, ..., an)`` used as a constructor argument."""

    items: tuple["TypeArg", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(_format_arg(a) for a in self.items) + ")"

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


class TermArg:
    """A value term embedded as a constructor argument.

    Equality and hashing are structural over the embedded term, so two
    B-tree types indexed by syntactically identical key functions are the
    same type.
    """

    __slots__ = ("term",)

    def __init__(self, term: "Term"):
        self.term = term

    def __eq__(self, other: object) -> bool:
        from repro.core.terms import same_term

        return isinstance(other, TermArg) and same_term(self.term, other.term)

    def __hash__(self) -> int:
        from repro.core.terms import term_fingerprint

        return hash(term_fingerprint(self.term))

    def __repr__(self) -> str:
        return f"TermArg({self.term!r})"

    def __str__(self) -> str:
        from repro.core.terms import format_term

        return format_term(self.term)


TypeArg = Union[Type, Sym, Lit, ArgList, ArgTuple, TermArg]


@dataclass(frozen=True, slots=True)
class TypeApp(Type):
    """A type constructor application; with no arguments, a constant type.

    ``TypeApp("int")`` is the constant type ``int``;
    ``TypeApp("rel", (city_tuple,))`` is a relation type.
    """

    constructor: str
    args: tuple[TypeArg, ...] = ()

    def __str__(self) -> str:
        return format_type(self)


@dataclass(frozen=True, slots=True)
class FunType(Type):
    """A function type ``(t1 x ... x tn -> t)`` (Def. 3.2 (v))."""

    args: tuple[Type, ...]
    result: Type

    def __str__(self) -> str:
        return format_type(self)


@dataclass(frozen=True, slots=True)
class ProductType(Type):
    """A product type ``(t1 x ... x tn)`` (Def. 3.2 (ii))."""

    parts: tuple[Type, ...]

    def __str__(self) -> str:
        return format_type(self)


def _format_arg(arg: TypeArg) -> str:
    if isinstance(arg, Type):
        return format_type(arg)
    return str(arg)


def format_type(t: Type) -> str:
    """Render a type term in the paper's concrete notation."""
    if getattr(t, "wildcard", False):
        return "?"
    if isinstance(t, TypeApp):
        if not t.args:
            return t.constructor
        return t.constructor + "(" + ", ".join(_format_arg(a) for a in t.args) + ")"
    if isinstance(t, FunType):
        args = " x ".join(format_type(a) for a in t.args)
        arrow = f"{args} -> " if t.args else "-> "
        return f"({arrow}{format_type(t.result)})"
    if isinstance(t, ProductType):
        return "(" + " x ".join(format_type(p) for p in t.parts) + ")"
    raise TypeError(f"not a type: {t!r}")


# ---------------------------------------------------------------------------
# Convenience builders for the ubiquitous tuple / rel shapes
# ---------------------------------------------------------------------------


def tuple_type(attrs: Iterable[tuple[str, Type]], constructor: str = "tuple") -> TypeApp:
    """Build ``tuple(<(a1, t1), ..., (an, tn)>)`` from (name, type) pairs."""
    items = tuple(ArgTuple((Sym(name), t)) for name, t in attrs)
    return TypeApp(constructor, (ArgList(items),))


def rel_type(tup: Type, constructor: str = "rel") -> TypeApp:
    """Build ``rel(tuple_type)``."""
    return TypeApp(constructor, (tup,))


def attrs_of(tup: Type) -> tuple[tuple[str, Type], ...]:
    """Extract the (name, type) attribute pairs of a tuple-shaped type.

    Works for any constructor whose single argument is an ``ArgList`` of
    ``(Sym, Type)`` pairs (``tuple`` in all of the paper's models).
    Raises :class:`TypeError` if the type has no such shape.
    """
    if (
        isinstance(tup, TypeApp)
        and len(tup.args) == 1
        and isinstance(tup.args[0], ArgList)
    ):
        pairs = []
        for item in tup.args[0].items:
            if (
                isinstance(item, ArgTuple)
                and len(item.items) == 2
                and isinstance(item.items[0], Sym)
                and isinstance(item.items[1], Type)
            ):
                pairs.append((item.items[0].name, item.items[1]))
            else:
                raise TypeError(f"not an attribute list entry: {item!r}")
        return tuple(pairs)
    raise TypeError(f"not a tuple-shaped type: {format_type(tup)}")


def attr_type(tup: Type, name: str) -> Type | None:
    """The type of attribute ``name`` in a tuple-shaped type, or ``None``."""
    try:
        pairs = attrs_of(tup)
    except TypeError:
        return None
    for attr, t in pairs:
        if attr == name:
            return t
    return None


def concat_tuple_types(left: Type, right: Type) -> TypeApp:
    """Concatenate two tuple types — the semantics of the ``join`` type
    operator (paper Section 2.2).

    Raises :class:`ValueError` on duplicate attribute names, mirroring the
    relational requirement that a join result schema is well formed.
    """
    left_attrs = attrs_of(left)
    right_attrs = attrs_of(right)
    seen = {name for name, _ in left_attrs}
    for name, _ in right_attrs:
        if name in seen:
            raise ValueError(f"duplicate attribute in join result: {name}")
    constructor = left.constructor if isinstance(left, TypeApp) else "tuple"
    return tuple_type(left_attrs + right_attrs, constructor=constructor)


def walk_type(t: TypeArg) -> Iterable[TypeArg]:
    """Yield ``t`` and all nested type arguments, pre-order."""
    yield t
    if isinstance(t, TypeApp):
        for a in t.args:
            yield from walk_type(a)
    elif isinstance(t, (ArgList, ArgTuple)):
        for a in t.items:
            yield from walk_type(a)
    elif isinstance(t, FunType):
        for a in t.args:
            yield from walk_type(a)
        yield from walk_type(t.result)
    elif isinstance(t, ProductType):
        for p in t.parts:
            yield from walk_type(p)
