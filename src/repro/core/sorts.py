"""Extended sorts (paper Def. 3.2).

Given a base set of sorts, the *extended* sort set closes it under products
``(s1 x ... x sn)``, unions ``(s1 | ... | sn)``, lists ``s+`` and function
sorts ``(s1 x ... x sn -> s)``.

Sorts occur in two places:

* in type-constructor signatures, where the leaves are kinds
  (:class:`KindSort`), concrete types (:class:`TypeSort`) or — for dependent
  constructor signatures such as the function-indexed B-tree — variables
  bound by earlier argument positions (:class:`BindSort` / :class:`VarSort`);
* in operator specifications, where the leaves are concrete types and the
  variables bound by the spec's quantifiers.

The same classes serve both uses; what a :class:`VarSort` may be bound to is
determined by the surrounding signature or operator spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.kinds import Kind
from repro.core.types import Type, format_type


class SortBase:
    """Abstract base class of all sorts."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return format_sort(self)


@dataclass(frozen=True, slots=True)
class KindSort(SortBase):
    """A kind used as a sort — any type of that kind matches."""

    kind: Kind


@dataclass(frozen=True, slots=True)
class TypeSort(SortBase):
    """A concrete type used as a sort — matches exactly that type
    (or a subtype of it, where a subtype relation is in force)."""

    type: Type


@dataclass(frozen=True, slots=True)
class VarSort(SortBase):
    """A reference to a variable bound by a quantifier or an earlier
    :class:`BindSort` argument position."""

    name: str


@dataclass(frozen=True, slots=True)
class BindSort(SortBase):
    """Binds the matched argument to ``name`` while matching ``sort``.

    Used in dependent constructor signatures, e.g. the function-indexed
    B-tree ``tuple x (tuple -> ord: ORD) -> BTREE`` binds the first argument
    to ``tuple`` so the function sort can refer to it.
    """

    name: str
    sort: "Sort"


@dataclass(frozen=True, slots=True)
class AppSort(SortBase):
    """A constructor application over sorts, e.g. ``stream(tuple)`` where
    ``tuple`` is a quantified variable.

    Used mostly as a *result* sort — ``feed``'s result ``stream(tuple)``
    instantiates to a concrete stream type once ``tuple`` is bound."""

    constructor: str
    args: tuple["Sort", ...]


@dataclass(frozen=True, slots=True)
class ProductSort(SortBase):
    """A product sort ``(s1 x ... x sn)``."""

    parts: tuple["Sort", ...]


@dataclass(frozen=True, slots=True)
class UnionSort(SortBase):
    """A union sort ``(s1 | ... | sn)`` — matches if any alternative does."""

    alternatives: tuple["Sort", ...]


@dataclass(frozen=True, slots=True)
class ListSort(SortBase):
    """A list sort ``s+`` — one or more arguments of sort ``s``."""

    element: "Sort"


@dataclass(frozen=True, slots=True)
class FunSort(SortBase):
    """A function sort ``(s1 x ... x sn -> s)``."""

    args: tuple["Sort", ...]
    result: "Sort"


Sort = Union[
    KindSort,
    TypeSort,
    VarSort,
    BindSort,
    AppSort,
    ProductSort,
    UnionSort,
    ListSort,
    FunSort,
]


def format_sort(s: Sort) -> str:
    """Render a sort in the paper's notation (ASCII arrows and ``x``)."""
    if isinstance(s, KindSort):
        return s.kind.name
    if isinstance(s, TypeSort):
        return format_type(s.type)
    if isinstance(s, VarSort):
        return s.name
    if isinstance(s, BindSort):
        return f"{s.name}: {format_sort(s.sort)}"
    if isinstance(s, AppSort):
        return s.constructor + "(" + ", ".join(format_sort(a) for a in s.args) + ")"
    if isinstance(s, ProductSort):
        return "(" + " x ".join(format_sort(p) for p in s.parts) + ")"
    if isinstance(s, UnionSort):
        return "(" + " | ".join(format_sort(a) for a in s.alternatives) + ")"
    if isinstance(s, ListSort):
        return format_sort(s.element) + "+"
    if isinstance(s, FunSort):
        args = " x ".join(format_sort(a) for a in s.args)
        arrow = f"{args} -> " if s.args else "-> "
        return f"({arrow}{format_sort(s.result)})"
    raise TypeError(f"not a sort: {s!r}")


def sort_variables(s: Sort) -> set[str]:
    """All variable names referenced or bound inside a sort."""
    if isinstance(s, VarSort):
        return {s.name}
    if isinstance(s, BindSort):
        return {s.name} | sort_variables(s.sort)
    if isinstance(s, AppSort):
        out: set[str] = set()
        for a in s.args:
            out |= sort_variables(a)
        return out
    if isinstance(s, ProductSort):
        out: set[str] = set()
        for p in s.parts:
            out |= sort_variables(p)
        return out
    if isinstance(s, UnionSort):
        out = set()
        for a in s.alternatives:
            out |= sort_variables(a)
        return out
    if isinstance(s, ListSort):
        return sort_variables(s.element)
    if isinstance(s, FunSort):
        out = set()
        for a in s.args:
            out |= sort_variables(a)
        out |= sort_variables(s.result)
        return out
    return set()
