"""The top-level signature: a type system (paper Sections 2.1 and 3).

A :class:`TypeSystem` is the (K ∪ T, K)-sorted signature Γ of a second-order
signature: a set of kinds plus the type constructors over them.  It provides

* *well-formedness checking* of type terms (:meth:`TypeSystem.check_type`),
  including dependent constructor specs,
* *kind assignment* (:meth:`TypeSystem.kind_of`),
* enumeration of the constant types of a kind, which is how specification
  quantifiers like ``forall data in DATA`` over finite kinds are resolved.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constructors import TypeConstructor
from repro.core.kinds import Kind
from repro.core.sorts import (
    AppSort,
    BindSort,
    FunSort,
    KindSort,
    ListSort,
    ProductSort,
    Sort,
    TypeSort,
    UnionSort,
    VarSort,
)
from repro.core.types import (
    ArgList,
    ArgTuple,
    FunType,
    Lit,
    ProductType,
    Sym,
    TermArg,
    Type,
    TypeApp,
    TypeArg,
    format_type,
)
from repro.errors import KindError, SpecificationError, TypeFormationError


class TypeSystem:
    """Kinds plus type constructors; validates and classifies type terms."""

    def __init__(self) -> None:
        self._kinds: dict[str, Kind] = {}
        # Constructors may be overloaded by arity — the paper gives two
        # alternative B-tree constructors; both can coexist.  All overloads
        # of a name must share the result kind.
        self._constructors: dict[str, list[TypeConstructor]] = {}
        self._extra_kinds: dict[str, set[Kind]] = {}
        self.term_typer = None
        """Optional hook ``(fun_term, expected_param_types) -> None`` used to
        typecheck function-valued constructor arguments (the key functions of
        B-trees and LSD-trees).  Set by the system once the bottom-level
        signature exists; types are then fully checked at formation time."""

    # -- construction -------------------------------------------------------

    def add_kind(self, kind: Kind | str) -> Kind:
        """Register a kind; returns the canonical :class:`Kind` object."""
        if isinstance(kind, str):
            kind = Kind(kind)
        existing = self._kinds.get(kind.name)
        if existing is not None:
            return existing
        self._kinds[kind.name] = kind
        return kind

    def add_constructor(self, ctor: TypeConstructor) -> TypeConstructor:
        """Register a type constructor.  Its kinds must already exist.

        Overloads by arity are allowed (the two B-tree constructor variants
        of Section 4); overloads must agree on the result kind, otherwise
        the kind of a type would be ambiguous.
        """
        overloads = self._constructors.get(ctor.name, [])
        for existing in overloads:
            if len(existing.arg_sorts) == len(ctor.arg_sorts):
                raise SpecificationError(
                    f"duplicate type constructor: {ctor.name} with "
                    f"{len(ctor.arg_sorts)} argument(s)"
                )
            if existing.result_kind != ctor.result_kind:
                raise SpecificationError(
                    f"constructor {ctor.name} overloads disagree on result kind"
                )
        if ctor.result_kind.name not in self._kinds:
            raise KindError(f"unknown result kind {ctor.result_kind} for {ctor.name}")
        for sort in ctor.arg_sorts:
            self._check_sort_kinds(sort, ctor.name)
        self._constructors.setdefault(ctor.name, []).append(ctor)
        return ctor

    def _check_sort_kinds(self, sort: Sort, where: str) -> None:
        if isinstance(sort, KindSort):
            if sort.kind.name not in self._kinds:
                raise KindError(f"unknown kind {sort.kind} in constructor {where}")
        elif isinstance(sort, BindSort):
            self._check_sort_kinds(sort.sort, where)
        elif isinstance(sort, AppSort):
            for a in sort.args:
                self._check_sort_kinds(a, where)
        elif isinstance(sort, ProductSort):
            for p in sort.parts:
                self._check_sort_kinds(p, where)
        elif isinstance(sort, UnionSort):
            for a in sort.alternatives:
                self._check_sort_kinds(a, where)
        elif isinstance(sort, ListSort):
            self._check_sort_kinds(sort.element, where)
        elif isinstance(sort, FunSort):
            for a in sort.args:
                self._check_sort_kinds(a, where)
            self._check_sort_kinds(sort.result, where)

    # -- lookup --------------------------------------------------------------

    @property
    def kinds(self) -> tuple[Kind, ...]:
        return tuple(self._kinds.values())

    @property
    def constructors(self) -> tuple[TypeConstructor, ...]:
        return tuple(c for overloads in self._constructors.values() for c in overloads)

    def kind(self, name: str) -> Kind:
        try:
            return self._kinds[name]
        except KeyError:
            raise KindError(f"unknown kind: {name}") from None

    def has_kind_named(self, name: str) -> bool:
        return name in self._kinds

    def constructor(self, name: str) -> TypeConstructor:
        """The (first) constructor of a name; all overloads share its kind."""
        try:
            return self._constructors[name][0]
        except KeyError:
            raise TypeFormationError(f"unknown type constructor: {name}") from None

    def overloads(self, name: str) -> tuple[TypeConstructor, ...]:
        try:
            return tuple(self._constructors[name])
        except KeyError:
            raise TypeFormationError(f"unknown type constructor: {name}") from None

    def has_constructor(self, name: str) -> bool:
        return name in self._constructors

    def constant_type(self, name: str) -> TypeApp:
        """The constant type built from a 0-ary constructor."""
        for ctor in self.overloads(name):
            if ctor.is_constant:
                return TypeApp(name)
        raise TypeFormationError(f"{name} is not a constant type constructor")

    def add_kind_member(self, constructor: str, kind: Kind | str) -> None:
        """Declare that the types built by ``constructor`` *also* belong to
        ``kind``.

        The paper's Section 4 puts ``int`` and ``string`` in both ``DATA``
        and ``ORD``; a constructor has one primary result kind, and this
        records the additional memberships.
        """
        if isinstance(kind, str):
            kind = self.kind(kind)
        if kind.name not in self._kinds:
            raise KindError(f"unknown kind: {kind}")
        self.constructor(constructor)  # must exist
        self._extra_kinds.setdefault(constructor, set()).add(kind)

    def constant_types_of_kind(self, kind: Kind | str) -> tuple[TypeApp, ...]:
        """All constant types whose constructor belongs to ``kind``.

        This enumerates the finite population of kinds such as ``DATA`` or
        ``ORD`` — exactly what quantification like ``forall data in DATA``
        ranges over when every type of the kind is constant.
        """
        if isinstance(kind, str):
            kind = self.kind(kind)
        return tuple(
            TypeApp(c.name)
            for c in self.constructors
            if c.is_constant
            and (c.result_kind == kind or kind in self._extra_kinds.get(c.name, ()))
        )

    # -- kind assignment ------------------------------------------------------

    def kind_of(self, t: Type) -> Optional[Kind]:
        """The kind of a type: the result kind of its outermost constructor.

        Function and product types (extended sorts used as types) have no
        kind, so ``None`` is returned for them.
        """
        if isinstance(t, TypeApp):
            return self.constructor(t.constructor).result_kind
        return None

    def has_kind(self, t: Type, kind: Kind | UnionSort | str) -> bool:
        """Does type ``t`` belong to ``kind`` (or to any kind of a union)?"""
        if getattr(t, "wildcard", False):
            return True
        if isinstance(kind, str):
            kind = self.kind(kind)
        if isinstance(kind, UnionSort):
            return any(
                isinstance(a, KindSort) and self.has_kind(t, a.kind)
                for a in kind.alternatives
            )
        if self.kind_of(t) == kind:
            return True
        if isinstance(t, TypeApp):
            return kind in self._extra_kinds.get(t.constructor, ())
        return False

    # -- well-formedness -------------------------------------------------------

    def check_type(self, t: Type) -> Type:
        """Validate that ``t`` is a well-formed type term of this signature.

        Returns ``t`` for chaining; raises :class:`TypeFormationError`
        otherwise.  Function and product types are checked componentwise.
        """
        if getattr(t, "wildcard", False):
            return t
        if isinstance(t, TypeApp):
            overloads = self.overloads(t.constructor)
            matching = [c for c in overloads if len(c.arg_sorts) == len(t.args)]
            if not matching:
                arities = ", ".join(str(len(c.arg_sorts)) for c in overloads)
                raise TypeFormationError(
                    f"{t.constructor} takes {arities} argument(s), "
                    f"got {len(t.args)}"
                )
            ctor = matching[0]
            env: dict[str, TypeArg] = {}
            self._check_args(t.args, ctor.arg_sorts, env, ctor.name)
            if ctor.spec is not None:
                message = ctor.spec.check(self, t.args)
                if message is not None:
                    raise TypeFormationError(
                        f"constructor spec violated for {format_type(t)}: {message}"
                    )
            return t
        if isinstance(t, FunType):
            for a in t.args:
                self.check_type(a)
            self.check_type(t.result)
            return t
        if isinstance(t, ProductType):
            for p in t.parts:
                self.check_type(p)
            return t
        raise TypeFormationError(f"not a type term: {t!r}")

    def _check_args(
        self,
        args: tuple[TypeArg, ...],
        sorts: tuple[Sort, ...],
        env: dict[str, TypeArg],
        where: str,
    ) -> None:
        if len(args) != len(sorts):
            raise TypeFormationError(
                f"{where} expects {len(sorts)} argument(s), got {len(args)}"
            )
        for arg, sort in zip(args, sorts):
            self._check_arg(arg, sort, env, where)

    def _check_arg(
        self, arg: TypeArg, sort: Sort, env: dict[str, TypeArg], where: str
    ) -> None:
        if isinstance(sort, BindSort):
            self._check_arg(arg, sort.sort, env, where)
            env[sort.name] = arg
            return
        if isinstance(sort, KindSort):
            if not isinstance(arg, (TypeApp, FunType, ProductType)):
                raise TypeFormationError(
                    f"{where}: expected a type of kind {sort.kind}, got {arg!r}"
                )
            self.check_type(arg)
            if not self.has_kind(arg, sort.kind):
                raise TypeFormationError(
                    f"{where}: {format_type(arg)} is not of kind {sort.kind}"
                )
            return
        if isinstance(sort, TypeSort):
            self._check_value_arg(arg, sort.type, where)
            return
        if isinstance(sort, VarSort):
            bound = env.get(sort.name)
            if bound is None:
                raise SpecificationError(
                    f"{where}: variable {sort.name} used before being bound"
                )
            if isinstance(bound, Type):
                self._check_value_arg(arg, bound, where)
            elif arg != bound:
                raise TypeFormationError(
                    f"{where}: argument {arg!r} does not match bound {sort.name}"
                )
            return
        if isinstance(sort, ProductSort):
            if not isinstance(arg, ArgTuple) or len(arg.items) != len(sort.parts):
                raise TypeFormationError(
                    f"{where}: expected a {len(sort.parts)}-tuple, got {arg!r}"
                )
            for item, part in zip(arg.items, sort.parts):
                self._check_arg(item, part, env, where)
            return
        if isinstance(sort, UnionSort):
            errors = []
            for alternative in sort.alternatives:
                try:
                    # Union alternatives must not leak partial bindings.
                    trial_env = dict(env)
                    self._check_arg(arg, alternative, trial_env, where)
                    env.update(trial_env)
                    return
                except TypeFormationError as exc:
                    errors.append(str(exc))
            raise TypeFormationError(
                f"{where}: {arg!r} matches no alternative of the union sort "
                f"({'; '.join(errors)})"
            )
        if isinstance(sort, ListSort):
            if not isinstance(arg, ArgList) or not arg.items:
                raise TypeFormationError(
                    f"{where}: expected a non-empty list argument, got {arg!r}"
                )
            for item in arg.items:
                self._check_arg(item, sort.element, env, where)
            return
        if isinstance(sort, FunSort):
            self._check_function_arg(arg, sort, env, where)
            return
        raise SpecificationError(f"{where}: unsupported sort {sort!r}")

    def _check_value_arg(self, arg: TypeArg, expected: Type, where: str) -> None:
        """Check a *value* argument against the type used as its sort.

        Identifiers are :class:`Sym`, atomic literals are :class:`Lit`; any
        other value term is accepted as a :class:`TermArg` (full term
        typechecking happens once the bottom-level signature exists).
        """
        if isinstance(expected, TypeApp) and expected.constructor == "ident":
            if not isinstance(arg, Sym):
                raise TypeFormationError(
                    f"{where}: expected an identifier, got {arg!r}"
                )
            return
        if isinstance(arg, Lit):
            return
        if isinstance(arg, TermArg):
            return
        if isinstance(arg, Type) and arg == expected:
            return
        raise TypeFormationError(
            f"{where}: expected a value of type {format_type(expected)}, got {arg!r}"
        )

    def _check_function_arg(
        self, arg: TypeArg, sort: FunSort, env: dict[str, TypeArg], where: str
    ) -> None:
        from repro.core.terms import Fun, OpRef

        if not isinstance(arg, TermArg):
            raise TypeFormationError(
                f"{where}: expected a function value, got {arg!r}"
            )
        term = arg.term
        if isinstance(term, OpRef):
            return  # operator-as-value; functionality checked at the SOS level
        if not isinstance(term, Fun):
            raise TypeFormationError(
                f"{where}: expected a function abstraction, got {term!r}"
            )
        if len(term.params) != len(sort.args):
            raise TypeFormationError(
                f"{where}: function takes {len(term.params)} parameter(s), "
                f"sort requires {len(sort.args)}"
            )
        expected_params = []
        for (_, ptype), psort in zip(term.params, sort.args):
            expected = self._resolve_sort_type(psort, env)
            expected_params.append(expected if expected is not None else ptype)
            if ptype is None:
                continue
            if expected is not None and ptype != expected:
                raise TypeFormationError(
                    f"{where}: function parameter type {format_type(ptype)} "
                    f"does not match required {format_type(expected)}"
                )
        if self.term_typer is not None:
            from repro.errors import TypeCheckError

            try:
                self.term_typer(term, tuple(expected_params))
            except TypeCheckError as exc:
                raise TypeFormationError(
                    f"{where}: key function does not typecheck: {exc}"
                ) from exc
            self._check_function_result(term, sort, env, where)

    def _check_function_result(
        self, term, sort: FunSort, env: dict[str, TypeArg], where: str
    ) -> None:
        """After the body is typed, its result must match the result sort."""
        from repro.core.types import FunType as _FunType

        fun_type = getattr(term, "type", None)
        if not isinstance(fun_type, _FunType):
            return
        result = fun_type.result
        if isinstance(sort.result, KindSort):
            if not self.has_kind(result, sort.result.kind):
                raise TypeFormationError(
                    f"{where}: key function yields {format_type(result)}, "
                    f"which is not of kind {sort.result.kind}"
                )
            return
        expected = self._resolve_sort_type(sort.result, env)
        if expected is not None and result != expected:
            raise TypeFormationError(
                f"{where}: key function yields {format_type(result)}, "
                f"required {format_type(expected)}"
            )

    def _resolve_sort_type(
        self, sort: Sort, env: dict[str, TypeArg]
    ) -> Optional[Type]:
        """Resolve a sort to a concrete type under ``env``, if possible."""
        if isinstance(sort, TypeSort):
            return sort.type
        if isinstance(sort, VarSort):
            bound = env.get(sort.name)
            return bound if isinstance(bound, Type) else None
        return None
