"""Kinds: the sorts of the top-level signature (paper Def. 3.3 (i)).

A kind names a set of types.  ``DATA`` in the paper's relational example
contains exactly the constant types ``int``, ``real``, ``string`` and
``bool``; ``REL`` contains the infinitely many relation types.  Kinds are
pure names here — which types inhabit a kind is determined by the type
constructors of a :class:`~repro.core.signature.TypeSystem` (the result kind
of a type's outermost constructor).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Kind:
    """A kind — a sort of the top-level signature.

    Kinds are compared and hashed by name, so two ``Kind("REL")`` values are
    the same kind.  By the paper's convention kind names are upper-case, but
    this is not enforced.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Kind({self.name!r})"
