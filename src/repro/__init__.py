"""repro — a reproduction of "Second-Order Signature: A Tool for Specifying
Data Models, Query Processing, and Optimization" (R. H. Güting, SIGMOD 1993).

The library provides:

* :mod:`repro.core` — the formal framework: kinds, type constructors, type
  terms, extended sorts, operator specifications with quantification over
  kinds, second-order signatures and algebras, pattern matching, subtyping
  and type checking;
* :mod:`repro.models` — model-level data models built in the framework
  (relational, nested relational, complex objects);
* :mod:`repro.rep` and :mod:`repro.storage` — the representation level:
  streams, B-trees, LSD-trees, temporary and TID relations, and the query
  processing algebra over them;
* :mod:`repro.lang` — the generic five-statement language with the
  syntax-pattern-driven concrete expression syntax;
* :mod:`repro.optimizer` — rule-based term rewriting with catalog-lookup
  conditions, in the style of the Gral optimizer;
* :mod:`repro.system` — the "SOS optimizer" front end that accepts mixed
  model/representation programs, optimizes model statements to the
  representation level, and executes them.

Quickstart::

    from repro.api import connect

    db = connect()
    db.run('type city = tuple(<(name, string), (pop, int)>)')
    db.run('create cities : rel(city)')
    ...
    result = db.query('cities select[pop > 100000]')
    print(result.value, result.timings)

Observability (events, per-operator metrics, EXPLAIN ANALYZE) is described
in ``docs/OBSERVABILITY.md``; :mod:`repro.observe` holds the machinery.
"""

from repro.errors import (
    CatalogError,
    ExecutionError,
    KindError,
    NoMatchingOperator,
    OptimizationError,
    ParseError,
    SOSError,
    SpecificationError,
    StorageError,
    TypeCheckError,
    TypeFormationError,
    UpdateError,
)

__version__ = "1.0.0"


def connect(dsn=None, **kwargs):
    """Convenience re-export of :func:`repro.api.connect` (DSN forms:
    ``None``, ``file:PATH``, ``repro://host:port``, a bare model name)."""
    from repro.api import connect as _connect

    return _connect(dsn, **kwargs)


__all__ = [
    "connect",
    "SOSError",
    "SpecificationError",
    "KindError",
    "TypeFormationError",
    "TypeCheckError",
    "NoMatchingOperator",
    "ParseError",
    "OptimizationError",
    "ExecutionError",
    "CatalogError",
    "StorageError",
    "UpdateError",
    "__version__",
]
