"""The nested relational model of paper Section 2.1 (the books example).

The paper's type system folds the attribute list directly into ``rel``::

    kinds IDENT, DATA, REL
    type constructors
        -> IDENT                            ident
        -> DATA                             int, real, string, bool
        (ident x (DATA | REL))+ -> REL      rel

:func:`nested_type_system_paper` builds exactly that signature (used to
check the books type of the paper verbatim).  The *executable* model built
by :func:`nested_relational_model` additionally keeps an explicit ``tuple``
constructor — ``tuple: (ident x (DATA | REL))+ -> TUPLE`` and ``rel: TUPLE
-> REL`` — so that row values have a type the operator specifications can
quantify over.  The two formulations describe the same set of relation
schemas; the executable one also carries the classical NF² operators
``nest`` and ``unnest``.
"""

from __future__ import annotations

from repro.core.algebra import Relation, SecondOrderAlgebra, TupleValue
from repro.core.operators import Quantifier, TypeOperator
from repro.core.signature import TypeSystem
from repro.core.sorts import (
    FunSort,
    KindSort,
    ListSort,
    ProductSort,
    TypeSort,
    UnionSort,
    VarSort,
)
from repro.core.sos import SecondOrderSignature, SignatureBuilder
from repro.core.types import (
    Sym,
    Type,
    TypeApp,
    attr_type,
    attrs_of,
    format_type,
    rel_type,
    tuple_type,
)
from repro.core.constructors import TypeConstructor
from repro.models.common import (
    BOOL,
    add_comparisons,
    add_logic,
    register_atomic_carriers,
)
from repro.models.relational import (
    IDENT_T,
    REL_PATTERN,
    _check_rel,
    _check_tuple,
    _select_impl,
)


def nested_type_system_paper() -> TypeSystem:
    """The verbatim type system of Section 2.1 (no tuple constructor)."""
    ts = TypeSystem()
    ident = ts.add_kind("IDENT")
    data = ts.add_kind("DATA")
    rel = ts.add_kind("REL")
    ts.add_constructor(TypeConstructor("ident", (), ident))
    for name in ("int", "real", "string", "bool"):
        ts.add_constructor(TypeConstructor(name, (), data))
    attr_sort = ProductSort(
        (TypeSort(IDENT_T), UnionSort((KindSort(data), KindSort(rel))))
    )
    ts.add_constructor(TypeConstructor("rel", (ListSort(attr_sort),), rel))
    return ts


# ---------------------------------------------------------------------------
# Executable model
# ---------------------------------------------------------------------------


def _unnest_type(type_system, binds, descriptors) -> Type:
    """Result type of ``unnest``: replace the named rel-valued attribute by
    the attributes of its element tuple type."""
    tup = binds["tuple"]
    attr = descriptors[1]
    inner = attr_type(tup, attr.name)
    if inner is None:
        raise ValueError(f"no attribute {attr.name} on {format_type(tup)}")
    if not (isinstance(inner, TypeApp) and inner.constructor == "rel"):
        raise ValueError(f"attribute {attr.name} is not relation-valued")
    inner_tuple = inner.args[0]
    attrs = []
    for name, dtype in attrs_of(tup):
        if name == attr.name:
            attrs.extend(attrs_of(inner_tuple))
        else:
            attrs.append((name, dtype))
    names = [a for a, _ in attrs]
    if len(set(names)) != len(names):
        raise ValueError("unnest would create duplicate attribute names")
    return rel_type(tuple_type(attrs))


def _unnest_impl(ctx, rel: Relation, attr: Sym) -> Relation:
    result_type = ctx.result_type
    out_tuple = result_type.args[0]
    tup = ctx.binding_type("tuple")
    names = [name for name, _ in attrs_of(tup)]
    index = names.index(attr.name)
    rows = []
    for row in rel:
        inner = row.values[index]
        for inner_row in inner:
            values = (
                row.values[:index] + tuple(inner_row.values) + row.values[index + 1 :]
            )
            rows.append(TupleValue(out_tuple, values))
    return Relation(result_type, rows)


def _nest_type(type_system, binds, descriptors) -> Type:
    """Result type of ``nest``: move the named attributes into a nested
    relation-valued attribute."""
    tup = binds["tuple"]
    nested_names = [sym.name for sym in descriptors[1]]
    new_name = descriptors[2].name
    attrs = attrs_of(tup)
    known = {name for name, _ in attrs}
    unknown = [n for n in nested_names if n not in known]
    if unknown:
        raise ValueError(f"unknown attribute(s): {', '.join(unknown)}")
    inner = [(n, d) for n, d in attrs if n in nested_names]
    outer = [(n, d) for n, d in attrs if n not in nested_names]
    if not outer:
        raise ValueError("nest must leave at least one grouping attribute")
    if new_name in {n for n, _ in outer}:
        raise ValueError(f"new attribute name {new_name} collides")
    nested_rel = rel_type(tuple_type(inner))
    return rel_type(tuple_type(outer + [(new_name, nested_rel)]))


def _nest_impl(ctx, rel: Relation, attr_syms: list, new_name: Sym) -> Relation:
    result_type = ctx.result_type
    out_tuple = result_type.args[0]
    tup = ctx.binding_type("tuple")
    attrs = attrs_of(tup)
    nested_names = {sym.name for sym in attr_syms}
    outer_idx = [i for i, (n, _) in enumerate(attrs) if n not in nested_names]
    inner_idx = [i for i, (n, _) in enumerate(attrs) if n in nested_names]
    nested_rel_type = attrs_of(out_tuple)[-1][1]
    inner_tuple = nested_rel_type.args[0]
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    for row in rel:
        key = tuple(row.values[i] for i in outer_idx)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(
            TupleValue(inner_tuple, tuple(row.values[i] for i in inner_idx))
        )
    rows = []
    for key in order:
        nested = Relation(nested_rel_type, groups[key])
        rows.append(TupleValue(out_tuple, key + (nested,)))
    return Relation(result_type, rows)


def nested_relational_model() -> tuple[SecondOrderSignature, SecondOrderAlgebra]:
    """The executable nested relational model with select / nest / unnest."""
    builder = SignatureBuilder()
    _ident, data, tup, rel = builder.kinds("IDENT", "DATA", "TUPLE", "REL")
    builder.constant_types("IDENT", "ident", level="hybrid")
    builder.constant_types("DATA", "int", "real", "string", "bool", level="hybrid")
    attr_sort = ProductSort(
        (TypeSort(IDENT_T), UnionSort((KindSort(data), KindSort(rel))))
    )
    builder.constructor("tuple", [ListSort(attr_sort)], tup, level="model")
    builder.constructor("rel", [KindSort(tup)], rel, level="model")
    add_comparisons(builder, data)
    add_logic(builder)
    rel_q = Quantifier("rel", rel, REL_PATTERN)
    builder.op(
        "select",
        quantifiers=(rel_q,),
        args=(VarSort("rel"), FunSort((VarSort("tuple"),), TypeSort(BOOL))),
        result=VarSort("rel"),
        syntax="_ #[ _ ]",
        impl=_select_impl,
        doc="selection over nested relations",
    )
    builder.op(
        "unnest",
        quantifiers=(rel_q,),
        args=(VarSort("rel"), TypeSort(IDENT_T)),
        result=TypeOperator("unnest", rel, _unnest_type),
        syntax="_ #[ _ ]",
        impl=_unnest_impl,
        doc="flatten one relation-valued attribute",
    )
    builder.op(
        "nest",
        quantifiers=(rel_q,),
        args=(
            VarSort("rel"),
            ListSort(TypeSort(IDENT_T)),
            TypeSort(IDENT_T),
        ),
        result=TypeOperator("nest", rel, _nest_type),
        syntax="_ #[ _, _ ]",
        impl=_nest_impl,
        doc="group the named attributes into a nested relation",
    )
    builder.attribute_family()
    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_atomic_carriers(algebra)
    algebra.register_carrier("tuple", _check_tuple)
    algebra.register_carrier("rel", _check_rel)
    return sos, algebra
