"""The hybrid base level shared by model and representation signatures.

Section 6 observes that "often some types occur at both levels, for example,
atomic data types, or a tuple type" — those are the *hybrid* constructors.
This module installs them into a builder: the kinds ``IDENT``, ``DATA`` and
``TUPLE``, the atomic constant types, the ``tuple`` constructor, attribute
access, comparisons, arithmetic, logic, spatial types/operators and the
``mktuple`` constructor operator.
"""

from __future__ import annotations

from repro.core.algebra import SecondOrderAlgebra, TupleValue
from repro.core.operators import TypeOperator
from repro.core.sorts import KindSort, ListSort, ProductSort, TypeSort
from repro.core.sos import SignatureBuilder
from repro.core.types import Sym, Type, TypeApp, tuple_type
from repro.models.common import (
    add_arithmetic,
    add_comparisons,
    add_logic,
    register_atomic_carriers,
)
from repro.models.spatial import (
    add_spatial_operators,
    add_spatial_types,
    register_spatial_carriers,
)

IDENT_T = TypeApp("ident")


def _mktuple_type(type_system, binds, descriptors) -> Type:
    """Tuple type from the (attrname, value-type) descriptor list."""
    (pairs,) = descriptors
    attrs = []
    for sym, value_type in pairs:
        if not isinstance(sym, Sym):
            raise ValueError("mktuple components must be (identifier, value)")
        attrs.append((sym.name, value_type))
    names = [a for a, _ in attrs]
    if len(set(names)) != len(names):
        raise ValueError("duplicate attribute names in mktuple")
    return tuple_type(attrs)


def _mktuple_impl(ctx, pairs: list) -> TupleValue:
    return TupleValue(ctx.result_type, tuple(value for _, value in pairs))


def add_base_level(builder: SignatureBuilder, spatial: bool = True) -> None:
    """Install the hybrid base: kinds, atomic types, tuple, shared operators."""
    _ident, data, tup = builder.kinds("IDENT", "DATA", "TUPLE")
    builder.constant_types("IDENT", "ident", level="hybrid")
    builder.constant_types("DATA", "int", "real", "string", "bool", level="hybrid")
    builder.constructor(
        "tuple",
        [ListSort(ProductSort((TypeSort(IDENT_T), KindSort(data))))],
        tup,
        level="hybrid",
    )
    if spatial:
        add_spatial_types(builder)
        add_spatial_operators(builder)
    add_comparisons(builder, data)
    add_arithmetic(builder, data)
    add_logic(builder)
    builder.op(
        "mktuple",
        args=(ListSort(ProductSort((TypeSort(IDENT_T), KindSort(data)))),),
        result=TypeOperator("mktuple", tup, _mktuple_type),
        syntax="#[ _ ]",
        impl=_mktuple_impl,
        level="hybrid",
        doc="tuple construction from (attrname, value) pairs",
    )
    builder.attribute_family()


def register_base_carriers(algebra: SecondOrderAlgebra) -> None:
    from repro.models.relational import _check_tuple

    register_atomic_carriers(algebra)
    register_spatial_carriers(algebra)
    algebra.register_carrier("tuple", _check_tuple)
