"""The complex object model of paper Section 2.1, "in the spirit of [BaK86]".

Type system::

    kinds IDENT, OBJ
    type constructors
        -> IDENT                 ident
        -> OBJ                   bottom, top, int, real, string, bool
        (ident x OBJ)+ -> OBJ    tuple
        OBJ -> OBJ               set

Everything lives in the single kind ``OBJ``; tuples and sets nest freely.
Beyond the paper's type system we provide the structural subtype order of
[BaK86] (:func:`co_subtype`: ``bottom`` below everything, ``top`` above,
width/depth subtyping on tuples, covariant sets) and a small operator
algebra over set values.
"""

from __future__ import annotations

from repro.core.algebra import SecondOrderAlgebra
from repro.core.operators import Quantifier, TypeOperator
from repro.core.patterns import PApp, PVar
from repro.core.sorts import FunSort, KindSort, ListSort, ProductSort, TypeSort, VarSort
from repro.core.sos import SecondOrderSignature, SignatureBuilder
from repro.core.types import Type, TypeApp, attrs_of
from repro.models.common import BOOL, add_comparisons, add_logic, register_atomic_carriers
from repro.models.relational import IDENT_T, _check_tuple

BOTTOM = TypeApp("bottom")
TOP = TypeApp("top")


def co_subtype(sub: Type, sup: Type) -> bool:
    """The structural subtype order of the complex object model.

    * ``bottom <= t <= top`` for every type ``t``;
    * tuples: width and depth subtyping — the subtype has at least the
      supertype's attributes, componentwise subtypes;
    * sets: covariant in the element type;
    * atomic types only relate to themselves (and bottom/top).
    """
    if sub == sup or sub == BOTTOM or sup == TOP:
        return True
    if not isinstance(sub, TypeApp) or not isinstance(sup, TypeApp):
        return False
    if sub.constructor == "set" and sup.constructor == "set":
        return co_subtype(sub.args[0], sup.args[0])  # type: ignore[arg-type]
    if sub.constructor == "tuple" and sup.constructor == "tuple":
        sub_attrs = dict(attrs_of(sub))
        for name, sup_type in attrs_of(sup):
            if name not in sub_attrs:
                return False
            if not co_subtype(sub_attrs[name], sup_type):
                return False
        return True
    return False


class ObjectSet:
    """A set value of the complex object model.

    Elements are hashable model values (atomics, tuples, nested sets are
    frozen on insertion).
    """

    __slots__ = ("type", "elements")

    def __init__(self, set_type: Type, elements=()):
        self.type = set_type
        self.elements: list = []
        seen = set()
        for element in elements:
            key = repr(element)
            if key not in seen:
                seen.add(key)
                self.elements.append(element)

    @property
    def element_type(self) -> Type:
        assert isinstance(self.type, TypeApp)
        arg = self.type.args[0]
        assert isinstance(arg, Type)
        return arg

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __contains__(self, value) -> bool:
        return any(repr(e) == repr(value) for e in self.elements)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ObjectSet)
            and other.type == self.type
            and sorted(map(repr, other.elements)) == sorted(map(repr, self.elements))
        )

    def __repr__(self) -> str:
        return "{" + ", ".join(repr(e) for e in self.elements) + "}"


SET_PATTERN = PApp("set", (PVar("obj"),))


def _mkset_type(type_system, binds, descriptors) -> Type:
    (element_types,) = descriptors
    first = element_types[0]
    if any(t != first for t in element_types):
        raise ValueError("mkset elements must all have the same type")
    return TypeApp("set", (first,))


def complex_object_model() -> tuple[SecondOrderSignature, SecondOrderAlgebra]:
    """The complex object model with a small set algebra."""
    builder = SignatureBuilder()
    _ident, obj = builder.kinds("IDENT", "OBJ")
    builder.constant_types("IDENT", "ident", level="hybrid")
    builder.constant_types(
        "OBJ", "bottom", "top", "int", "real", "string", "bool", level="model"
    )
    builder.constructor(
        "tuple",
        [ListSort(ProductSort((TypeSort(IDENT_T), KindSort(obj))))],
        obj,
        level="model",
    )
    builder.constructor("set", [KindSort(obj)], obj, level="model")
    add_comparisons(builder, obj)
    add_logic(builder)
    set_q = Quantifier("set", obj, SET_PATTERN)
    obj_q = Quantifier("obj", obj)
    builder.op(
        "mkset",
        quantifiers=(obj_q,),
        args=(ListSort(VarSort("obj")),),
        result=TypeOperator("mkset", obj, _mkset_type),
        syntax="#[ _ ]",
        impl=lambda ctx, elements: ObjectSet(ctx.result_type, elements),
        doc="set construction from elements of one type",
    )
    builder.op(
        "member",
        quantifiers=(obj_q, set_q),
        args=(VarSort("obj"), VarSort("set")),
        result=TypeSort(BOOL),
        syntax="( _ # _ )",
        impl=lambda ctx, value, s: value in s,
        doc="set membership",
    )
    builder.op(
        "set_union",
        quantifiers=(set_q,),
        args=(VarSort("set"), VarSort("set")),
        result=VarSort("set"),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: ObjectSet(a.type, list(a) + list(b)),
        doc="set union",
    )
    builder.op(
        "set_insert",
        quantifiers=(set_q,),
        args=(VarSort("set"), VarSort("obj")),
        result=VarSort("set"),
        impl=lambda ctx, s, value: ObjectSet(s.type, list(s) + [value]),
        is_update=True,
        doc="insert an element (update function)",
    )
    builder.op(
        "filter_set",
        quantifiers=(set_q,),
        args=(VarSort("set"), FunSort((VarSort("obj"),), TypeSort(BOOL))),
        result=VarSort("set"),
        syntax="_ #[ _ ]",
        impl=lambda ctx, s, pred: ObjectSet(s.type, (e for e in s if pred(e))),
        doc="subset satisfying a predicate",
    )
    builder.op(
        "card",
        quantifiers=(set_q,),
        args=(VarSort("set"),),
        result=TypeSort(TypeApp("int")),
        syntax="# ( _ )",
        impl=lambda ctx, s: len(s),
        doc="cardinality",
    )
    builder.attribute_family()
    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_atomic_carriers(algebra)
    algebra.register_carrier("tuple", _check_tuple)
    algebra.register_carrier(
        "set",
        lambda alg, v, t: isinstance(v, ObjectSet)
        and v.type == t
        and all(alg.check_value(e, v.element_type) for e in v.elements),
    )
    return sos, algebra
