"""Operator groups shared by several models: comparisons, arithmetic, logic.

The paper's Section 2.2 defines the comparison operators once for all of
``DATA`` through quantification; arithmetic is needed by its examples
(``pop * 1.1`` in Section 6, ``pop div 1000`` in Section 4) and follows the
same style.
"""

from __future__ import annotations

import operator

from repro.core.kinds import Kind
from repro.core.operators import Quantifier, TypeOperator
from repro.core.sorts import TypeSort, UnionSort, VarSort
from repro.core.types import Sym, TypeApp
from repro.errors import ExecutionError

INT = TypeApp("int")
REAL = TypeApp("real")
STRING = TypeApp("string")
BOOL = TypeApp("bool")

_COMPARISONS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">=": operator.ge,
    ">": operator.gt,
}


def _comparable(fn, name):
    def impl(ctx, a, b):
        try:
            return fn(a, b)
        except TypeError:
            raise ExecutionError(
                f"values {a!r} and {b!r} are not comparable with {name}"
            ) from None

    impl.__name__ = f"cmp_{name}"
    return impl


def add_comparisons(builder, data_kind: Kind, level: str = "hybrid") -> None:
    """``forall data in DATA. data x data -> bool   =, !=, <, <=, >=, >``."""
    for name, fn in _COMPARISONS.items():
        builder.op(
            name,
            quantifiers=(Quantifier("data", data_kind),),
            args=(VarSort("data"), VarSort("data")),
            result=TypeSort(BOOL),
            syntax="( _ # _ )",
            impl=_comparable(fn, name),
            level=level,
            doc=f"comparison {name} on any DATA type",
        )


def _numeric_result(type_system, binds, descriptors):
    """int if both operands are int, real otherwise."""
    if all(d == INT for d in descriptors):
        return INT
    return REAL


_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


def add_arithmetic(builder, data_kind: Kind, level: str = "hybrid") -> None:
    """Arithmetic over int/real with the usual numeric promotion."""
    num = UnionSort((TypeSort(INT), TypeSort(REAL)))
    for name, fn in _ARITH.items():
        builder.op(
            name,
            args=(num, num),
            result=TypeOperator(f"arith_{name}", data_kind, _numeric_result),
            syntax="( _ # _ )",
            impl=(lambda fn: lambda ctx, a, b: fn(a, b))(fn),
            level=level,
            doc=f"numeric {name} with int/real promotion",
        )
    builder.op(
        "/",
        args=(num, num),
        result=TypeSort(REAL),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: a / b,
        level=level,
        doc="real division",
    )
    builder.op(
        "div",
        args=(TypeSort(INT), TypeSort(INT)),
        result=TypeSort(INT),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: a // b,
        level=level,
        doc="integer division",
    )
    builder.op(
        "mod",
        args=(TypeSort(INT), TypeSort(INT)),
        result=TypeSort(INT),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: a % b,
        level=level,
        doc="integer remainder",
    )


def add_logic(builder, level: str = "hybrid") -> None:
    """Boolean connectives for composing predicates."""
    builder.op(
        "and",
        args=(TypeSort(BOOL), TypeSort(BOOL)),
        result=TypeSort(BOOL),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: a and b,
        level=level,
        doc="conjunction",
    )
    builder.op(
        "or",
        args=(TypeSort(BOOL), TypeSort(BOOL)),
        result=TypeSort(BOOL),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: a or b,
        level=level,
        doc="disjunction",
    )
    builder.op(
        "not",
        args=(TypeSort(BOOL),),
        result=TypeSort(BOOL),
        syntax="# ( _ )",
        impl=lambda ctx, a: not a,
        level=level,
        doc="negation",
    )


def register_atomic_carriers(algebra) -> None:
    """Carrier checks for the atomic model types."""
    algebra.register_carrier(
        "int", lambda alg, v, t: isinstance(v, int) and not isinstance(v, bool)
    )
    algebra.register_carrier(
        "real",
        lambda alg, v, t: isinstance(v, (int, float)) and not isinstance(v, bool),
    )
    algebra.register_carrier("string", lambda alg, v, t: isinstance(v, str))
    algebra.register_carrier("bool", lambda alg, v, t: isinstance(v, bool))
    algebra.register_carrier("ident", lambda alg, v, t: isinstance(v, Sym))
