"""The relational data model of paper Sections 2.1, 2.2 and 6.

Type system::

    kinds IDENT, DATA, TUPLE, REL
    type constructors
        -> IDENT                  ident
        -> DATA                   int, real, string, bool [, point, rect, pgon]
        (ident x DATA)+ -> TUPLE  tuple
        TUPLE -> REL              rel

Query operators (Section 2.2)::

    forall data in DATA.          data x data -> bool            =, !=, <, <=, >=, >
    forall rel: rel(tuple) in REL.
        rel x (tuple -> bool) -> rel                             select
    forall tuple: tuple(list) in TUPLE. forall (a, d) in list.
        tuple -> d                                               a   (attribute access)
    forall rel in REL.            rel+ -> rel                    union
    forall rel1: rel(tuple1), rel2: rel(tuple2) in REL.
        rel1 x rel2 x (tuple1 x tuple2 -> bool) -> rel: REL      join

Update operators (Section 6, marked as update functions)::

    forall rel: rel(tuple) in REL.
        -> rel                                                   empty
        rel x tuple ~> rel                                       insert
        rel x rel ~> rel                                         rel_insert
        rel x (tuple -> bool) ~> rel                             delete
    forall rel: rel(tuple: tuple(list)) in REL. forall (a, d) in list.
        rel x (tuple -> bool) x a x (tuple -> d) ~> rel          modify

The ``join`` result type is computed by a type operator in Δ (concatenation
of the operand tuple types); ``modify``'s dependent constraint on the
attribute name is a post-check, the second-level quantification of the paper.
"""

from __future__ import annotations

from repro.core.algebra import Relation, SecondOrderAlgebra, TupleValue
from repro.core.operators import Quantifier, TypeOperator
from repro.core.patterns import PApp, PVar
from repro.core.sorts import FunSort, KindSort, ListSort, TypeSort, VarSort
from repro.core.sos import SecondOrderSignature, SignatureBuilder
from repro.core.types import (
    Sym,
    Type,
    TypeApp,
    attr_type,
    attrs_of,
    concat_tuple_types,
    format_type,
    tuple_type,
)
from repro.errors import ExecutionError
from repro.testing.faults import fault_point
from repro.models.common import (
    BOOL,
    register_atomic_carriers,
)
from repro.models.spatial import register_spatial_carriers

IDENT_T = TypeApp("ident")

REL_PATTERN = PApp("rel", (PVar("tuple"),))
"""The pattern ``rel(tuple)`` used by most quantifiers below."""


# ---------------------------------------------------------------------------
# Operator implementations (the second-order algebra)
# ---------------------------------------------------------------------------


def _select_impl(ctx, rel: Relation, pred) -> Relation:
    return Relation(rel.type, (t for t in rel if pred(t)))


def _union_impl(ctx, rels: list) -> Relation:
    rows = []
    for rel in rels:
        rows.extend(rel.rows)
    return Relation(rels[0].type, rows)


def _join_impl(ctx, left: Relation, right: Relation, pred) -> Relation:
    result_type = ctx.result_type
    assert isinstance(result_type, TypeApp)
    out_tuple = result_type.args[0]
    rows = []
    for t1 in left:
        for t2 in right:
            if pred(t1, t2):
                rows.append(t1.concat(t2, out_tuple))
    return Relation(result_type, rows)


def _join_type(type_system, binds, descriptors) -> Type:
    """The ``join`` type operator: REL x REL -> REL by tuple concatenation."""
    tuple1 = binds["tuple1"]
    tuple2 = binds["tuple2"]
    rel1 = binds["rel1"]
    assert isinstance(rel1, TypeApp)
    return TypeApp(rel1.constructor, (concat_tuple_types(tuple1, tuple2),))


def _empty_impl(ctx) -> Relation:
    return Relation(ctx.result_type, [])


def _insert_impl(ctx, rel: Relation, tup: TupleValue) -> Relation:
    fault_point("rel.insert")
    rel.insert(tup)
    return rel


def _rel_insert_impl(ctx, rel: Relation, other: Relation) -> Relation:
    fault_point("rel.insert")
    rel.rows.extend(other.rows)
    return rel


def _delete_impl(ctx, rel: Relation, pred) -> Relation:
    fault_point("rel.delete")
    rel.rows[:] = [t for t in rel.rows if not pred(t)]
    return rel


def _modify_impl(ctx, rel: Relation, pred, attr: Sym, fn) -> Relation:
    fault_point("rel.modify")
    name = attr.name
    rel.rows[:] = [
        t.with_attr(name, fn(t)) if pred(t) else t for t in rel.rows
    ]
    return rel


def _modify_post_check(type_system, binds, descriptors):
    """``forall (attrname, dtype) in list``: the named attribute must exist
    on the tuple type and the value function must produce its type."""
    attr = descriptors[2]
    fn_type = descriptors[3]
    tup = binds["tuple"]
    expected = attr_type(tup, attr.name)
    if expected is None:
        return f"tuple type {format_type(tup)} has no attribute {attr.name}"
    if fn_type.result != expected:
        return (
            f"value function yields {format_type(fn_type.result)}, attribute "
            f"{attr.name} has type {format_type(expected)}"
        )
    return None


# ---------------------------------------------------------------------------
# Model assembly
# ---------------------------------------------------------------------------


def relational_model(
    spatial: bool = True,
) -> tuple[SecondOrderSignature, SecondOrderAlgebra]:
    """Build the relational model: its second-order signature and algebra."""
    from repro.models.base import add_base_level

    builder = SignatureBuilder()
    add_base_level(builder, spatial=spatial)
    add_relational_level(builder)
    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_relational_carriers(algebra)
    return sos, algebra


def add_relational_level(builder: SignatureBuilder) -> None:
    """Install the model-level relational layer on top of the base level:
    the ``rel`` constructor, the query operators and the update operators."""
    rel = builder.kind("REL")
    builder.constructor("rel", [KindSort(builder.kind("TUPLE"))], rel, level="model")
    add_relational_operators(builder)
    add_relational_updates(builder)


def add_relational_operators(builder: SignatureBuilder) -> None:
    """select / union / join / mktuple (Section 2.2)."""
    rel_kind = builder.kind("REL")
    data_kind = builder.kind("DATA")
    builder.op(
        "select",
        quantifiers=(Quantifier("rel", rel_kind, REL_PATTERN),),
        args=(
            VarSort("rel"),
            FunSort((VarSort("tuple"),), TypeSort(BOOL)),
        ),
        result=VarSort("rel"),
        syntax="_ #[ _ ]",
        impl=_select_impl,
        level="model",
        doc="relational selection; result schema equals the operand schema",
    )
    builder.op(
        "union",
        quantifiers=(Quantifier("rel", rel_kind),),
        args=(ListSort(VarSort("rel")),),
        result=VarSort("rel"),
        syntax="_ #",
        impl=_union_impl,
        level="model",
        doc="n-ary union; all operands must have the same relation type",
    )
    builder.op(
        "join",
        quantifiers=(
            Quantifier("rel1", rel_kind, PApp("rel", (PVar("tuple1"),))),
            Quantifier("rel2", rel_kind, PApp("rel", (PVar("tuple2"),))),
        ),
        args=(
            VarSort("rel1"),
            VarSort("rel2"),
            FunSort((VarSort("tuple1"), VarSort("tuple2")), TypeSort(BOOL)),
        ),
        result=TypeOperator("join", rel_kind, _join_type),
        syntax="_ _ #[ _ ]",
        impl=_join_impl,
        level="model",
        doc="theta-join; the result type is computed by the join type operator",
    )
def add_relational_updates(builder: SignatureBuilder) -> None:
    """The update functions of Section 6 for the relational model."""
    rel_kind = builder.kind("REL")
    data_kind = builder.kind("DATA")
    rel_q = Quantifier("rel", rel_kind, REL_PATTERN)
    builder.op(
        "empty",
        quantifiers=(rel_q,),
        args=(),
        result=VarSort("rel"),
        impl=_empty_impl,
        level="model",
        doc="the empty relation of the expected relation type",
    )
    builder.op(
        "insert",
        quantifiers=(rel_q,),
        args=(VarSort("rel"), VarSort("tuple")),
        result=VarSort("rel"),
        impl=_insert_impl,
        is_update=True,
        level="model",
        doc="insert one tuple",
    )
    builder.op(
        "rel_insert",
        quantifiers=(rel_q,),
        args=(VarSort("rel"), VarSort("rel")),
        result=VarSort("rel"),
        impl=_rel_insert_impl,
        is_update=True,
        level="model",
        doc="insert all tuples of another relation",
    )
    builder.op(
        "delete",
        quantifiers=(rel_q,),
        args=(VarSort("rel"), FunSort((VarSort("tuple"),), TypeSort(BOOL))),
        result=VarSort("rel"),
        impl=_delete_impl,
        is_update=True,
        level="model",
        doc="delete all tuples satisfying the predicate",
    )
    builder.op(
        "modify",
        quantifiers=(rel_q,),
        args=(
            VarSort("rel"),
            FunSort((VarSort("tuple"),), TypeSort(BOOL)),
            TypeSort(IDENT_T),
            FunSort((VarSort("tuple"),), KindSort(data_kind)),
        ),
        result=VarSort("rel"),
        impl=_modify_impl,
        is_update=True,
        post_check=_modify_post_check,
        level="model",
        doc="assign the value function's result to the named attribute of "
        "every qualifying tuple",
    )


# ---------------------------------------------------------------------------
# Carriers
# ---------------------------------------------------------------------------


def _check_tuple(algebra, value, t) -> bool:
    if not isinstance(value, TupleValue) or value.schema != t:
        return False
    attrs = attrs_of(t)
    if len(value.values) != len(attrs):
        return False
    return all(
        algebra.check_value(v, dtype) for v, (_, dtype) in zip(value.values, attrs)
    )


def _check_rel(algebra, value, t) -> bool:
    if not isinstance(value, Relation) or value.type != t:
        return False
    return all(_check_tuple(algebra, row, value.tuple_type) for row in value.rows)


def register_relational_carriers(algebra: SecondOrderAlgebra) -> None:
    register_atomic_carriers(algebra)
    register_spatial_carriers(algebra)
    algebra.register_carrier("tuple", _check_tuple)
    algebra.register_carrier("rel", _check_rel)


# ---------------------------------------------------------------------------
# Python-side convenience constructors
# ---------------------------------------------------------------------------


def make_tuple(schema: Type, **values) -> TupleValue:
    """Build a tuple value by attribute name (Python-side convenience)."""
    attrs = attrs_of(schema)
    missing = [name for name, _ in attrs if name not in values]
    if missing:
        raise ExecutionError(f"missing attribute value(s): {', '.join(missing)}")
    extra = set(values) - {name for name, _ in attrs}
    if extra:
        raise ExecutionError(f"unknown attribute(s): {', '.join(sorted(extra))}")
    return TupleValue(schema, tuple(values[name] for name, _ in attrs))


def make_relation(rel_t: Type, rows) -> Relation:
    """Build a relation from dicts or TupleValues."""
    assert isinstance(rel_t, TypeApp)
    schema = rel_t.args[0]
    out = Relation(rel_t)
    for row in rows:
        if isinstance(row, TupleValue):
            out.insert(row)
        else:
            out.insert(make_tuple(schema, **row))
    return out
