"""Spatial data types and operators shared by model and representation level.

Section 4 of the paper extends ``DATA`` with ``point``, ``rect`` and ``pgon``
and uses the operators::

    point x pgon -> bool   inside    ( _ # _ )
    pgon -> rect           bbox      # ( _ )

``inside`` is additionally defined for points in rectangles and rectangles in
rectangles, which the spatial-join filter steps rely on.
"""

from __future__ import annotations

from repro.core.sorts import ListSort, TypeSort, UnionSort
from repro.core.sos import SignatureBuilder
from repro.core.types import TypeApp
from repro.geometry import Point, Polygon, Rect

POINT = TypeApp("point")
RECT = TypeApp("rect")
PGON = TypeApp("pgon")
BOOL = TypeApp("bool")


def add_spatial_types(builder: SignatureBuilder, data_kind="DATA", level="hybrid"):
    """Register the spatial constant types in ``data_kind``."""
    builder.constant_types(data_kind, "point", "rect", "pgon", level=level)


def add_spatial_operators(builder: SignatureBuilder, level="hybrid"):
    """Register ``inside``, ``bbox`` and ``intersects``."""
    builder.op(
        "inside",
        args=(TypeSort(POINT), TypeSort(PGON)),
        result=TypeSort(BOOL),
        syntax="( _ # _ )",
        impl=lambda ctx, p, pg: pg.contains_point(p),
        level=level,
        doc="point-in-polygon containment",
    )
    builder.op(
        "inside",
        args=(TypeSort(POINT), TypeSort(RECT)),
        result=TypeSort(BOOL),
        syntax="( _ # _ )",
        impl=lambda ctx, p, r: r.contains_point(p),
        level=level,
        doc="point-in-rectangle containment",
    )
    builder.op(
        "inside",
        args=(TypeSort(RECT), TypeSort(RECT)),
        result=TypeSort(BOOL),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: b.contains_rect(a),
        level=level,
        doc="rectangle containment (first inside second)",
    )
    builder.op(
        "intersects",
        args=(TypeSort(RECT), TypeSort(RECT)),
        result=TypeSort(BOOL),
        syntax="( _ # _ )",
        impl=lambda ctx, a, b: a.intersects(b),
        level=level,
        doc="rectangle overlap",
    )
    num = UnionSort((TypeSort(TypeApp("int")), TypeSort(TypeApp("real"))))
    builder.op(
        "pt",
        args=(num, num),
        result=TypeSort(POINT),
        syntax="# ( _, _ )",
        impl=lambda ctx, x, y: Point(float(x), float(y)),
        level=level,
        doc="point construction from coordinates",
    )
    builder.op(
        "box",
        args=(num, num, num, num),
        result=TypeSort(RECT),
        syntax="# ( _, _, _, _ )",
        impl=lambda ctx, x1, y1, x2, y2: Rect(
            float(x1), float(y1), float(x2), float(y2)
        ),
        level=level,
        doc="axis-parallel rectangle from corner coordinates",
    )
    builder.op(
        "region_box",
        args=(num, num, num, num),
        result=TypeSort(PGON),
        syntax="# ( _, _, _, _ )",
        impl=lambda ctx, x1, y1, x2, y2: Polygon.rectangle(
            float(x1), float(y1), float(x2), float(y2)
        ),
        level=level,
        doc="rectangular polygon (synthetic regions)",
    )
    builder.op(
        "poly",
        args=(ListSort(TypeSort(POINT)),),
        result=TypeSort(PGON),
        syntax="#[ _ ]",
        impl=lambda ctx, vertices: Polygon(tuple(vertices)),
        level=level,
        doc="polygon from a vertex list: poly[<pt(0,0), pt(4,0), pt(2,3)>]",
    )
    builder.op(
        "bbox",
        args=(TypeSort(PGON),),
        result=TypeSort(RECT),
        syntax="# ( _ )",
        impl=lambda ctx, pg: pg.bbox(),
        level=level,
        doc="bounding box of a polygon",
    )


def register_spatial_carriers(algebra) -> None:
    algebra.register_carrier("point", lambda alg, v, t: isinstance(v, Point))
    algebra.register_carrier("rect", lambda alg, v, t: isinstance(v, Rect))
    algebra.register_carrier("pgon", lambda alg, v, t: isinstance(v, Polygon))
