"""A graph data model in the SOS framework.

The paper credits the two-level idea to joint work with Erwig ([ErG91]),
where it was "applied to define a data model that integrates object class
hierarchies with explicit graph structures".  This module demonstrates the
same generality: a graph model defined with the identical machinery —
kinds, type constructors, quantified operators — and an algebra implemented
over ``networkx``.

Type system::

    kinds IDENT, DATA, TUPLE, GRAPH
    type constructors
        -> IDENT                      ident
        -> DATA                       int, real, string, bool
        (ident x DATA)+ -> TUPLE      tuple
        TUPLE x TUPLE -> GRAPH        graph     (node type, edge type)

Nodes carry an integer identity plus a tuple of attributes; edges connect
node identities and carry their own attribute tuple.  Query operators
return relations of node/edge tuples, so the relational operators compose
with graph exploration (``succ``, ``reachable``, ``shortest_path``).
"""

from __future__ import annotations

import networkx as nx

from repro.core.algebra import Relation, SecondOrderAlgebra, TupleValue
from repro.core.operators import Quantifier
from repro.core.patterns import PApp, PVar
from repro.core.sorts import AppSort, FunSort, KindSort, TypeSort, VarSort
from repro.core.sos import SecondOrderSignature, SignatureBuilder
from repro.core.types import Type, TypeApp
from repro.errors import ExecutionError
from repro.models.common import (
    BOOL,
    INT,
)
from repro.models.relational import REL_PATTERN, _check_rel, _select_impl

GRAPH_PATTERN = PApp("graph", (PVar("ntuple"), PVar("etuple")))


class GraphValue:
    """A graph value: a directed multigraph with attributed nodes/edges."""

    __slots__ = ("type", "g")

    def __init__(self, graph_type: Type):
        self.type = graph_type
        self.g = nx.MultiDiGraph()

    @property
    def node_type(self) -> Type:
        assert isinstance(self.type, TypeApp)
        return self.type.args[0]  # type: ignore[return-value]

    @property
    def edge_type(self) -> Type:
        assert isinstance(self.type, TypeApp)
        return self.type.args[1]  # type: ignore[return-value]

    def clone(self) -> "GraphValue":
        """A snapshot copy: the graph topology and attribute dicts are
        copied, the (immutable) attribute tuples are shared."""
        twin = GraphValue(self.type)
        twin.g = self.g.copy()
        return twin

    def add_node(self, node_id: int, attrs: TupleValue) -> None:
        self.g.add_node(node_id, attrs=attrs)

    def add_edge(self, source: int, target: int, attrs: TupleValue) -> None:
        if source not in self.g or target not in self.g:
            raise ExecutionError(
                f"edge endpoints must exist: {source} -> {target}"
            )
        self.g.add_edge(source, target, attrs=attrs)

    def node_attrs(self, node_id: int) -> TupleValue:
        try:
            return self.g.nodes[node_id]["attrs"]
        except KeyError:
            raise ExecutionError(f"no node {node_id} in the graph") from None

    def node_relation(self, rel_type: Type) -> Relation:
        return Relation(
            rel_type, (self.g.nodes[n]["attrs"] for n in sorted(self.g.nodes))
        )

    def edge_relation(self, rel_type: Type) -> Relation:
        return Relation(
            rel_type,
            (data["attrs"] for _, _, data in sorted(
                self.g.edges(data=True), key=lambda e: (e[0], e[1])
            )),
        )

    def __len__(self) -> int:
        return self.g.number_of_nodes()

    def __repr__(self) -> str:
        return (
            f"GraphValue({self.g.number_of_nodes()} nodes, "
            f"{self.g.number_of_edges()} edges)"
        )


# ---------------------------------------------------------------------------
# Operator implementations
# ---------------------------------------------------------------------------


def _empty_graph(ctx) -> GraphValue:
    return GraphValue(ctx.result_type)


def _add_node_impl(ctx, graph: GraphValue, node_id: int, attrs: TupleValue):
    graph.add_node(node_id, attrs)
    return graph


def _add_edge_impl(ctx, graph: GraphValue, source: int, target: int, attrs):
    graph.add_edge(source, target, attrs)
    return graph


def _nodes_impl(ctx, graph: GraphValue) -> Relation:
    return graph.node_relation(ctx.result_type)


def _edges_impl(ctx, graph: GraphValue) -> Relation:
    return graph.edge_relation(ctx.result_type)


def _succ_impl(ctx, graph: GraphValue, node_id: int) -> Relation:
    rel_type = ctx.result_type
    if node_id not in graph.g:
        raise ExecutionError(f"no node {node_id} in the graph")
    return Relation(
        rel_type,
        (graph.node_attrs(s) for s in sorted(graph.g.successors(node_id))),
    )


def _pred_impl(ctx, graph: GraphValue, node_id: int) -> Relation:
    rel_type = ctx.result_type
    if node_id not in graph.g:
        raise ExecutionError(f"no node {node_id} in the graph")
    return Relation(
        rel_type,
        (graph.node_attrs(p) for p in sorted(graph.g.predecessors(node_id))),
    )


def _reachable_impl(ctx, graph: GraphValue, node_id: int) -> Relation:
    if node_id not in graph.g:
        raise ExecutionError(f"no node {node_id} in the graph")
    reached = nx.descendants(graph.g, node_id) | {node_id}
    return Relation(
        ctx.result_type, (graph.node_attrs(n) for n in sorted(reached))
    )


def _shortest_path_impl(ctx, graph: GraphValue, source: int, target: int) -> Relation:
    try:
        path = nx.shortest_path(graph.g, source, target)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        path = []
    return Relation(ctx.result_type, (graph.node_attrs(n) for n in path))


def _degree_impl(ctx, graph: GraphValue, node_id: int) -> int:
    if node_id not in graph.g:
        raise ExecutionError(f"no node {node_id} in the graph")
    return graph.g.out_degree(node_id) + graph.g.in_degree(node_id)


# ---------------------------------------------------------------------------
# Model assembly
# ---------------------------------------------------------------------------


def graph_model() -> tuple[SecondOrderSignature, SecondOrderAlgebra]:
    """The graph model: signature and algebra (relational select included,
    so graph results compose with relational filtering)."""
    from repro.models.base import add_base_level, register_base_carriers

    builder = SignatureBuilder()
    add_base_level(builder, spatial=False)
    rel_kind = builder.kind("REL")
    builder.constructor("rel", [KindSort(builder.kind("TUPLE"))], rel_kind)
    graph_kind = builder.kind("GRAPH")
    tup = builder.kind("TUPLE")
    builder.constructor("graph", [KindSort(tup), KindSort(tup)], graph_kind)

    graph_q = Quantifier("graph", graph_kind, GRAPH_PATTERN)
    node_rel = AppSort("rel", (VarSort("ntuple"),))
    edge_rel = AppSort("rel", (VarSort("etuple"),))

    builder.op(
        "empty",
        quantifiers=(graph_q,),
        args=(),
        result=VarSort("graph"),
        impl=_empty_graph,
        doc="the empty graph of the expected type",
    )
    builder.op(
        "add_node",
        quantifiers=(graph_q,),
        args=(VarSort("graph"), TypeSort(INT), VarSort("ntuple")),
        result=VarSort("graph"),
        impl=_add_node_impl,
        is_update=True,
        doc="add (or replace) an attributed node",
    )
    builder.op(
        "add_edge",
        quantifiers=(graph_q,),
        args=(VarSort("graph"), TypeSort(INT), TypeSort(INT), VarSort("etuple")),
        result=VarSort("graph"),
        impl=_add_edge_impl,
        is_update=True,
        doc="add an attributed edge between existing nodes",
    )
    builder.op(
        "nodes",
        quantifiers=(graph_q,),
        args=(VarSort("graph"),),
        result=node_rel,
        syntax="_ #",
        impl=_nodes_impl,
        doc="the node relation of a graph",
    )
    builder.op(
        "edges",
        quantifiers=(graph_q,),
        args=(VarSort("graph"),),
        result=edge_rel,
        syntax="_ #",
        impl=_edges_impl,
        doc="the edge relation of a graph",
    )
    builder.op(
        "succ",
        quantifiers=(graph_q,),
        args=(VarSort("graph"), TypeSort(INT)),
        result=node_rel,
        syntax="_ #[ _ ]",
        impl=_succ_impl,
        doc="successor nodes of a node",
    )
    builder.op(
        "pred",
        quantifiers=(graph_q,),
        args=(VarSort("graph"), TypeSort(INT)),
        result=node_rel,
        syntax="_ #[ _ ]",
        impl=_pred_impl,
        doc="predecessor nodes of a node",
    )
    builder.op(
        "reachable",
        quantifiers=(graph_q,),
        args=(VarSort("graph"), TypeSort(INT)),
        result=node_rel,
        syntax="_ #[ _ ]",
        impl=_reachable_impl,
        doc="all nodes reachable from a node (including itself)",
    )
    builder.op(
        "shortest_path",
        quantifiers=(graph_q,),
        args=(VarSort("graph"), TypeSort(INT), TypeSort(INT)),
        result=node_rel,
        syntax="_ #[ _, _ ]",
        impl=_shortest_path_impl,
        doc="node sequence of a shortest path (empty if none)",
    )
    builder.op(
        "degree",
        quantifiers=(graph_q,),
        args=(VarSort("graph"), TypeSort(INT)),
        result=TypeSort(INT),
        syntax="_ #[ _ ]",
        impl=_degree_impl,
        doc="total degree of a node",
    )
    # relational select over the node/edge relations
    builder.op(
        "select",
        quantifiers=(Quantifier("rel", rel_kind, REL_PATTERN),),
        args=(VarSort("rel"), FunSort((VarSort("tuple"),), TypeSort(BOOL))),
        result=VarSort("rel"),
        syntax="_ #[ _ ]",
        impl=_select_impl,
        doc="relational selection over graph-derived relations",
    )

    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_base_carriers(algebra)
    algebra.register_carrier("rel", _check_rel)
    algebra.register_carrier(
        "graph",
        lambda alg, v, t: isinstance(v, GraphValue) and v.type == t,
    )
    return sos, algebra
