"""Model-level data models defined in the SOS framework (paper Section 2).

Each module builds a :class:`~repro.core.sos.SecondOrderSignature` plus a
:class:`~repro.core.algebra.SecondOrderAlgebra` for one data model:

* :mod:`repro.models.relational` — the relational model with polymorphic
  ``select`` / ``join`` / ``union``, attribute access, comparisons, and the
  update operators of Section 6;
* :mod:`repro.models.nested` — nested relations (the books example);
* :mod:`repro.models.complex_objects` — the [BaK86]-style complex object
  model (the persons example);
* :mod:`repro.models.spatial` — the shared spatial data types ``point``,
  ``rect``, ``pgon`` with ``inside`` and ``bbox``.
"""

from repro.models.relational import relational_model
from repro.models.nested import nested_relational_model
from repro.models.complex_objects import complex_object_model
from repro.models.graph import graph_model

__all__ = [
    "relational_model",
    "nested_relational_model",
    "complex_object_model",
    "graph_model",
]
