"""Stream combinators: the pipelined execution primitives of Section 4.

These are plain functions over :class:`~repro.core.algebra.Stream` values;
the operator specifications in :mod:`repro.rep.model` delegate to them.
Keeping them separate makes the pipelining ablation benchmark (B6) possible:
the same plan can run fully pipelined or with materialization barriers.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Iterable

from repro.core.algebra import Stream, TupleValue
from repro.core.types import Type
from repro import observe


def feed(tuple_type: Type, source: Iterable) -> Stream:
    """A stream over any iterable of tuples (relation representations
    expose ``scan()``)."""
    return Stream(tuple_type, iter(source))


def filter_stream(stream: Stream, predicate: Callable) -> Stream:
    """Keep the tuples satisfying the predicate."""
    if observe.ENABLED and (sink := observe.active()) is not None:
        # Count the input side too: filter is the one pipeline operator
        # whose in/out ratio (the observed selectivity) matters on its own.
        source = sink.count_in("filter", iter(stream))
        return Stream(stream.tuple_type, (t for t in source if predicate(t)))
    return Stream(stream.tuple_type, (t for t in stream if predicate(t)))


def project_stream(
    out_tuple: Type, stream: Stream, fields: list[tuple[object, Callable]]
) -> Stream:
    """Generalized projection: each output attribute is computed by a
    function of the input tuple (paper: realizes extend/replace-style
    operators of [GüZC89] / [AbB88])."""
    return Stream(
        out_tuple,
        (
            TupleValue(out_tuple, tuple(fn(t) for _, fn in fields))
            for t in stream
        ),
    )


def replace_stream(stream: Stream, attr: str, fn: Callable) -> Stream:
    """Replace one attribute value in every tuple."""
    return Stream(stream.tuple_type, (t.with_attr(attr, fn(t)) for t in stream))


def head_stream(stream: Stream, n: int) -> Stream:
    """The first ``n`` tuples."""
    return Stream(stream.tuple_type, islice(iter(stream), n))


def concat_streams(tuple_type: Type, streams: list[Stream]) -> Stream:
    """All tuples of several streams of the same type, in order."""

    def gen():
        for s in streams:
            yield from s

    return Stream(tuple_type, gen())


def sort_stream(stream: Stream, key: Callable) -> Stream:
    """Sort (materializes internally — a pipeline breaker)."""
    rows = sorted(stream, key=key)
    if observe.ENABLED:
        observe.incr("sort.rows", len(rows))
    return Stream(stream.tuple_type, iter(rows))


def rdup_stream(stream: Stream) -> Stream:
    """Remove *adjacent* duplicates — cheap after a sort, as in classic
    duplicate elimination."""

    def gen():
        previous = object()
        for t in stream:
            if t != previous:
                yield t
            previous = t

    return Stream(stream.tuple_type, gen())


def hash_join_stream(
    out_tuple: Type,
    left: Stream,
    right: Stream,
    left_key: Callable,
    right_key: Callable,
) -> Stream:
    """Classic hash equi-join: build a hash table on the right input, probe
    with the left — one pass over each side."""

    def gen():
        table: dict = {}
        rows = 0
        for r in right:
            table.setdefault(right_key(r), []).append(r)
            rows += 1
        if observe.ENABLED:
            observe.incr("hash_join.build_rows", rows)
        for l in left:
            for r in table.get(left_key(l), ()):
                yield l.concat(r, out_tuple)

    return Stream(out_tuple, gen())


def merge_join_stream(
    out_tuple: Type,
    left: Stream,
    right: Stream,
    left_key: Callable,
    right_key: Callable,
) -> Stream:
    """Sort-merge equi-join: both inputs are materialized, sorted on their
    keys and merged; equal-key groups produce their cross product."""

    def gen():
        lrows = sorted(left, key=left_key)
        rrows = sorted(right, key=right_key)
        if observe.ENABLED:
            observe.incr("merge_join.sorted_rows", len(lrows) + len(rrows))
        i = j = 0
        while i < len(lrows) and j < len(rrows):
            lk = left_key(lrows[i])
            rk = right_key(rrows[j])
            if lk < rk:
                i += 1
            elif rk < lk:
                j += 1
            else:
                # gather both equal-key groups
                i_end = i
                while i_end < len(lrows) and left_key(lrows[i_end]) == lk:
                    i_end += 1
                j_end = j
                while j_end < len(rrows) and right_key(rrows[j_end]) == lk:
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        yield lrows[li].concat(rrows[rj], out_tuple)
                i, j = i_end, j_end

    return Stream(out_tuple, gen())


def search_join_stream(out_tuple: Type, outer: Stream, inner_fn: Callable) -> Stream:
    """The search join of Section 4: for each outer tuple, ``inner_fn``
    yields a stream of matching inner tuples; pairs are concatenated into
    the output stream.  Whether the inner side scans, filters or probes an
    index is entirely up to the function — that is the point of the
    operator."""

    def gen():
        for t1 in outer:
            if not observe.ENABLED:
                for t2 in inner_fn(t1):
                    yield t1.concat(t2, out_tuple)
                continue
            # One probe per outer tuple: how often the inner search
            # method (scan, filter, or index probe) was invoked — plus
            # the distribution of rows each probe returned (fan-out
            # skew is what distinguishes a good index probe from a
            # degenerate one).
            observe.incr("search_join.probes")
            rows = 0
            for t2 in inner_fn(t1):
                rows += 1
                yield t1.concat(t2, out_tuple)
            observe.record("search_join.probe_rows", rows)

    return Stream(out_tuple, gen())
