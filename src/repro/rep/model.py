"""The representation model: type system and execution algebra (Section 4).

Type system (on top of the hybrid base level)::

    kinds ORD, STREAM, SREL, TIDREL, BTREE, LSDTREE, RELREP
    type constructors
        TUPLE -> STREAM                          stream
        TUPLE -> SREL                            srel
        TUPLE -> TIDREL                          tidrel
        TUPLE -> RELREP                          relrep
        TUPLE x ident x ORD -> BTREE             btree     (attr variant)
        TUPLE x (tuple -> ORD) -> BTREE          btree     (function variant)
        TUPLE x (tuple -> rect) -> LSDTREE       lsdtree
    subtypes
        srel(tuple) < relrep(tuple)      tidrel(tuple) < relrep(tuple)
        btree(...)  < relrep(tuple)      lsdtree(...)  < relrep(tuple)

plus ``int``/``string`` also belonging to ``ORD``.  The constructor spec of
the attr-variant B-tree requires ``(attrname, dtype)`` to name an actual
component of the tuple type, exactly as in the paper.

Operators: ``feed``, ``filter``, ``project``, ``replace``, ``collect``,
``range``, ``exact``, ``point_search``, ``overlap_search``, ``search_join``,
``head``, ``count``, the polymorphic constants ``bottom`` / ``top``, and the
structure update functions of Section 6 (``insert``, ``stream_insert``,
``delete``, ``modify``, ``re_insert`` on B-trees; inserts and deletes on the
other structures).
"""

from __future__ import annotations

from repro.core.algebra import Closure, SecondOrderAlgebra, Stream
from repro.core.constructors import ConstructorSpec
from repro.core.operators import Quantifier, TypeOperator
from repro.core.patterns import PApp, PVar
from repro.core.sorts import (
    AppSort,
    BindSort,
    FunSort,
    KindSort,
    ListSort,
    ProductSort,
    TypeSort,
    VarSort,
)
from repro.core.sos import SecondOrderSignature, SignatureBuilder
from repro.core.types import (
    Sym,
    TermArg,
    Type,
    TypeApp,
    attr_type,
    attrs_of,
    concat_tuple_types,
    format_type,
)
from repro.errors import ExecutionError
from repro.models.base import IDENT_T, add_base_level, register_base_carriers
from repro.models.common import BOOL, INT
from repro.rep import streams as st
from repro.storage import BOTTOM_KEY, TOP_KEY, BTree, LSDTree, SRel, TidRelation

RECT_T = TypeApp("rect")
POINT_T = TypeApp("point")

STREAM_PATTERN = PApp("stream", (PVar("tuple"),))
RELREP_PATTERN = PApp("relrep", (PVar("tuple"),))
BTREE3_PATTERN = PApp("btree", (PVar("tuple"), PVar("attrname"), PVar("dtype")))
LSD_PATTERN = PApp("lsdtree", (PVar("tuple"), PVar("f")))


# ---------------------------------------------------------------------------
# Key functions from structure types
# ---------------------------------------------------------------------------


def tuple_attr_getter(tuple_t: Type, name: str):
    """A key function reading one attribute (attr-variant B-tree)."""
    attrs = attrs_of(tuple_t)
    index = next(i for i, (a, _) in enumerate(attrs) if a == name)

    def key(t):
        return t.values[index]

    key.__name__ = f"attr_{name}"
    return key


def structure_key(ctx, rep_type: TypeApp):
    """The key function of a B-tree / LSD-tree type.

    For ``btree(tuple, attrname, dtype)`` this is an attribute getter; for
    the function variants the embedded (typechecked) lambda term becomes a
    closure over the evaluator.
    """
    args = rep_type.args
    if rep_type.constructor == "btree" and len(args) == 3:
        assert isinstance(args[1], Sym)
        return tuple_attr_getter(args[0], args[1].name)
    term_arg = args[1]
    if not isinstance(term_arg, TermArg):
        raise ExecutionError(
            f"{format_type(rep_type)} has no usable key function"
        )
    return Closure(term_arg.term, {}, ctx.evaluator)


def _new_structure(ctx):
    """Build an empty representation structure from the expected type."""
    t = ctx.result_type
    assert isinstance(t, TypeApp)
    if t.constructor == "btree":
        structure = BTree(key=structure_key(ctx, t))
    elif t.constructor == "mbtree":
        structure = BTree(key=mbtree_key(t), name="mbtree")
    elif t.constructor == "lsdtree":
        structure = LSDTree(key=structure_key(ctx, t))
    elif t.constructor == "tidrel":
        structure = TidRelation()
    elif t.constructor == "srel":
        structure = SRel()
    else:
        raise ExecutionError(f"cannot create a structure of type {format_type(t)}")
    structure.rep_type = t
    structure.tuple_type = t.args[0]
    return structure


# ---------------------------------------------------------------------------
# Type operators
# ---------------------------------------------------------------------------


def _search_join_type(type_system, binds, descriptors) -> Type:
    out = concat_tuple_types(binds["tuple1"], binds["tuple2"])
    return TypeApp("stream", (out,))


def _project_type(type_system, binds, descriptors) -> Type:
    pairs = descriptors[1]
    attrs = []
    for sym, fn_type in pairs:
        attrs.append((sym.name, fn_type.result))
    names = [a for a, _ in attrs]
    if len(set(names)) != len(names):
        raise ValueError("duplicate attribute names in project")
    from repro.core.types import tuple_type as make_tuple_type

    return TypeApp("stream", (make_tuple_type(attrs),))


def _replace_post_check(type_system, binds, descriptors):
    attr = descriptors[1]
    fn_type = descriptors[2]
    tup = binds["tuple"]
    expected = attr_type(tup, attr.name)
    if expected is None:
        return f"tuple type {format_type(tup)} has no attribute {attr.name}"
    if fn_type.result != expected:
        return (
            f"value function yields {format_type(fn_type.result)}, attribute "
            f"{attr.name} has type {format_type(expected)}"
        )
    return None


# ---------------------------------------------------------------------------
# Operator implementations
# ---------------------------------------------------------------------------


def _feed_impl(ctx, rep) -> Stream:
    return st.feed(ctx.result_type.args[0], rep.scan())


def _filter_impl(ctx, stream: Stream, pred) -> Stream:
    return st.filter_stream(stream, pred)


def _project_impl(ctx, stream: Stream, fields: list) -> Stream:
    return st.project_stream(ctx.result_type.args[0], stream, fields)


def _replace_impl(ctx, stream: Stream, attr: Sym, fn) -> Stream:
    return st.replace_stream(stream, attr.name, fn)


def _collect_impl(ctx, stream: Stream) -> SRel:
    srel = SRel(stream)
    srel.rep_type = ctx.result_type
    srel.tuple_type = ctx.result_type.args[0]
    return srel


def _head_impl(ctx, stream: Stream, n: int) -> Stream:
    return st.head_stream(stream, n)


def _count_impl(ctx, stream: Stream) -> int:
    return sum(1 for _ in stream)


def _sortby_impl(ctx, stream: Stream, attr: Sym) -> Stream:
    return st.sort_stream(stream, lambda t: t.attr(attr.name))


def _rdup_impl(ctx, stream: Stream) -> Stream:
    return st.rdup_stream(stream)


def _sortby_post_check(type_system, binds, descriptors):
    attr = descriptors[1]
    tup = binds["tuple"]
    if attr_type(tup, attr.name) is None:
        return f"tuple type {format_type(tup)} has no attribute {attr.name}"
    return None


def _agg_value_type(type_system, binds, descriptors):
    """Result type of min/max/sum: the type of the aggregated attribute."""
    attr = descriptors[1]
    tup = binds["tuple"]
    dtype = attr_type(tup, attr.name)
    if dtype is None:
        raise ValueError(f"tuple type has no attribute {attr.name}")
    return dtype


def _aggregate(fn, empty_error):
    def impl(ctx, stream: Stream, attr: Sym):
        values = [t.attr(attr.name) for t in stream]
        if not values:
            raise ExecutionError(empty_error)
        return fn(values)

    return impl


def _groupby_type(type_system, binds, descriptors) -> Type:
    """Result type of groupby: the grouping attribute plus one attribute
    per aggregate function."""
    tup = binds["tuple"]
    attr = descriptors[1]
    key_type = attr_type(tup, attr.name)
    if key_type is None:
        raise ValueError(f"tuple type has no attribute {attr.name}")
    attrs = [(attr.name, key_type)]
    for sym, fn_type in descriptors[2]:
        if sym.name == attr.name or sym.name in {a for a, _ in attrs}:
            raise ValueError(f"duplicate attribute {sym.name} in groupby")
        attrs.append((sym.name, fn_type.result))
    from repro.core.types import tuple_type as make_tuple_type

    return TypeApp("stream", (make_tuple_type(attrs),))


def _groupby_impl(ctx, stream: Stream, attr: Sym, aggregates: list) -> Stream:
    """Group by one attribute; each aggregate function receives the group's
    tuples as a fresh stream — a genuinely second-order operand."""
    out_tuple = ctx.result_type.args[0]
    tuple_t = ctx.binding_type("tuple")
    groups: dict = {}
    order: list = []
    for t in stream:
        key = t.attr(attr.name)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(t)

    def gen():
        from repro.core.algebra import TupleValue

        for key in order:
            values = [key]
            for _, fn in aggregates:
                values.append(fn(Stream(tuple_t, iter(groups[key]))))
            yield TupleValue(out_tuple, tuple(values))

    return Stream(out_tuple, gen())


def _avg_impl(ctx, stream: Stream, attr: Sym) -> float:
    values = [t.attr(attr.name) for t in stream]
    if not values:
        raise ExecutionError("avg over an empty stream")
    return sum(values) / len(values)


def _range_impl(ctx, btree: BTree, low, high) -> Stream:
    return st.feed(ctx.result_type.args[0], btree.range_search(low, high))


def _exact_impl(ctx, btree: BTree, key) -> Stream:
    return st.feed(ctx.result_type.args[0], btree.exact_search(key))


def _point_search_impl(ctx, lsd: LSDTree, p) -> Stream:
    return st.feed(ctx.result_type.args[0], lsd.point_search(p))


def _overlap_search_impl(ctx, lsd: LSDTree, r) -> Stream:
    return st.feed(ctx.result_type.args[0], lsd.overlap_search(r))


def _search_join_impl(ctx, outer: Stream, inner_fn) -> Stream:
    return st.search_join_stream(ctx.result_type.args[0], outer, inner_fn)


def _merge_join_impl(ctx, left: Stream, right: Stream, a1: Sym, a2: Sym) -> Stream:
    return st.merge_join_stream(
        ctx.result_type.args[0],
        left,
        right,
        lambda t: t.attr(a1.name),
        lambda t: t.attr(a2.name),
    )


def _hash_join_impl(ctx, left: Stream, right: Stream, a1: Sym, a2: Sym) -> Stream:
    return st.hash_join_stream(
        ctx.result_type.args[0],
        left,
        right,
        lambda t: t.attr(a1.name),
        lambda t: t.attr(a2.name),
    )


def _merge_join_post_check(type_system, binds, descriptors):
    """Both join attributes must exist and have the same (ordered) type."""
    a1, a2 = descriptors[2], descriptors[3]
    t1 = attr_type(binds["tuple1"], a1.name)
    t2 = attr_type(binds["tuple2"], a2.name)
    if t1 is None:
        return f"left tuple type has no attribute {a1.name}"
    if t2 is None:
        return f"right tuple type has no attribute {a2.name}"
    if t1 != t2:
        return (
            f"join attributes differ: {a1.name}: {format_type(t1)} vs "
            f"{a2.name}: {format_type(t2)}"
        )
    return None


def _insert_struct_impl(ctx, structure, t):
    structure.insert(t)
    return structure


def _stream_insert_impl(ctx, structure, stream: Stream):
    structure.stream_insert(stream)
    return structure


def _delete_struct_impl(ctx, structure, stream: Stream):
    structure.delete_tuples(stream)
    return structure


def _wrap_stream_fn(fn, tuple_t):
    """Adapt a closure over streams to the iterator interface the storage
    layer exposes."""

    def wrapped(iterator):
        return fn(Stream(tuple_t, iterator))

    return wrapped


def _modify_struct_impl(ctx, btree: BTree, stream: Stream, fn):
    tuple_t = ctx.binding_type("tuple")
    btree.modify_tuples(stream, _wrap_stream_fn(fn, tuple_t))
    return btree


def _re_insert_struct_impl(ctx, btree: BTree, stream: Stream, fn):
    tuple_t = ctx.binding_type("tuple")
    btree.re_insert_tuples(stream, _wrap_stream_fn(fn, tuple_t))
    return btree


# ---------------------------------------------------------------------------
# Signature assembly
# ---------------------------------------------------------------------------


def _mbtree_spec_check(ts, args):
    """Each (attrname, dtype) pair must name a component of the tuple."""
    tup, keys = args
    from repro.core.types import ArgList, ArgTuple

    if not isinstance(keys, ArgList):
        return "key list expected"
    seen = set()
    for item in keys.items:
        if not (isinstance(item, ArgTuple) and len(item.items) == 2):
            return "key list entries must be (attrname, dtype) pairs"
        sym, dtype = item.items
        expected = attr_type(tup, sym.name)
        if expected is None:
            return f"tuple type has no attribute {sym.name}"
        if expected != dtype:
            return (
                f"attribute {sym.name} has type {format_type(expected)}, "
                f"not {format_type(dtype)}"
            )
        if sym.name in seen:
            return f"duplicate key attribute {sym.name}"
        seen.add(sym.name)
    return None


def mbtree_key(rep_type: TypeApp):
    """The composite (lexicographic) key function of an ``mbtree`` type."""
    from repro.core.types import ArgList

    keys = rep_type.args[1]
    assert isinstance(keys, ArgList)
    tuple_t = rep_type.args[0]
    attrs = attrs_of(tuple_t)
    indices = []
    for item in keys.items:
        sym = item.items[0]
        indices.append(next(i for i, (a, _) in enumerate(attrs) if a == sym.name))

    def key(t):
        return tuple(t.values[i] for i in indices)

    return key


def _prefix_post_check(type_system, binds, descriptors):
    """The prefix values must match the leading key attribute types."""
    from repro.core.types import ArgList

    mb = binds.get("mbtree")
    values = descriptors[1]
    if not isinstance(mb, TypeApp):
        return "mbtree binding missing"
    keys = mb.args[1]
    assert isinstance(keys, ArgList)
    if len(values) > len(keys.items):
        return (
            f"prefix has {len(values)} value(s), the index has only "
            f"{len(keys.items)} key attribute(s)"
        )
    for i, value_type in enumerate(values):
        declared = keys.items[i].items[1]
        if value_type != declared:
            return (
                f"prefix component {i + 1} has type {format_type(value_type)}, "
                f"key attribute expects {format_type(declared)}"
            )
    return None


def _prefix_impl(ctx, mbtree, values: list) -> Stream:
    return st.feed(ctx.result_type.args[0], mbtree.prefix_search(tuple(values)))


def _btree_attr_spec_check(ts, args):
    tup, sym, dtype = args
    expected = attr_type(tup, sym.name)
    if expected is None:
        return f"tuple type has no attribute {sym.name}"
    if expected != dtype:
        return (
            f"attribute {sym.name} has type {format_type(expected)}, "
            f"not {format_type(dtype)}"
        )
    return None


# ---------------------------------------------------------------------------
# Secondary indexes over TID relations (Section 6: "accessing tuples through
# a sequence of tuple identifiers delivered from a secondary index")
# ---------------------------------------------------------------------------


def _sindex_type(type_system, binds, descriptors) -> Type:
    """Result type of ``build_index``: sindex(tuple, attrname, dtype)."""
    tup = binds["tuple"]
    attr = descriptors[1]
    dtype = attr_type(tup, attr.name)
    if dtype is None:
        raise ValueError(f"tuple type has no attribute {attr.name}")
    return TypeApp("sindex", (tup, attr, dtype))


def _build_index_impl(ctx, base, attr: Sym):
    from repro.storage.tidrel import SecondaryIndex

    index = SecondaryIndex(
        base, key=tuple_attr_getter(base.tuple_type, attr.name)
    )
    index.build()
    index.rep_type = ctx.result_type
    index.tuple_type = base.tuple_type
    return index


def _sindex_range_impl(ctx, index, low, high) -> Stream:
    return st.feed(ctx.result_type.args[0], index.fetch_range(low, high))


def _sindex_exact_impl(ctx, index, value) -> Stream:
    return st.feed(ctx.result_type.args[0], index.fetch_range(value, value))


def add_representation_level(builder: SignatureBuilder) -> None:
    """Install the representation level on top of the base level."""
    tup = builder.kind("TUPLE")
    data = builder.kind("DATA")
    ord_kind = builder.kind("ORD")
    stream_k, srel_k, tidrel_k, btree_k, lsd_k, relrep_k = builder.kinds(
        "STREAM", "SREL", "TIDREL", "BTREE", "LSDTREE", "RELREP"
    )
    builder.kind_member("int", ord_kind)
    builder.kind_member("string", ord_kind)
    builder.kind_member("real", ord_kind)

    builder.constructor("stream", [KindSort(tup)], stream_k, level="rep")
    builder.constructor("srel", [KindSort(tup)], srel_k, level="rep")
    builder.constructor("tidrel", [KindSort(tup)], tidrel_k, level="rep")
    builder.constructor("relrep", [KindSort(tup)], relrep_k, level="rep")
    builder.constructor(
        "btree",
        [BindSort("tuple", KindSort(tup)), TypeSort(IDENT_T), KindSort(ord_kind)],
        btree_k,
        spec=ConstructorSpec(
            "(attrname, dtype) must name a component of the tuple type",
            _btree_attr_spec_check,
        ),
        level="rep",
    )
    builder.constructor(
        "btree",
        [
            BindSort("tuple", KindSort(tup)),
            FunSort((VarSort("tuple"),), KindSort(ord_kind)),
        ],
        btree_k,
        level="rep",
    )
    builder.constructor(
        "lsdtree",
        [
            BindSort("tuple", KindSort(tup)),
            FunSort((VarSort("tuple"),), TypeSort(RECT_T)),
        ],
        lsd_k,
        level="rep",
    )
    # Multi-attribute B-tree (Section 4 mentions it "for lack of space"):
    # lexicographic ordering over a list of (attrname, dtype) key pairs.
    mbtree_k = builder.kind("MBTREE")
    builder.constructor(
        "mbtree",
        [
            BindSort("tuple", KindSort(tup)),
            ListSort(ProductSort((TypeSort(IDENT_T), KindSort(ord_kind)))),
        ],
        mbtree_k,
        spec=ConstructorSpec(
            "every (attrname, dtype) must name a component of the tuple",
            _mbtree_spec_check,
        ),
        level="rep",
    )

    # subtypes: every concrete representation is a relrep
    builder.subtype(PApp("srel", (PVar("tuple"),)), PApp("relrep", (PVar("tuple"),)))
    builder.subtype(PApp("tidrel", (PVar("tuple"),)), PApp("relrep", (PVar("tuple"),)))
    builder.subtype(BTREE3_PATTERN, PApp("relrep", (PVar("tuple"),)))
    builder.subtype(
        PApp("btree", (PVar("tuple"), PVar("f"))), PApp("relrep", (PVar("tuple"),))
    )
    builder.subtype(LSD_PATTERN, PApp("relrep", (PVar("tuple"),)))
    builder.subtype(
        PApp("mbtree", (PVar("tuple"), PVar("keys"))),
        PApp("relrep", (PVar("tuple"),)),
    )

    # Secondary indexes: access paths over TID relations, not relreps.
    sindex_k = builder.kind("SINDEX")
    builder.constructor(
        "sindex",
        [BindSort("tuple", KindSort(tup)), TypeSort(IDENT_T), KindSort(ord_kind)],
        sindex_k,
        spec=ConstructorSpec(
            "(attrname, dtype) must name a component of the tuple type",
            _btree_attr_spec_check,
        ),
        level="rep",
    )

    _add_stream_operators(builder, stream_k, relrep_k, srel_k, data)
    _add_search_operators(builder, btree_k, lsd_k, ord_kind)
    _add_mbtree_operators(builder, mbtree_k, data, stream_k)
    _add_sindex_operators(builder, sindex_k, tidrel_k)
    _add_structure_updates(builder, btree_k, lsd_k, tidrel_k, srel_k, stream_k)


def _add_sindex_operators(builder, sindex_k, tidrel_k) -> None:
    sindex_q = Quantifier(
        "sindex",
        sindex_k,
        PApp("sindex", (PVar("tuple"), PVar("attrname"), PVar("dtype"))),
    )
    builder.op(
        "build_index",
        quantifiers=(Quantifier("tidrel", tidrel_k, PApp("tidrel", (PVar("tuple"),))),),
        args=(VarSort("tidrel"), TypeSort(IDENT_T)),
        result=TypeOperator("build_index", sindex_k, _sindex_type),
        impl=_build_index_impl,
        level="rep",
        doc="build a secondary B-tree index over a TID relation",
    )
    builder.op(
        "sindex_range",
        quantifiers=(sindex_q,),
        args=(VarSort("sindex"), VarSort("dtype"), VarSort("dtype")),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ #[ _, _ ]",
        impl=_sindex_range_impl,
        level="rep",
        doc="range query via TIDs: each hit costs one heap page fetch",
    )
    builder.op(
        "sindex_exact",
        quantifiers=(sindex_q,),
        args=(VarSort("sindex"), VarSort("dtype")),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ #[ _ ]",
        impl=_sindex_exact_impl,
        level="rep",
        doc="exact-match query via TIDs",
    )


def _add_mbtree_operators(builder, mbtree_k, data, stream_k) -> None:
    mbtree_q = Quantifier(
        "mbtree", mbtree_k, PApp("mbtree", (PVar("tuple"), PVar("keys")))
    )
    builder.op(
        "prefix",
        quantifiers=(mbtree_q,),
        args=(VarSort("mbtree"), ListSort(KindSort(data))),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ #[ _ ]",
        impl=_prefix_impl,
        post_check=_prefix_post_check,
        level="rep",
        doc="multi-attribute prefix query: fix values for a prefix of the "
        "key attributes",
    )
    builder.op(
        "empty",
        quantifiers=(mbtree_q,),
        args=(),
        result=VarSort("mbtree"),
        impl=_new_structure,
        level="rep",
        doc="an empty multi-attribute B-tree of the expected type",
    )
    builder.op(
        "insert",
        quantifiers=(mbtree_q,),
        args=(VarSort("mbtree"), VarSort("tuple")),
        result=VarSort("mbtree"),
        impl=_insert_struct_impl,
        is_update=True,
        level="rep",
        doc="insert one tuple into a multi-attribute B-tree",
    )
    builder.op(
        "stream_insert",
        quantifiers=(mbtree_q,),
        args=(VarSort("mbtree"), AppSort("stream", (VarSort("tuple"),))),
        result=VarSort("mbtree"),
        impl=_stream_insert_impl,
        is_update=True,
        level="rep",
        doc="bulk insert into a multi-attribute B-tree",
    )


def _add_stream_operators(builder, stream_k, relrep_k, srel_k, data) -> None:
    stream_q = Quantifier("stream", stream_k, STREAM_PATTERN)
    builder.op(
        "feed",
        quantifiers=(Quantifier("relrep", relrep_k, RELREP_PATTERN),),
        args=(VarSort("relrep"),),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ #",
        impl=_feed_impl,
        level="rep",
        doc="stream the tuples of any relation representation",
    )
    builder.op(
        "filter",
        quantifiers=(stream_q,),
        args=(VarSort("stream"), FunSort((VarSort("tuple"),), TypeSort(BOOL))),
        result=VarSort("stream"),
        syntax="_ #[ _ ]",
        impl=_filter_impl,
        level="rep",
        doc="keep stream tuples satisfying the condition",
    )
    builder.op(
        "project",
        quantifiers=(stream_q,),
        args=(
            VarSort("stream"),
            ListSort(
                ProductSort(
                    (TypeSort(IDENT_T), FunSort((VarSort("tuple"),), KindSort(data)))
                )
            ),
        ),
        result=TypeOperator("project", stream_k, _project_type),
        syntax="_ #[ _ ]",
        impl=_project_impl,
        level="rep",
        doc="generalized projection: each output attribute is computed by "
        "a function (an old attribute name also works)",
    )
    builder.op(
        "replace",
        quantifiers=(stream_q,),
        args=(
            VarSort("stream"),
            TypeSort(IDENT_T),
            FunSort((VarSort("tuple"),), KindSort(data)),
        ),
        result=VarSort("stream"),
        syntax="_ #[ _, _ ]",
        impl=_replace_impl,
        post_check=_replace_post_check,
        level="rep",
        doc="replace one attribute value in every tuple",
    )
    builder.op(
        "collect",
        quantifiers=(stream_q,),
        args=(VarSort("stream"),),
        result=AppSort("srel", (VarSort("tuple"),)),
        syntax="_ #",
        impl=_collect_impl,
        level="rep",
        doc="materialize a stream into a temporary relation",
    )
    builder.op(
        "head",
        quantifiers=(stream_q,),
        args=(VarSort("stream"), TypeSort(INT)),
        result=VarSort("stream"),
        syntax="_ #[ _ ]",
        impl=_head_impl,
        level="rep",
        doc="the first n tuples of a stream",
    )
    builder.op(
        "count",
        quantifiers=(stream_q,),
        args=(VarSort("stream"),),
        result=TypeSort(INT),
        syntax="_ #",
        impl=_count_impl,
        level="rep",
        doc="number of tuples in a stream",
    )
    builder.op(
        "sortby",
        quantifiers=(stream_q,),
        args=(VarSort("stream"), TypeSort(IDENT_T)),
        result=VarSort("stream"),
        syntax="_ #[ _ ]",
        impl=_sortby_impl,
        post_check=_sortby_post_check,
        level="rep",
        doc="sort by one attribute (a pipeline breaker)",
    )
    builder.op(
        "rdup",
        quantifiers=(stream_q,),
        args=(VarSort("stream"),),
        result=VarSort("stream"),
        syntax="_ #",
        impl=_rdup_impl,
        level="rep",
        doc="remove adjacent duplicates (use after sortby)",
    )
    for name, fn in (("min_of", min), ("max_of", max), ("sum_of", sum)):
        builder.op(
            name,
            quantifiers=(stream_q,),
            args=(VarSort("stream"), TypeSort(IDENT_T)),
            result=TypeOperator(name, builder.kind("DATA"), _agg_value_type),
            syntax="_ #[ _ ]",
            impl=_aggregate(fn, f"{name} over an empty stream"),
            level="rep",
            doc=f"{name.split('_')[0]} of one attribute over a stream",
        )
    builder.op(
        "avg_of",
        quantifiers=(stream_q,),
        args=(VarSort("stream"), TypeSort(IDENT_T)),
        result=TypeSort(TypeApp("real")),
        syntax="_ #[ _ ]",
        impl=_avg_impl,
        post_check=_sortby_post_check,
        level="rep",
        doc="average of one attribute over a stream",
    )
    builder.op(
        "search_join",
        quantifiers=(
            Quantifier("stream1", stream_k, PApp("stream", (PVar("tuple1"),))),
            Quantifier("stream2", stream_k, PApp("stream", (PVar("tuple2"),))),
        ),
        args=(
            VarSort("stream1"),
            FunSort((VarSort("tuple1"),), VarSort("stream2")),
        ),
        result=TypeOperator("search_join", stream_k, _search_join_type),
        syntax="_ _ #",
        impl=_search_join_impl,
        level="rep",
        doc="general search join: the second argument maps each outer tuple "
        "to a stream of matching inner tuples (scan, filter or index probe)",
    )
    builder.op(
        "groupby",
        quantifiers=(stream_q,),
        args=(
            VarSort("stream"),
            TypeSort(IDENT_T),
            ListSort(
                ProductSort(
                    (
                        TypeSort(IDENT_T),
                        FunSort(
                            (AppSort("stream", (VarSort("tuple"),)),),
                            KindSort(data),
                        ),
                    )
                )
            ),
        ),
        result=TypeOperator("groupby", stream_k, _groupby_type),
        syntax="_ #[ _, _ ]",
        impl=_groupby_impl,
        level="rep",
        doc="group by one attribute; each (name, fn) aggregate receives the "
        "group's tuples as a stream",
    )
    builder.op(
        "merge_join",
        quantifiers=(
            Quantifier("stream1", stream_k, PApp("stream", (PVar("tuple1"),))),
            Quantifier("stream2", stream_k, PApp("stream", (PVar("tuple2"),))),
        ),
        args=(
            VarSort("stream1"),
            VarSort("stream2"),
            TypeSort(IDENT_T),
            TypeSort(IDENT_T),
        ),
        result=TypeOperator("merge_join", stream_k, _search_join_type),
        syntax="_ _ #[ _, _ ]",
        impl=_merge_join_impl,
        post_check=_merge_join_post_check,
        level="rep",
        doc="sort-merge equi-join on one attribute per side (materializes "
        "and sorts both inputs)",
    )
    builder.op(
        "hash_join",
        quantifiers=(
            Quantifier("stream1", stream_k, PApp("stream", (PVar("tuple1"),))),
            Quantifier("stream2", stream_k, PApp("stream", (PVar("tuple2"),))),
        ),
        args=(
            VarSort("stream1"),
            VarSort("stream2"),
            TypeSort(IDENT_T),
            TypeSort(IDENT_T),
        ),
        result=TypeOperator("hash_join", stream_k, _search_join_type),
        syntax="_ _ #[ _, _ ]",
        impl=_hash_join_impl,
        post_check=_merge_join_post_check,
        level="rep",
        doc="hash equi-join: build on the right input, probe with the left",
    )


def _add_search_operators(builder, btree_k, lsd_k, ord_kind) -> None:
    btree3_q = Quantifier("btree", btree_k, BTREE3_PATTERN)
    lsd_q = Quantifier("lsdtree", lsd_k, LSD_PATTERN)
    builder.op(
        "range",
        quantifiers=(btree3_q,),
        args=(VarSort("btree"), VarSort("dtype"), VarSort("dtype")),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ #[ _, _ ]",
        impl=_range_impl,
        level="rep",
        doc="B-tree range query; bottom/top open the ends (halfranges)",
    )
    builder.op(
        "exact",
        quantifiers=(btree3_q,),
        args=(VarSort("btree"), VarSort("dtype")),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ #[ _ ]",
        impl=_exact_impl,
        level="rep",
        doc="B-tree exact-match query",
    )
    builder.op(
        "point_search",
        quantifiers=(lsd_q,),
        args=(VarSort("lsdtree"), TypeSort(POINT_T)),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ _ #",
        impl=_point_search_impl,
        level="rep",
        doc="all tuples whose rectangle contains the query point",
    )
    builder.op(
        "overlap_search",
        quantifiers=(lsd_q,),
        args=(VarSort("lsdtree"), TypeSort(RECT_T)),
        result=AppSort("stream", (VarSort("tuple"),)),
        syntax="_ _ #",
        impl=_overlap_search_impl,
        level="rep",
        doc="all tuples whose rectangle overlaps the query rectangle",
    )
    for name, sentinel in (("bottom", BOTTOM_KEY), ("top", TOP_KEY)):
        builder.op(
            name,
            quantifiers=(Quantifier("ord", ord_kind),),
            args=(),
            result=VarSort("ord"),
            impl=(lambda s: lambda ctx: s)(sentinel),
            level="rep",
            doc=f"the {name} element of any ordered domain",
        )


def _add_structure_updates(builder, btree_k, lsd_k, tidrel_k, srel_k, stream_k) -> None:
    btree3_q = Quantifier("btree", btree_k, BTREE3_PATTERN)
    btree2_q = Quantifier(
        "btree", btree_k, PApp("btree", (PVar("tuple"), PVar("f")))
    )
    lsd_q = Quantifier("lsdtree", lsd_k, LSD_PATTERN)
    tidrel_q = Quantifier("tidrel", tidrel_k, PApp("tidrel", (PVar("tuple"),)))
    srel_q = Quantifier("srel", srel_k, PApp("srel", (PVar("tuple"),)))
    stream_sort = AppSort("stream", (VarSort("tuple"),))
    stream_fun = FunSort((stream_sort,), stream_sort)

    for quantifier, var in (
        (btree3_q, "btree"),
        (btree2_q, "btree"),
        (lsd_q, "lsdtree"),
        (tidrel_q, "tidrel"),
        (srel_q, "srel"),
    ):
        builder.op(
            "empty",
            quantifiers=(quantifier,),
            args=(),
            result=VarSort(var),
            impl=_new_structure,
            level="rep",
            doc=f"an empty {var} structure of the expected type",
        )
        builder.op(
            "insert",
            quantifiers=(quantifier,),
            args=(VarSort(var), VarSort("tuple")),
            result=VarSort(var),
            impl=_insert_struct_impl,
            is_update=True,
            level="rep",
            doc=f"insert one tuple into a {var}",
        )
        builder.op(
            "stream_insert",
            quantifiers=(quantifier,),
            args=(VarSort(var), stream_sort),
            result=VarSort(var),
            impl=_stream_insert_impl,
            is_update=True,
            level="rep",
            doc=f"insert every tuple of a stream into a {var}",
        )

    for quantifier, var in ((btree3_q, "btree"), (btree2_q, "btree"), (lsd_q, "lsdtree")):
        builder.op(
            "delete",
            quantifiers=(quantifier,),
            args=(VarSort(var), stream_sort),
            result=VarSort(var),
            impl=_delete_struct_impl,
            is_update=True,
            level="rep",
            doc=f"delete every tuple of the stream from the {var} (the "
            "stream normally comes from a search on the same structure)",
        )

    for quantifier in (btree3_q, btree2_q):
        builder.op(
            "modify",
            quantifiers=(quantifier,),
            args=(VarSort("btree"), stream_sort, stream_fun),
            result=VarSort("btree"),
            impl=_modify_struct_impl,
            is_update=True,
            level="rep",
            doc="modify the streamed tuples in situ (keys must not change)",
        )
        builder.op(
            "re_insert",
            quantifiers=(quantifier,),
            args=(VarSort("btree"), stream_sort, stream_fun),
            result=VarSort("btree"),
            impl=_re_insert_struct_impl,
            is_update=True,
            level="rep",
            doc="key update: delete each streamed tuple and reinsert its "
            "modified version at the new key position",
        )


# ---------------------------------------------------------------------------
# Carriers
# ---------------------------------------------------------------------------


def _typed_instance(cls):
    def check(algebra, value, t):
        if not isinstance(value, cls):
            return False
        declared = getattr(value, "rep_type", None)
        return declared is None or declared == t

    return check


def register_rep_carriers(algebra: SecondOrderAlgebra) -> None:
    algebra.register_carrier(
        "stream",
        lambda alg, v, t: isinstance(v, Stream) and v.tuple_type == t.args[0],
    )
    algebra.register_carrier("srel", _typed_instance(SRel))
    algebra.register_carrier("tidrel", _typed_instance(TidRelation))
    algebra.register_carrier("btree", _typed_instance(BTree))
    algebra.register_carrier("mbtree", _typed_instance(BTree))
    algebra.register_carrier("lsdtree", _typed_instance(LSDTree))
    from repro.storage.tidrel import SecondaryIndex

    algebra.register_carrier("sindex", _typed_instance(SecondaryIndex))


def representation_model() -> tuple[SecondOrderSignature, SecondOrderAlgebra]:
    """A standalone representation-level signature and algebra (base + rep)."""
    builder = SignatureBuilder()
    add_base_level(builder)
    add_representation_level(builder)
    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_base_carriers(algebra)
    register_rep_carriers(algebra)
    return sos, algebra
