"""The representation and query processing level (paper Section 4).

:mod:`repro.rep.model` installs the representation type system — kinds
``ORD``, ``STREAM``, ``SREL``, ``TIDREL``, ``BTREE``, ``LSDTREE``,
``RELREP`` with the subtype order into ``relrep`` — and the execution
algebra: ``feed``, ``filter``, ``project``, ``replace``, ``collect``,
``range``, ``point_search``, ``overlap_search``, ``search_join`` plus the
structure update operators of Section 6.

:mod:`repro.rep.streams` holds the plain stream combinators the operator
implementations delegate to.
"""

from repro.rep.model import add_representation_level, representation_model, register_rep_carriers

__all__ = [
    "add_representation_level",
    "representation_model",
    "register_rep_carriers",
]
