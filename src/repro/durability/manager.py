"""Durable databases: WAL + checkpoint + recovery over one data directory.

A :class:`DurabilityManager` owns a directory holding, per *epoch* ``E``:

``wal-<E>.log``
    the statement-granular write-ahead log (:mod:`repro.durability.wal`);
``checkpoint-<E>.sos``
    a full-state snapshot — the database as a re-runnable program
    (:func:`repro.system.dump.dump_program`) behind a checksummed header
    line, so corruption is detected before a single statement replays.

The invariant recovery relies on: ``checkpoint-<E>.sos`` captures the
committed state at the moment epoch ``E`` began, and ``wal-<E>.log`` holds
exactly the statements committed *since*.  :meth:`recover` therefore
replays the newest valid checkpoint and then the committed suffix of its
WAL; any uncommitted tail (crash mid-statement, aborted atomic program,
torn frame) is discarded.

Checkpointing rolls the epoch forward crash-safely:

1. write ``checkpoint-<E+1>.tmp`` (header + dump), fsync — a crash here
   leaves a ``.tmp`` recovery ignores (``wal.checkpoint.write`` site);
2. atomically rename it to ``checkpoint-<E+1>.sos`` — the commit point of
   the checkpoint (``wal.checkpoint.swap`` fires on both sides of the
   rename, so the crash matrix covers either outcome);
3. start ``wal-<E+1>.log`` and delete the epoch-``E`` files — a crash
   before the deletions merely leaves garbage that the next checkpoint
   cleans up, since recovery always picks the highest valid epoch.

Group commit: ``group_commit=N`` fsyncs the log on every Nth commit record
(and on checkpoint/close) instead of every commit.  Appends are still
flushed to the OS per record, so a process crash loses nothing that was
acknowledged; only the machine-failure window widens — the classic
trade-off, documented in ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.durability.wal import (
    BEGIN,
    COMMIT,
    STMT,
    WalRecord,
    WriteAheadLog,
    committed_statements,
    committed_tokens,
    scan,
)
from repro.errors import SOSError
from repro.observe import Tracer
from repro.storage.io import GLOBAL_PAGES, PageManager
from repro.testing.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.sos_system import SOSSystem

CHECKPOINT_HEADER = "-- sos-checkpoint"

DEFAULT_CHECKPOINT_INTERVAL = 256
"""Committed statements between automatic checkpoints (0 disables them)."""


class RecoveryError(SOSError):
    """Recovery could not rebuild the database from the data directory."""


def _wal_path(data_dir: str, epoch: int) -> str:
    return os.path.join(data_dir, f"wal-{epoch}.log")


def _checkpoint_path(data_dir: str, epoch: int) -> str:
    return os.path.join(data_dir, f"checkpoint-{epoch}.sos")


def _epochs(data_dir: str, prefix: str, suffix: str) -> list[int]:
    found = []
    for name in os.listdir(data_dir):
        if name.startswith(prefix) and name.endswith(suffix):
            middle = name[len(prefix) : len(name) - len(suffix)]
            if middle.isdigit():
                found.append(int(middle))
    return sorted(found)


def encode_checkpoint(epoch: int, body: str) -> str:
    """The checkpoint file content: checksummed header line + dump text."""
    data = body.encode("utf-8")
    return (
        f"{CHECKPOINT_HEADER} epoch={epoch} crc32={zlib.crc32(data):08x} "
        f"bytes={len(data)}\n" + body
    )


def decode_checkpoint(text: str) -> str:
    """Validate a checkpoint file and return the dump body it carries."""
    header, _, body = text.partition("\n")
    if not header.startswith(CHECKPOINT_HEADER):
        raise RecoveryError("checkpoint file lacks the sos-checkpoint header")
    fields = dict(
        part.split("=", 1) for part in header.split() if "=" in part
    )
    data = body.encode("utf-8")
    if int(fields.get("bytes", -1)) != len(data):
        raise RecoveryError("checkpoint body length does not match its header")
    if fields.get("crc32") != f"{zlib.crc32(data):08x}":
        raise RecoveryError("checkpoint body fails its checksum")
    return body


class DurabilityManager:
    """Write-ahead logging, checkpointing and crash recovery for one
    :class:`~repro.system.sos_system.SOSSystem`.

    Attach with :meth:`attach` (``repro.api.connect(data_dir=...)`` does);
    attaching recovers the directory's state into the system and then arms
    statement logging on it.  The system calls :meth:`log_statement` before
    executing a mutating statement and :meth:`commit` after it succeeds —
    the commit does not return before the commit record is durable (flushed
    always; fsynced per the group-commit policy).
    """

    def __init__(
        self,
        data_dir: str,
        *,
        group_commit: int = 1,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        tracer: Optional[Tracer] = None,
        pages: Optional[PageManager] = None,
    ):
        if group_commit < 1:
            raise ValueError(f"group_commit must be >= 1, got {group_commit}")
        if checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0, got {checkpoint_interval}"
            )
        self.data_dir = data_dir
        self.group_commit = group_commit
        self.checkpoint_interval = checkpoint_interval
        self.tracer = tracer if tracer is not None else Tracer()
        self.pages = pages if pages is not None else GLOBAL_PAGES
        self.system: Optional["SOSSystem"] = None
        self.epoch = 0
        self.active = False
        self.replayed_statements = 0
        self.recovered_tokens: list[str] = []
        self._wal: Optional[WriteAheadLog] = None
        self._seq = 0
        self._unsynced_commits = 0
        self._since_checkpoint = 0
        self._deferred: Optional[list[int]] = None

    # ------------------------------------------------------------ attachment

    def attach(self, system: "SOSSystem") -> "DurabilityManager":
        """Recover the directory's state into ``system``, then arm logging."""
        if self.system is not None:
            raise RuntimeError("durability manager is already attached")
        if system.durability is not None:
            raise RuntimeError("system already has a durability manager")
        os.makedirs(self.data_dir, exist_ok=True)
        self.system = system
        self.recover()
        system.durability = self
        self.active = True
        return self

    # -------------------------------------------------------------- recovery

    def recover(self) -> None:
        """Rebuild the attached system's state: newest valid checkpoint,
        then the committed suffix of its WAL; open the WAL for appending
        (truncating any torn tail)."""
        assert self.system is not None
        with self.tracer.span("durability.recover"):
            checkpoints = _epochs(self.data_dir, "checkpoint-", ".sos")
            self.epoch = max(
                checkpoints + _epochs(self.data_dir, "wal-", ".log"),
                default=0,
            )
            if checkpoints and checkpoints[-1] == self.epoch:
                self._replay_checkpoint(_checkpoint_path(self.data_dir, self.epoch))
            records, _ = scan(_wal_path(self.data_dir, self.epoch))
            replay = committed_statements(records)
            for record in replay:
                fault_point("recovery.replay")
                try:
                    self.system.run_one(record.text)
                except SOSError as exc:
                    raise RecoveryError(
                        f"committed WAL statement {record.seq} failed to "
                        f"replay: {exc}"
                    ) from exc
            self.replayed_statements = len(replay)
            self.recovered_tokens = committed_tokens(records)
            self._seq = max((r.seq for r in records), default=0)
            self._since_checkpoint = len(replay)
            self._wal = WriteAheadLog(
                _wal_path(self.data_dir, self.epoch), pages=self.pages
            )
            self.tracer.emit(
                "durability.recovered",
                epoch=self.epoch,
                replayed=len(replay),
            )

    def _replay_checkpoint(self, path: str) -> None:
        from repro.system.dump import restore_program

        with open(path, "r", encoding="utf-8") as f:
            body = decode_checkpoint(f.read())
        try:
            restore_program(self.system, body)
        except SOSError as exc:
            raise RecoveryError(f"checkpoint replay failed: {exc}") from exc

    # --------------------------------------------------------------- logging

    def log_statement(self, text: str) -> int:
        """Append the begin/stmt records for one statement about to
        execute; returns its log sequence number."""
        assert self._wal is not None
        self._seq += 1
        seq = self._seq
        with self.tracer.span("wal.append", seq=seq):
            self._wal.append(WalRecord(BEGIN, seq))
            self._wal.append(WalRecord(STMT, seq, text))
        return seq

    def commit(self, seq: int, *, token: Optional[str] = None) -> None:
        """Make statement ``seq`` durable: append its commit record and
        fsync per the group-commit policy.  Inside :meth:`deferred` (an
        atomic program), the record is held back until the program commits.

        ``token`` stamps the commit record with the transaction's
        idempotency token (see :class:`~repro.durability.wal.WalRecord`);
        the MVCC engine passes it on the *last* statement of a
        transaction, so recovery rebuilds the commit-outcome journal."""
        if self._deferred is not None:
            self._deferred.append(seq)
            return
        self._commit_records([seq], token=token)
        self._maybe_checkpoint()

    def _commit_records(
        self, seqs: list[int], *, token: Optional[str] = None
    ) -> None:
        assert self._wal is not None
        with self.tracer.span("wal.commit", statements=len(seqs)):
            for seq in seqs:
                self._wal.append(
                    WalRecord(COMMIT, seq, token=token if seq == seqs[-1] else None)
                )
            self._unsynced_commits += len(seqs)
            if self._unsynced_commits >= self.group_commit:
                self._wal.sync()
                self._unsynced_commits = 0
        self._since_checkpoint += len(seqs)

    @contextmanager
    def deferred(self) -> Iterator[None]:
        """Scope for an atomic program: commit records for its statements
        are written (and fsynced) together on clean exit, and dropped — so
        recovery discards the whole program — on failure."""
        if self._deferred is not None:
            raise RuntimeError("deferred commit scope is already open")
        self._deferred = []
        try:
            pending = self._deferred
            yield
        except BaseException:
            self._deferred = None
            raise
        else:
            self._deferred = None
            if pending:
                self._commit_records(pending)
                self._maybe_checkpoint()

    # ------------------------------------------------------------ checkpoint

    def _maybe_checkpoint(self) -> None:
        if (
            self.checkpoint_interval
            and self._since_checkpoint >= self.checkpoint_interval
            and self.system is not None
            and self.system.database.transaction is None
        ):
            self.checkpoint()

    def checkpoint(self) -> int:
        """Snapshot the committed state and truncate the log (epoch roll).

        Returns the new epoch.  Must not run mid-transaction — the dump
        would capture uncommitted state."""
        assert self.system is not None and self._wal is not None
        if self.system.database.transaction is not None:
            raise RuntimeError("cannot checkpoint inside an open transaction")
        from repro.system.dump import dump_program

        with self.tracer.span("wal.checkpoint", epoch=self.epoch + 1):
            self._wal.sync()
            self._unsynced_commits = 0
            new_epoch = self.epoch + 1
            body = encode_checkpoint(new_epoch, dump_program(self.system.database))
            tmp = _checkpoint_path(self.data_dir, new_epoch) + ".tmp"
            data = body.encode("utf-8")
            half = max(1, len(data) // 2)
            with open(tmp, "wb") as f:
                f.write(data[:half])
                f.flush()
                # Torn-checkpoint site: half the snapshot is on disk under
                # the .tmp name recovery ignores.
                fault_point("wal.checkpoint.write")
                f.write(data[half:])
                f.flush()
                os.fsync(f.fileno())
            self.pages.log_write(len(data))
            self.pages.fsync()
            # Crash before the rename: the old epoch stays authoritative.
            fault_point("wal.checkpoint.swap")
            os.replace(tmp, _checkpoint_path(self.data_dir, new_epoch))
            # Crash after the rename: the new checkpoint is authoritative
            # and its WAL simply does not exist yet (nothing to replay).
            fault_point("wal.checkpoint.swap")
            old_wal, old_epoch = self._wal, self.epoch
            self.epoch = new_epoch
            self._wal = WriteAheadLog(
                _wal_path(self.data_dir, new_epoch), pages=self.pages
            )
            self._wal.sync()
            old_wal.close(sync=False)
            self._remove_stale(keep=new_epoch)
            self._since_checkpoint = 0
            self.tracer.emit("durability.checkpoint", epoch=new_epoch)
        return new_epoch

    def _remove_stale(self, keep: int) -> None:
        """Delete files of epochs before ``keep`` (best-effort: a crash
        leaves garbage the next checkpoint retries, never lost state)."""
        for epoch in _epochs(self.data_dir, "checkpoint-", ".sos"):
            if epoch < keep:
                _unlink_quietly(_checkpoint_path(self.data_dir, epoch))
        for epoch in _epochs(self.data_dir, "wal-", ".log"):
            if epoch < keep:
                _unlink_quietly(_wal_path(self.data_dir, epoch))
        for name in os.listdir(self.data_dir):
            if name.endswith(".sos.tmp"):
                _unlink_quietly(os.path.join(self.data_dir, name))

    # -------------------------------------------------------------- lifecycle

    def flush(self) -> None:
        """Fsync any commit records the group-commit policy left pending."""
        if self._wal is not None and self._unsynced_commits:
            self._wal.sync()
            self._unsynced_commits = 0

    def close(self) -> None:
        """Flush and close the log; the manager is unusable afterwards."""
        self.active = False
        if self._wal is not None:
            self._wal.close(sync=True)
            self._wal = None

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        return self._wal

    def __repr__(self) -> str:
        state = "active" if self.active else "closed"
        return (
            f"<DurabilityManager dir={self.data_dir!r} epoch={self.epoch} "
            f"{state}>"
        )


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
