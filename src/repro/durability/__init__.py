"""Durable databases: write-ahead log, checkpoints, crash recovery.

Opt in through the public API::

    from repro.api import connect

    db = connect(data_dir="./mydb")      # recovers, then logs every mutation
    db.run('create cities : rel(city)')  # durable once run() returns
    db.checkpoint()                      # snapshot + truncate the log
    db.close()

See ``docs/DURABILITY.md`` for the WAL format, the checkpoint protocol and
the recovery algorithm, and ``tests/test_crash_matrix.py`` for the fault
matrix that enforces them.
"""

from repro.durability.manager import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DurabilityManager,
    RecoveryError,
)
from repro.durability.wal import WalError, WalRecord, WriteAheadLog

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DurabilityManager",
    "RecoveryError",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
]
