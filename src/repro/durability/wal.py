"""The write-ahead log: a statement-granular logical redo log.

Durability through the language itself (the same initial-algebra idea the
dump module exploits): the WAL records the *source text* of every mutating
statement, so recovery is just re-execution.  Each executed statement
appends three records —

``begin(seq)``
    the statement was admitted for execution;
``stmt(seq, text)``
    its source text (the logical redo payload);
``commit(seq)``
    execution succeeded and the statement's effects are to survive a crash.

A statement whose ``commit`` record never reached the log (a crash
mid-execution, a rolled-back statement, an aborted atomic program) is
discarded by recovery — the begin/stmt records are simply dead weight in
the log until the next checkpoint truncates them.

On-disk format: each record is length-prefixed and CRC-checksummed::

    +----------------+----------------+------------------+
    | length (u32le) | crc32 (u32le)  | payload bytes    |
    +----------------+----------------+------------------+

The payload is a compact JSON object (``{"t": "b"|"s"|"c", "n": seq}``,
plus ``"x"`` — the statement text — on ``stmt`` records).  A torn tail
(half-written frame after a crash) fails the length or CRC check;
:func:`scan` reports the last good offset so the opener can truncate the
file back to a clean record boundary.

All file writes are accounted through :mod:`repro.storage.io`
(``PageManager.log_write`` / ``PageManager.fsync``) and — when metric
collection is armed — through the ``wal.appends`` / ``wal.bytes`` /
``wal.fsyncs`` observe counters, so durability shows up in the same
benchmark and trace machinery as the storage structures.  With the
process-wide :mod:`repro.telemetry` registry enabled (a running server),
the same sites additionally feed the ``wal.frames`` / ``wal.bytes`` /
``wal.fsyncs`` lifetime counters and the ``wal.fsync_seconds`` latency
histogram.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

from repro import observe, telemetry
from repro.errors import SOSError
from repro.storage.io import GLOBAL_PAGES, PageManager
from repro.testing.faults import fault_point

_HEADER = struct.Struct("<II")
"""Frame header: payload length, CRC32 of the payload."""

MAX_RECORD_BYTES = 16 * 1024 * 1024
"""Upper bound on a single record; a larger claimed length is corruption."""

BEGIN = "b"
STMT = "s"
COMMIT = "c"


class WalError(SOSError):
    """The write-ahead log is unusable (corrupt beyond the torn tail)."""


@dataclass(slots=True)
class WalRecord:
    """One decoded WAL record.

    ``token`` rides on ``commit`` records only: the client-supplied
    idempotency token of the transaction the commit completed.  Recovery
    collects these into the commit-outcome journal so a client retrying a
    commit whose acknowledgement was lost — even across a server restart —
    observes the original outcome instead of re-applying.
    """

    type: str
    seq: int
    text: Optional[str] = None
    token: Optional[str] = None

    def encode(self) -> bytes:
        payload: dict = {"t": self.type, "n": self.seq}
        if self.text is not None:
            payload["x"] = self.text
        if self.token is not None:
            payload["k"] = self.token
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "WalRecord":
        doc = json.loads(payload.decode("utf-8"))
        return cls(doc["t"], doc["n"], doc.get("x"), doc.get("k"))


def scan(path: str) -> tuple[list[WalRecord], int]:
    """Read every complete record of the log at ``path``.

    Returns the decoded records and the offset of the first byte past the
    last *valid* record.  A short header, an over-long claimed length, a
    short payload or a CRC mismatch all end the scan — that is the torn
    tail a crash mid-append leaves behind, and the caller truncates the
    file back to the reported offset before appending again.
    """
    records: list[WalRecord] = []
    good = 0
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return records, 0
    offset = 0
    while offset + _HEADER.size <= len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(WalRecord.decode(payload))
        except (ValueError, KeyError):
            break
        offset = end
        good = end
    return records, good


def committed_statements(records: list[WalRecord]) -> list[WalRecord]:
    """The ``stmt`` records whose sequence number has a ``commit`` record,
    in log order — exactly what recovery replays."""
    committed = {r.seq for r in records if r.type == COMMIT}
    return [r for r in records if r.type == STMT and r.seq in committed]


def committed_tokens(records: list[WalRecord]) -> list[str]:
    """The idempotency tokens carried by ``commit`` records, in log
    order — what recovery feeds back into the commit-outcome journal."""
    return [
        r.token for r in records if r.type == COMMIT and r.token is not None
    ]


class WriteAheadLog:
    """An append handle over one WAL file.

    Appends are flushed to the OS immediately (a process crash never loses
    an acknowledged flush); :meth:`sync` forces them to stable storage.
    The ``wal.append`` fault site fires *mid-frame* — after the first half
    of the record bytes has been flushed — so crash tests exercise genuine
    torn-tail repair, and ``wal.fsync`` fires before the ``fsync`` call.
    """

    def __init__(self, path: str, pages: Optional[PageManager] = None):
        self.path = path
        self.pages = pages if pages is not None else GLOBAL_PAGES
        _, good = scan(path)
        if os.path.exists(path) and os.path.getsize(path) > good:
            with open(path, "r+b") as f:
                f.truncate(good)
        self._f = open(path, "ab")
        self.appended = 0
        self.synced = 0

    # ------------------------------------------------------------------ write

    def append(self, record: WalRecord) -> None:
        payload = record.encode()
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        half = max(1, len(frame) // 2)
        self._f.write(frame[:half])
        self._f.flush()
        # Torn-write site: the first half of the frame is on the OS buffer,
        # the rest is not — recovery must truncate it away.
        fault_point("wal.append")
        self._f.write(frame[half:])
        self._f.flush()
        self.appended += 1
        self.pages.log_write(len(frame))
        if observe.ENABLED:
            observe.incr("wal.appends")
            observe.incr("wal.bytes", len(frame))
        if telemetry.ENABLED:
            telemetry.incr("wal.frames")
            telemetry.incr("wal.bytes", len(frame))

    def sync(self) -> None:
        """Force appended records to stable storage (the commit fsync)."""
        fault_point("wal.fsync")
        start = time.perf_counter()
        os.fsync(self._f.fileno())
        elapsed = time.perf_counter() - start
        self.synced += 1
        self.pages.fsync()
        if observe.ENABLED:
            observe.incr("wal.fsyncs")
        if telemetry.ENABLED:
            telemetry.incr("wal.fsyncs")
            telemetry.observe_value("wal.fsync_seconds", elapsed)

    # ------------------------------------------------------------------- read

    def records(self) -> Iterator[WalRecord]:
        self._f.flush()
        records, _ = scan(self.path)
        return iter(records)

    # -------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._f.closed

    def close(self, sync: bool = True) -> None:
        if self._f.closed:
            return
        self._f.flush()
        if sync:
            os.fsync(self._f.fileno())
            self.pages.fsync()
        self._f.close()

    def __repr__(self) -> str:
        return f"<WriteAheadLog {self.path!r} appended={self.appended}>"
