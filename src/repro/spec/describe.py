"""Render a second-order signature back into specification-style text.

The inverse of :func:`repro.spec.parse_spec` for inspection: prints kinds,
type constructors, subtype rules and operator specifications in the paper's
layout.  Used by the REPL's ``\\ops`` command and handy for verifying what a
composed system actually contains.
"""

from __future__ import annotations

from repro.core.operators import OperatorSpec, TypeOperator
from repro.core.patterns import (
    PAny,
    PApp,
    PBind,
    PFun,
    PList,
    PLit,
    PSym,
    PTuple,
    PVar,
    TypePattern,
)
from repro.core.sorts import format_sort
from repro.core.sos import SecondOrderSignature


def describe_signature(sos: SecondOrderSignature, level: str | None = None) -> str:
    """A specification-style listing of the signature.

    ``level`` filters constructors/operators to one of ``model`` / ``rep`` /
    ``hybrid``; ``None`` lists everything.
    """
    lines: list[str] = []
    ts = sos.type_system
    lines.append("kinds " + ", ".join(k.name for k in ts.kinds))
    lines.append("")
    lines.append("type constructors")
    for ctor in ts.constructors:
        if level is not None and ctor.level != level:
            continue
        if ctor.is_constant:
            lines.append(f"    -> {ctor.result_kind.name:<10} {ctor.name}")
        else:
            args = " x ".join(format_sort(s) for s in ctor.arg_sorts)
            lines.append(f"    {args} -> {ctor.result_kind.name}   {ctor.name}")
    if sos.subtypes.rules:
        lines.append("")
        lines.append("subtypes")
        for rule in sos.subtypes.rules:
            lines.append(
                f"    {format_pattern(rule.sub)} < {format_pattern(rule.sup)}"
            )
    lines.append("")
    lines.append("operators")
    for spec in sos.all_operators():
        if level is not None and spec.level != level:
            continue
        lines.append("    " + describe_operator(spec))
    if sos.families:
        lines.append(
            "    forall tuple: tuple(list) in TUPLE. forall (a, d) in list. "
            "tuple -> d   a   -- attribute access"
        )
    return "\n".join(lines)


def describe_operator(spec: OperatorSpec) -> str:
    quantifiers = " ".join(_quantifier_text(q) for q in spec.quantifiers)
    args = " x ".join(format_sort(s) for s in spec.arg_sorts)
    arrow = "~>" if spec.is_update else "->"
    if isinstance(spec.result, TypeOperator):
        result = f"{spec.result.name}: {spec.result.result_kind.name}"
    else:
        result = format_sort(spec.result)
    syntax = f"   syntax {spec.syntax.text}" if spec.syntax is not None else ""
    head = f"{quantifiers} " if quantifiers else ""
    if args:
        return f"{head}{args} {arrow} {result}   {spec.name}{syntax}"
    return f"{head}{arrow} {result}   {spec.name}{syntax}"


def _quantifier_text(q) -> str:
    kind = q.kind.name if hasattr(q.kind, "name") else format_sort(q.kind)
    if q.pattern is None:
        return f"forall {q.var} in {kind}."
    return f"forall {q.var}: {format_pattern(q.pattern)} in {kind}."


def format_pattern(p: TypePattern) -> str:
    if isinstance(p, PVar):
        return p.name
    if isinstance(p, PBind):
        return f"{p.name}: {format_pattern(p.pattern)}"
    if isinstance(p, PApp):
        if not p.args:
            return p.constructor
        return p.constructor + "(" + ", ".join(format_pattern(a) for a in p.args) + ")"
    if isinstance(p, PTuple):
        return "(" + ", ".join(format_pattern(i) for i in p.items) + ")"
    if isinstance(p, PList):
        return format_pattern(p.element) + "+"
    if isinstance(p, PLit):
        return repr(p.value)
    if isinstance(p, PSym):
        return p.name
    if isinstance(p, PFun):
        args = " x ".join(format_pattern(a) for a in p.args)
        return f"({args} -> {format_pattern(p.result)})"
    if isinstance(p, PAny):
        return "_"
    raise TypeError(f"not a pattern: {p!r}")
