"""The textual specification language (paper Sections 2.1, 2.2 and 4).

A specification has the section structure the paper gives::

    kinds IDENT, DATA, TUPLE, REL

    type constructors
        -> IDENT                         ident
        -> DATA                          int, real, string, bool
        (ident x DATA)+ -> TUPLE         tuple
        TUPLE -> REL                     rel

    subtypes
        srel(tuple) < relrep(tuple)

    operators
        forall data in DATA.
            data x data -> bool          =, !=, <, <=, >=, >   syntax ( _ # _ )
        forall rel: rel(tuple) in REL.
            rel x (tuple -> bool) -> rel  select               syntax _ #[ _ ]

:func:`parse_spec` turns such text into a
:class:`~repro.core.sos.SecondOrderSignature` — specifications really are
*data* for the generic parser/optimizer component, the paper's central
engineering claim.  Semantics (operator implementations, type-operator
functions, dependent constructor specs) are attached by name through the
``impls`` / ``type_operators`` / ``constructor_specs`` arguments, mirroring
"a second-order algebra will be provided by implementation".
"""

from repro.spec.describe import describe_operator, describe_signature
from repro.spec.parser import parse_spec

__all__ = ["parse_spec", "describe_signature", "describe_operator"]
