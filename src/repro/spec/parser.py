"""Parser for the textual specification language.

Sections: ``kinds``, ``type constructors``, ``subtypes``, ``operators``.
The ASCII rendering of the paper's notation:

* ``x`` separates argument sorts, ``->`` the result (``~>`` marks update
  functions);
* ``s+`` is a list sort, ``(s1 | s2)`` a union sort, ``(s1 x s2)`` a
  product sort, ``(s1 x ... -> s)`` a function sort;
* ``forall v in KIND.`` and ``forall v: pattern in KIND.`` introduce
  quantifiers; a ``forall`` line replaces the current quantifier group;
* a constructor argument may bind a name for later positions:
  ``tuple: TUPLE x (tuple -> ORD) -> BTREE  btree``;
* an operator result may be a type operator: ``... -> rel: REL  join``
  (the compute function comes from the ``type_operators`` mapping);
* ``syntax <pattern>`` at the end of an operator line sets the concrete
  syntax (default: prefix).

Lower-case names resolve, in order, to: a quantifier variable, a bound
constructor argument, a declared constant type; upper-case names must be
kinds.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Callable, Mapping, Optional

from repro.core.constructors import ConstructorSpec
from repro.core.operators import Quantifier, TypeOperator
from repro.core.patterns import PApp, PVar, TypePattern
from repro.core.sorts import (
    AppSort,
    BindSort,
    FunSort,
    KindSort,
    ListSort,
    ProductSort,
    Sort,
    TypeSort,
    UnionSort,
    VarSort,
)
from repro.core.sos import SecondOrderSignature, SignatureBuilder
from repro.core.types import TypeApp
from repro.errors import ParseError, SpecificationError
from repro.lang.lexer import Token, tokenize

SECTIONS = ("kinds", "type constructors", "constructor specs", "subtypes", "operators")

#: One buffered specification line: ``(lineno, column_offset, text)``.
_Line = tuple[int, int, str]

#: A trailing ``-- comment`` (whitespace-delimited, so ``->`` stays intact).
_TRAILING_COMMENT = re.compile(r"\s--(\s.*)?$")


def parse_spec(
    text: str,
    builder: Optional[SignatureBuilder] = None,
    impls: Optional[Mapping[str, Callable]] = None,
    type_operators: Optional[Mapping[str, Callable]] = None,
    constructor_specs: Optional[Mapping[str, ConstructorSpec]] = None,
    level: str = "model",
) -> SecondOrderSignature:
    """Parse a specification into (or on top of) a signature.

    ``impls`` maps operator names to implementation callables (shared by all
    functionalities of the name); ``type_operators`` maps operator names to
    type-operator compute functions; ``constructor_specs`` maps constructor
    names to their dependent constraints.
    """
    parser = _SpecParser(
        builder if builder is not None else SignatureBuilder(),
        impls or {},
        type_operators or {},
        constructor_specs or {},
        level,
    )
    parser.parse(text)
    return parser.builder.sos


class _SpecParser:
    def __init__(self, builder, impls, type_operators, constructor_specs, level):
        self.builder = builder
        self.impls = impls
        self.type_operators = type_operators
        self.constructor_specs = constructor_specs
        self.level = level
        self.quantifiers: list[Quantifier] = []

    # ------------------------------------------------------------- sections

    def parse(self, text: str) -> None:
        # Each buffered entry is ``(lineno, column_offset, text)``; token
        # positions are rebased onto the original source so every error
        # (and every recorded span) points into ``text``.
        section = None
        buffer: list[_Line] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("--"):
                continue
            raw = _TRAILING_COMMENT.sub("", raw)
            stripped = raw.strip()
            lowered = stripped.lower()
            matched = None
            for name in SECTIONS:
                if lowered == name or lowered.startswith(name):
                    remainder = stripped[len(name) :].strip()
                    # "kinds A, B" keeps its payload on the same line
                    matched = (name, remainder)
                    break
            if matched is not None and (
                matched[0] != "kinds" or section is None or not raw[:1].isspace()
            ):
                self._flush(section, buffer)
                section, remainder = matched
                if remainder:
                    buffer = [(lineno, raw.index(remainder), remainder)]
                else:
                    buffer = []
            else:
                if section is None:
                    column = len(raw) - len(raw.lstrip()) + 1
                    raise ParseError(
                        f"text before any section: {stripped}", lineno, column
                    )
                buffer.append((lineno, 0, raw))
        self._flush(section, buffer)

    def _flush(self, section: Optional[str], buffer: list["_Line"]) -> None:
        entries = [e for e in buffer if e[2].strip()]
        if section is None or not entries:
            return
        if section == "kinds":
            self._parse_kinds(" ".join(e[2] for e in entries))
        elif section == "type constructors":
            for entry in entries:
                self._parse_constructor(entry)
        elif section == "constructor specs":
            raise SpecificationError(
                "textual constructor specs are not supported; pass them via "
                "the constructor_specs mapping"
            )
        elif section == "subtypes":
            for entry in entries:
                self._parse_subtype(entry)
        elif section == "operators":
            self.quantifiers = []
            for entry in entries:
                self._parse_operator_line(entry)

    def _toks(self, entry: "_Line") -> "_Tokens":
        """Tokenize one buffered line, rebasing token positions onto the
        original specification text."""
        lineno, offset, text = entry
        rebased = [
            replace(tok, line=lineno, column=tok.column + offset)
            for tok in tokenize(text)
        ]
        return _Tokens(rebased)

    # ----------------------------------------------------------------- kinds

    def _parse_kinds(self, text: str) -> None:
        for name in text.replace(",", " ").split():
            self.builder.kind(name)

    # ----------------------------------------------------------- constructors

    def _parse_constructor(self, entry: "_Line") -> None:
        toks = self._toks(entry)
        start = toks.peek()
        arg_sorts: list[Sort] = []
        bound: dict[str, Sort] = {}
        if toks.peek().text != "->":
            arg_sorts = self._sort_product(toks, vars_allowed=bound)
        toks.expect("->")
        kind_name = toks.name("result kind")
        kind = self.builder.kind(kind_name)
        names = [toks.name("constructor name")]
        while toks.peek().text == ",":
            toks.next()
            names.append(toks.name("constructor name"))
        toks.end()
        for name in names:
            # Constructor specs may be keyed by (name, arity) — the two
            # B-tree variants share a name but only the attr variant has
            # the dependent constraint — or just by name.
            spec = self.constructor_specs.get((name, len(arg_sorts)))
            if spec is None:
                spec = self.constructor_specs.get(name)
            self.builder.constructor(
                name,
                arg_sorts,
                kind,
                spec=spec,
                level=self.level,
                span=(start.line, start.column),
            )

    # --------------------------------------------------------------- subtypes

    def _parse_subtype(self, entry: "_Line") -> None:
        toks = self._toks(entry)
        start = toks.peek()
        sub = self._pattern(toks)
        toks.expect("<")
        sup = self._pattern(toks)
        toks.end()
        self.builder.subtype(sub, sup, span=(start.line, start.column))

    def _pattern(self, toks: "_Tokens") -> TypePattern:
        name = toks.name("pattern")
        if toks.peek().text != "(":
            return PVar(name)
        toks.next()
        args = [self._pattern(toks)]
        while toks.peek().text == ",":
            toks.next()
            args.append(self._pattern(toks))
        toks.expect(")")
        return PApp(name, tuple(args))

    # -------------------------------------------------------------- operators

    def _parse_operator_line(self, entry: "_Line") -> None:
        lineno, offset, line = entry
        if line.strip().startswith("forall"):
            self.quantifiers = self._parse_quantifiers(entry)
            return
        # Split off a trailing "syntax <pattern>".
        syntax: Optional[str] = None
        if " syntax " in line:
            line, _, syntax_text = line.rpartition(" syntax ")
            syntax = syntax_text.strip()
            entry = (lineno, offset, line)
        elif line.strip().startswith("syntax "):
            column = offset + len(line) - len(line.lstrip()) + 1
            raise ParseError(
                f"syntax clause without an operator: {line.strip()}",
                lineno,
                column,
            )
        toks = self._toks(entry)
        start = toks.peek()
        arg_sorts: list[Sort] = []
        is_update = False
        if toks.peek().text not in ("->", "~>"):
            arg_sorts = self._sort_product(toks, vars_allowed=None)
        arrow = toks.next()
        if arrow.text == "~>":
            is_update = True
        elif arrow.text != "->":
            raise ParseError(
                f"expected -> or ~> in operator line: {line.strip()}",
                arrow.line,
                arrow.column,
            )
        result = self._operator_result(toks)
        names = [self._op_name(toks)]
        while toks.peek().text == ",":
            toks.next()
            names.append(self._op_name(toks))
        toks.end()
        for name in names:
            final_result = result
            if isinstance(result, TypeOperator):
                compute = self.type_operators.get(name)
                if compute is None:
                    raise SpecificationError(
                        f"operator {name} declares a type operator result; "
                        "pass its compute function via type_operators"
                    )
                final_result = TypeOperator(name, result.result_kind, compute)
            try:
                self.builder.op(
                    name,
                    quantifiers=tuple(self.quantifiers),
                    args=tuple(arg_sorts),
                    result=final_result,
                    syntax=syntax,
                    impl=self.impls.get(name),
                    is_update=is_update,
                    level=self.level,
                    span=(start.line, start.column),
                )
            except ValueError as exc:
                # Malformed syntax patterns surface as positioned errors.
                raise ParseError(str(exc), start.line, start.column) from exc

    def _op_name(self, toks: "_Tokens") -> str:
        tok = toks.next()
        if tok.kind in ("NAME", "KEYWORD"):
            return tok.text
        if tok.kind == "SYM" and tok.text in ("=", "<", "<=", ">=", ">", "!=", "+", "-", "*", "/"):
            return tok.text
        raise ParseError(f"expected an operator name, got {tok}", tok.line, tok.column)

    def _operator_result(self, toks: "_Tokens"):
        """Either a sort, or ``var: KIND`` denoting a type operator."""
        if (
            toks.peek().kind == "NAME"
            and toks.peek(1).text == ":"
            and toks.peek(2).kind == "NAME"
            and self.builder.sos.type_system.has_kind_named(toks.peek(2).text)
        ):
            toks.next()
            toks.next()
            kind = self.builder.kind(toks.name("result kind"))
            # placeholder; the compute function is bound per operator name
            return TypeOperator("<pending>", kind, lambda *a: None)
        return self._sort_atom_with_suffix(toks, vars_allowed=None)

    def _parse_quantifiers(self, entry: "_Line") -> list[Quantifier]:
        quantifiers = []
        toks = self._toks(entry)
        while toks.peek().kind != "EOF":
            tok = toks.peek()
            word = toks.name("forall")
            if word != "forall":
                raise ParseError(
                    f"expected forall, got {word}", tok.line, tok.column
                )
            var = toks.name("quantified variable")
            pattern: Optional[TypePattern] = None
            if toks.peek().text == ":":
                toks.next()
                pattern = self._pattern_tokens(toks)
            tok = toks.next()
            if tok.text != "in":
                raise ParseError(
                    "expected 'in' in quantifier", tok.line, tok.column
                )
            kind = self._quantifier_kind(toks)
            quantifiers.append(Quantifier(var, kind, pattern))
            if toks.peek().text == ".":
                toks.next()
        return quantifiers

    def _quantifier_kind(self, toks: "_Tokens"):
        first = self.builder.kind(toks.name("kind"))
        if toks.peek().text != "|":
            return first
        alternatives = [KindSort(first)]
        while toks.peek().text == "|":
            toks.next()
            alternatives.append(KindSort(self.builder.kind(toks.name("kind"))))
        return UnionSort(tuple(alternatives))

    def _pattern_tokens(self, toks: "_Tokens") -> TypePattern:
        name = toks.name("pattern")
        if toks.peek().text != "(":
            return PVar(name)
        toks.next()
        args = [self._pattern_tokens(toks)]
        while toks.peek().text == ",":
            toks.next()
            args.append(self._pattern_tokens(toks))
        toks.expect(")")
        return PApp(name, tuple(args))

    # ------------------------------------------------------------------ sorts

    def _sort_product(
        self, toks: "_Tokens", vars_allowed: Optional[dict]
    ) -> list[Sort]:
        """``s1 x s2 x ...`` — the argument sorts of a constructor/operator."""
        sorts = [self._sort_atom_with_suffix(toks, vars_allowed)]
        while toks.peek().kind == "NAME" and toks.peek().text == "x":
            toks.next()
            sorts.append(self._sort_atom_with_suffix(toks, vars_allowed))
        return sorts

    def _sort_atom_with_suffix(self, toks, vars_allowed) -> Sort:
        sort = self._sort_atom(toks, vars_allowed)
        while toks.peek().text == "+":
            toks.next()
            sort = ListSort(sort)
        return sort

    def _sort_atom(self, toks, vars_allowed) -> Sort:
        tok = toks.peek()
        if tok.text == "(":
            return self._paren_sort(toks, vars_allowed)
        name = toks.name("sort")
        # Binding form: "tuple: TUPLE" in constructor signatures.
        if vars_allowed is not None and toks.peek().text == ":":
            toks.next()
            inner = self._sort_atom_with_suffix(toks, vars_allowed)
            vars_allowed[name] = inner
            return BindSort(name, inner)
        return self._resolve_name(name, toks, vars_allowed, tok)

    def _resolve_name(self, name: str, toks, vars_allowed, tok=None) -> Sort:
        ts = self.builder.sos.type_system
        quantified = {q.var for q in self.quantifiers}
        for q in self.quantifiers:
            if q.pattern is not None:
                from repro.core.patterns import pattern_variables

                quantified |= pattern_variables(q.pattern)
        is_var = name in quantified or (
            vars_allowed is not None and name in vars_allowed
        )
        if toks.peek().text == "(":
            # Constructor application over sorts: stream(tuple) etc.
            toks.next()
            args = [self._sort_atom_with_suffix(toks, vars_allowed)]
            while toks.peek().text == ",":
                toks.next()
                args.append(self._sort_atom_with_suffix(toks, vars_allowed))
            toks.expect(")")
            if all(isinstance(a, TypeSort) for a in args):
                return TypeSort(TypeApp(name, tuple(a.type for a in args)))
            return AppSort(name, tuple(args))
        if is_var:
            return VarSort(name)
        if ts.has_kind_named(name):
            return KindSort(ts.kind(name))
        if ts.has_constructor(name):
            return TypeSort(TypeApp(name))
        raise ParseError(
            f"unknown sort name: {name}",
            tok.line if tok is not None else None,
            tok.column if tok is not None else None,
        )

    def _paren_sort(self, toks, vars_allowed) -> Sort:
        toks.expect("(")
        if toks.peek().text == "->":
            toks.next()
            result = self._sort_atom_with_suffix(toks, vars_allowed)
            toks.expect(")")
            return FunSort((), result)
        parts = [self._sort_atom_with_suffix(toks, vars_allowed)]
        connective = None
        while toks.peek().text in ("|",) or (
            toks.peek().kind == "NAME" and toks.peek().text == "x"
        ):
            tok = toks.next()
            kind = "union" if tok.text == "|" else "product"
            if connective is None:
                connective = kind
            elif connective != kind:
                raise ParseError(
                    "cannot mix 'x' and '|' without parentheses",
                    tok.line,
                    tok.column,
                )
            parts.append(self._sort_atom_with_suffix(toks, vars_allowed))
        if toks.peek().text == "->":
            arrow = toks.next()
            result = self._sort_atom_with_suffix(toks, vars_allowed)
            toks.expect(")")
            if connective == "union":
                raise ParseError(
                    "function sort over a union is not supported",
                    arrow.line,
                    arrow.column,
                )
            return FunSort(tuple(parts), result)
        toks.expect(")")
        if len(parts) == 1:
            return parts[0]
        if connective == "union":
            return UnionSort(tuple(parts))
        return ProductSort(tuple(parts))


class _Tokens:
    """A tiny token cursor."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, got {tok}", tok.line, tok.column)
        return tok

    def name(self, what: str) -> str:
        tok = self.next()
        if tok.kind not in ("NAME", "KEYWORD"):
            raise ParseError(f"expected {what}, got {tok}", tok.line, tok.column)
        return tok.text

    def end(self) -> None:
        tok = self.peek()
        if tok.kind != "EOF":
            raise ParseError(f"trailing input: {tok}", tok.line, tok.column)
