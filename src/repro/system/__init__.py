"""The "SOS optimizer" front end (paper Sections 1 and 6).

:class:`~repro.system.sos_system.SOSSystem` accepts mixed programs of
model, representation and hybrid statements, classifies them, translates
model-level updates and queries to the representation level through the
rule-based optimizer, and executes the result.

:func:`build_relational_system` assembles the complete relational stack —
base + relational model + representation model + catalog — with the
standard rule set.  The public entry point is :func:`repro.api.connect`,
which wraps it in a :class:`~repro.api.Session`.
"""

from repro.system.dump import dump_program, restore_program
from repro.system.sos_system import (
    SOSSystem,
    SystemResult,
    build_model_interpreter,
    build_relational_database,
    build_relational_system,
)
from repro.system.transactions import (
    Savepoint,
    Transaction,
    program_transaction,
    statement_transaction,
)

__all__ = [
    "SOSSystem",
    "SystemResult",
    "Savepoint",
    "Transaction",
    "build_model_interpreter",
    "build_relational_database",
    "build_relational_system",
    "dump_program",
    "restore_program",
    "program_transaction",
    "statement_transaction",
]
