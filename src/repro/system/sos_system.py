"""The SOS system: parse, classify, optimize, execute (paper Section 6).

Processing of mixed programs follows the paper:

* ``type`` statements are processed internally;
* ``create`` / ``delete`` for *model* types are catalog management only
  (the object carries no value — its data lives in representation
  objects); representation and hybrid objects are initialized;
* updates and queries whose result type is a *model* type are transformed
  through optimization rules into equivalent representation-level
  statements, which are then executed;
* hybrid/representation statements are executed directly.

The translated statements are recorded on the :class:`SystemResult` (the
paper's ``=>``-prefixed generated statements), so a session transcript can
be compared against Section 6 line by line.

Observability (see :mod:`repro.observe` and ``docs/OBSERVABILITY.md``):
every :class:`SystemResult` carries per-phase wall-clock ``timings``
(parse / typecheck / optimize / execute); with tracing enabled
(:meth:`SOSSystem.set_tracing` or ``repro.api.connect(trace=True)``) it
also carries an :class:`~repro.observe.ExecutionMetrics` (per-operator
tuple counts, storage access counters, the simulated-I/O delta) and a
:class:`~repro.observe.RuleTrace` of the optimizer's decisions.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro import observe
from repro.catalog import (
    Database,
    add_catalog_level,
    register_catalog_carriers,
)
from repro.core.algebra import SecondOrderAlgebra, Stream
from repro.core.sos import SignatureBuilder
from repro.core.terms import Apply, ObjRef, Term, Var, format_term
from repro.core.types import Type
from repro.errors import (
    CatalogError,
    OptimizationError,
    ResourceLimitError,
    SOSError,
    UpdateError,
    wrap_statement_error,
)
from repro.lang.interpreter import Interpreter
from repro.lang.parser import (
    AnalyzeStmt,
    CreateStmt,
    DeleteStmt,
    QueryStmt,
    Statement,
    TypeStmt,
    UpdateStmt,
    split_statements,
)
from repro.models.base import add_base_level, register_base_carriers
from repro.models.relational import add_relational_level, register_relational_carriers
from repro.observe import ExecutionMetrics, RuleTrace, Tracer
from repro.optimizer import Optimizer, standard_optimizer
from repro.rep.model import add_representation_level, register_rep_carriers
from repro.storage.io import GLOBAL_PAGES
from repro.system.transactions import (
    program_transaction,
    referenced_objects,
    statement_transaction,
)


@dataclass(slots=True)
class SystemResult:
    """The outcome of one statement processed by the system.

    This is the single result shape of the public API: ``run`` returns a
    list of them, ``run_one`` and ``query`` return one.  ``timings`` maps
    pipeline phases (``parse`` / ``typecheck`` / ``optimize`` /
    ``execute`` / ``total``) to wall-clock seconds and is filled on every
    statement; ``metrics`` and ``rule_trace`` are populated only when
    metric collection is on (tracing enabled, or ``explain(analyze=True)``).
    """

    kind: str
    level: str = "hybrid"  # 'model' | 'rep' | 'hybrid'
    name: Optional[str] = None
    type: Optional[Type] = None
    value: object = None
    term: Optional[Term] = None
    translated_term: Optional[Term] = None
    translated_target: Optional[str] = None
    translated_source: Optional[str] = None
    fired: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    metrics: Optional[ExecutionMetrics] = None
    rule_trace: Optional[RuleTrace] = None

    @property
    def translated(self) -> bool:
        return self.translated_term is not None

    def generated_statement(self, concrete: bool = True) -> Optional[str]:
        """The representation-level statement the optimizer generated
        (the ``=>``-prefixed lines of the paper's Section 6 listing).

        With ``concrete=True`` (the default) the expression is rendered in
        the concrete syntax; otherwise in abstract (prefix) syntax.
        """
        if self.translated_term is None:
            return None
        if concrete and self.translated_source is not None:
            text = self.translated_source
        else:
            text = format_term(self.translated_term)
        if self.kind == "update" and self.translated_target is not None:
            return f"update {self.translated_target} := {text}"
        return f"query {text}"


# ---------------------------------------------------------------------------
# Builders (the canonical constructors; `repro.api.connect` wraps these)
# ---------------------------------------------------------------------------


def build_relational_database() -> Database:
    """The full relational stack: base + model + representation + catalog."""
    builder = SignatureBuilder()
    add_base_level(builder)
    add_relational_level(builder)
    add_representation_level(builder)
    add_catalog_level(builder)
    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_base_carriers(algebra)
    register_relational_carriers(algebra)
    register_rep_carriers(algebra)
    register_catalog_carriers(algebra)
    return Database(sos, algebra)


def build_model_interpreter() -> Interpreter:
    """A plain interpreter over the full relational stack.

    Executes *model-level* statements directly against in-memory relations
    (Section 2.4 semantics, no optimizing translation) — relations here are
    real values, not virtual objects backed by representations.  Use this
    for model-only programs, including views over relations.
    """
    return Interpreter(build_relational_database())


def build_relational_system(
    optimizer: Optional[Optimizer] = None, tracer: Optional[Tracer] = None
) -> "SOSSystem":
    """A ready-to-use system over the full relational stack, with the
    standard rules and the ``rep`` catalog created (paper: "a catalog rep
    has been created together with the database")."""
    database = build_relational_database()
    system = SOSSystem(
        database,
        optimizer if optimizer is not None else standard_optimizer(),
        tracer=tracer,
    )
    system.interpreter.run_one("create rep : catalog(ident, ident)")
    return system


class SOSSystem:
    """Mixed-program processing with optimizing translation."""

    def __init__(
        self,
        database: Database,
        optimizer: Optimizer,
        tracer: Optional[Tracer] = None,
    ):
        self.database = database
        self.optimizer = optimizer
        self.interpreter = Interpreter(database)
        self.tracer = tracer if tracer is not None else Tracer()
        self._collect = False
        self._feedback = False
        #: The attached :class:`~repro.durability.DurabilityManager`, if the
        #: system runs in durable mode (``connect(data_dir=...)``).  While
        #: attached and active, every mutating statement is written ahead to
        #: the log and acknowledged only once its commit record is durable.
        self.durability = None

    # ------------------------------------------------------------ observability

    def set_tracing(self, enabled: bool = True) -> None:
        """Toggle per-statement metric collection.

        While on, every executed statement carries ``metrics`` (operator
        tuple counts, storage counters, I/O delta) and ``rule_trace`` on
        its :class:`SystemResult`, and structured events flow through
        ``self.tracer``.  Off (the default), the only per-statement cost
        is a handful of clock reads for the phase timings.
        """
        self._collect = bool(enabled)

    @property
    def tracing(self) -> bool:
        return self._collect

    def set_feedback(self, enabled: bool = True) -> None:
        """Toggle cardinality feedback: while on (and metric collection is
        also on), measured filter selectivities of executed query plans are
        folded back into the statistics catalog
        (:func:`repro.stats.feedback.fold_observed`), so the next estimate
        of the same predicate uses observed rather than assumed fractions.
        """
        self._feedback = bool(enabled)

    @contextmanager
    def _phase(self, timings: dict[str, float], name: str) -> Iterator[None]:
        """Time a pipeline phase into ``timings`` and span it on the tracer."""
        with self.tracer.span("phase." + name):
            start = time.perf_counter()
            try:
                yield
            finally:
                timings[name] = (
                    timings.get(name, 0.0) + time.perf_counter() - start
                )

    # ------------------------------------------------------------------- API

    def run(self, source: str, atomic: bool = False) -> list[SystemResult]:
        """Process a program statement by statement.

        Each statement executes atomically (an error rolls the database
        back to the statement boundary).  With ``atomic=True`` the whole
        program is one transaction: any statement failure undoes every
        preceding statement of the program as well.

        Errors escape as :class:`~repro.errors.StatementError` — still
        instances of their original class — carrying the statement index,
        source text and pipeline phase.

        In durable mode an atomic program is also atomic *on disk*: the
        commit records of its statements are written together after the
        program transaction commits, so a crash (or failure) mid-program
        makes recovery discard the whole program.
        """
        if atomic:
            dur = self.durability
            if dur is not None and dur.active:
                with dur.deferred():
                    with program_transaction(self.database):
                        return self._run_statements(source)
            with program_transaction(self.database):
                return self._run_statements(source)
        return self._run_statements(source)

    def _run_statements(self, source: str) -> list[SystemResult]:
        results = []
        for index, chunk in enumerate(split_statements(source)):
            results.append(self._process(chunk, index))
        return results

    def run_one(self, source: str) -> SystemResult:
        return self._process(source, None)

    def _process(self, chunk: str, index: Optional[int]) -> SystemResult:
        try:
            timings: dict[str, float] = {}
            with self.tracer.span("statement", index=index):
                with self._phase(timings, "parse"):
                    statement = self.interpreter.make_parser().parse_statement(
                        chunk
                    )
                dur = self.durability
                log_seq = None
                if dur is not None and not isinstance(statement, QueryStmt):
                    if not dur.active:
                        raise CatalogError(
                            "durable session is closed; reopen with "
                            "connect(data_dir=...) to mutate it"
                        )
                    # Write-ahead: the statement text reaches the log before
                    # any in-memory mutation; the commit record is appended
                    # (and made durable per the group-commit policy) only
                    # after the statement transaction has committed.
                    with self._phase(timings, "wal"):
                        log_seq = dur.log_statement(chunk)
                result = self.execute(statement, timings=timings)
                if log_seq is not None:
                    with self._phase(timings, "wal"):
                        dur.commit(log_seq)
                    timings["total"] = sum(
                        v for k, v in timings.items() if k != "total"
                    )
                return result
        except SOSError as exc:
            raise wrap_statement_error(exc, index=index, source=chunk) from exc
        except RecursionError as exc:
            err = ResourceLimitError(
                "evaluation exceeded the Python recursion limit"
            )
            raise wrap_statement_error(err, index=index, source=chunk) from exc

    def query(self, source: str) -> SystemResult:
        """Run one query statement.

        Returns the full :class:`SystemResult` (the same shape ``run`` and
        ``run_one`` produce); the answer is its ``value`` attribute.
        """
        return self.run_one("query " + source)

    def explain(self, source: str, *, analyze: bool = False) -> dict:
        """The optimizer's answer to "what would you do with this query?".

        Parses, typechecks and optimizes a query *without executing it* and
        returns the chosen plan (concrete syntax), the rules that fired
        with the full rule trace, the estimated cost, the statement's
        level, and ``translated`` — False for representation-level
        (already-translated) and hybrid queries, which get the identity
        plan instead of an error.

        With ``analyze=True`` the query is also *executed* with metric
        collection armed, adding real row counts, per-operator tuple
        counts, storage access counters, per-phase timings, and the
        per-operator estimated-vs-actual ``cardinality`` report with
        q-errors (the classic EXPLAIN ANALYZE).

        Both forms report ``cost_counters`` — the ``cost.*`` observe
        counters bumped while estimating (statistics hits/misses, silent
        sampling fallbacks), so the basis of the estimate is visible.
        """
        from repro.core.terms import clone_term
        from repro.optimizer.cost import estimate
        from repro.stats.feedback import cardinality_report

        words = source.split()
        if not words or words[0] not in (
            "type", "create", "update", "delete", "query", "analyze",
        ):
            source = "query " + source
        statement = self.interpreter.make_parser().parse_statement(source)
        if not isinstance(statement, QueryStmt):
            raise UpdateError("explain only accepts query statements")
        if analyze:
            result = self.execute(statement, collect=True)
            plan_term = (
                result.translated_term
                if result.translated_term is not None
                else result.term
            )
            assert result.metrics is not None and result.rule_trace is not None
            cost, cost_counters = self._estimate_observed(plan_term)
            cardinality = cardinality_report(
                plan_term, self.database, result.metrics
            )
            return {
                "level": result.level,
                "translated": result.translated,
                "plan": (
                    result.translated_source
                    if result.translated_source is not None
                    else self._concrete(result.term)
                ),
                "fired": result.fired,
                "estimated_cost": cost,
                "cost_counters": cost_counters,
                "result_type": result.type,
                "analyzed": True,
                "rows": (
                    len(result.value) if isinstance(result.value, list) else None
                ),
                "value": result.value,
                "metrics": result.metrics.as_dict(),
                "cardinality": cardinality,
                "max_q_error": max(
                    (r["q_error"] for r in cardinality.values()), default=1.0
                ),
                "rule_trace": result.rule_trace.as_dict(),
                "timings": dict(result.timings),
            }
        tc = self.database.typechecker
        term = tc.check(statement.expr)
        level = self._term_level(term)
        trace = RuleTrace()
        fired: list[str] = []
        plan = term
        if level == "model":
            work = tc.check(clone_term(term))
            opt = self.optimizer.optimize(work, self.database, trace)
            plan = opt.term
            fired = opt.fired
        cost, cost_counters = self._estimate_observed(plan)
        return {
            "level": level,
            "translated": bool(fired),
            "plan": self._concrete(plan),
            "fired": fired,
            "estimated_cost": cost,
            "cost_counters": cost_counters,
            "result_type": plan.type,
            "analyzed": False,
            "rule_trace": trace.as_dict(),
        }

    def _estimate_observed(self, plan: Term) -> tuple[float, dict[str, int]]:
        """Estimate a plan's cost with collection armed, returning the cost
        and the ``cost.*`` counters the estimate bumped (stats hits/misses,
        sample fallbacks)."""
        from repro.optimizer.cost import estimate

        sink = ExecutionMetrics()
        with observe.collecting(sink):
            cost = estimate(plan, self.database, sample=True)
        counters = {
            k: v for k, v in sink.counters.items() if k.startswith("cost.")
        }
        return cost, counters

    # ------------------------------------------------------------- execution

    def execute(
        self,
        statement: Statement,
        *,
        timings: Optional[dict[str, float]] = None,
        collect: Optional[bool] = None,
    ) -> SystemResult:
        """Process one parsed statement atomically: on any error the
        database (catalog and object values) is rolled back to its
        pre-statement state.

        ``collect`` overrides the session tracing flag for this statement
        (used by ``explain(analyze=True)``).
        """
        if timings is None:
            timings = {}
        if collect is None:
            collect = self._collect
        with statement_transaction(self.database):
            if collect:
                metrics = ExecutionMetrics()
                trace = RuleTrace()
                before = GLOBAL_PAGES.stats.snapshot()
                with observe.collecting(metrics):
                    result = self._execute(statement, timings, trace)
                io = GLOBAL_PAGES.stats.delta(before)
                metrics.io = {
                    "reads": io.reads,
                    "writes": io.writes,
                    "pages_allocated": io.pages_allocated,
                }
                result.metrics = metrics
                result.rule_trace = trace
                if self._feedback and result.kind == "query":
                    from repro.stats.feedback import fold_observed

                    plan = (
                        result.translated_term
                        if result.translated_term is not None
                        else result.term
                    )
                    if plan is not None:
                        fold_observed(plan, self.database, metrics)
            else:
                result = self._execute(statement, timings, None)
        timings["total"] = sum(
            v for k, v in timings.items() if k != "total"
        )
        result.timings = timings
        if collect:
            self.tracer.emit(
                "statement.metrics",
                kind="counter",
                value=timings["total"],
                metrics=result.metrics,
                timings=timings,
            )
        return result

    def _execute(
        self,
        statement: Statement,
        timings: dict[str, float],
        trace: Optional[RuleTrace],
    ) -> SystemResult:
        if isinstance(statement, TypeStmt):
            with self._phase(timings, "execute"):
                t = self.database.define_type(statement.name, statement.type)
            return SystemResult("type", name=statement.name, type=t)
        if isinstance(statement, CreateStmt):
            with self._phase(timings, "execute"):
                obj = self.database.create(statement.name, statement.type)
                if obj.level != "model":
                    self.interpreter._auto_initialize(
                        statement.name, statement.type
                    )
            return SystemResult(
                "create", level=obj.level, name=statement.name, type=obj.type
            )
        if isinstance(statement, DeleteStmt):
            with self._phase(timings, "execute"):
                self.database.drop(statement.name)
            return SystemResult("delete", name=statement.name)
        if isinstance(statement, UpdateStmt):
            return self._execute_update(statement, timings, trace)
        if isinstance(statement, QueryStmt):
            return self._execute_query(statement, timings, trace)
        if isinstance(statement, AnalyzeStmt):
            from repro.stats.analyze import analyze_objects

            with self._phase(timings, "execute"):
                summary = analyze_objects(self.database, statement.names or None)
            return SystemResult("analyze", value=summary)
        raise TypeError(f"not a statement: {statement!r}")

    def _term_level(self, term: Term) -> str:
        """'model' if the term uses any model-level operator or object.

        Lambda-bound names shadow objects, so the walk tracks scope — a
        parameter that happens to be called like a relation is not a
        reference to it.
        """
        levels: set[str] = set()
        self._collect_levels(term, frozenset(), levels)
        if "model" in levels:
            return "model"
        if "rep" in levels:
            return "rep"
        return "hybrid"

    def _collect_levels(self, term: Term, bound: frozenset, levels: set) -> None:
        from repro.core.terms import Call, Fun, ListTerm, TupleTerm

        if isinstance(term, Apply):
            if term.resolved is not None and term.resolved.spec is not None:
                levels.add(term.resolved.spec.level)
            for a in term.args:
                self._collect_levels(a, bound, levels)
            return
        if isinstance(term, (Var, ObjRef)):
            if term.name not in bound:
                obj = self.database.objects.get(term.name)
                if obj is not None:
                    levels.add(obj.level)
            return
        if isinstance(term, Fun):
            inner = bound | {name for name, _ in term.params}
            self._collect_levels(term.body, inner, levels)
            return
        if isinstance(term, (ListTerm, TupleTerm)):
            for item in term.items:
                self._collect_levels(item, bound, levels)
            return
        if isinstance(term, Call):
            self._collect_levels(term.fn, bound, levels)
            for a in term.args:
                self._collect_levels(a, bound, levels)

    def _emit_fired(self, fired: list[str]) -> None:
        for name in fired:
            self.tracer.emit("rule.fired", rule=name)

    def _execute_update(
        self,
        statement: UpdateStmt,
        timings: dict[str, float],
        trace: Optional[RuleTrace],
    ) -> SystemResult:
        obj = self.database.objects.get(statement.name)
        if obj is None:
            raise CatalogError(f"no such object: {statement.name}")
        tc = self.database.typechecker
        with self._phase(timings, "typecheck"):
            term = tc.check_value_term(statement.expr, obj.type)
            level = self._term_level(term)
        if obj.level != "model" and level != "model":
            # Direct execution at the representation/hybrid level.
            with self._phase(timings, "execute"):
                self.interpreter._check_update_root(term, statement.name)
                self.database.protect(
                    statement.name, *referenced_objects(term, self.database)
                )
                value = self.database.evaluator.eval(term, allow_update=True)
                if isinstance(value, Stream):
                    value = value.materialize()
                self.database.set_value(statement.name, value)
            return SystemResult(
                "update", level=obj.level, name=statement.name,
                type=obj.type, term=term,
            )
        # Model-level update: translate through the optimizer (on a clone,
        # so the reported original statement term stays intact).
        from repro.core.terms import clone_term

        with self._phase(timings, "optimize"):
            work = tc.check_value_term(clone_term(term), obj.type)
            opt = self.optimizer.optimize(work, self.database, trace)
            translated = opt.term
            if self._term_level(translated) == "model":
                raise OptimizationError(
                    f"no rule translates the model update on {statement.name}: "
                    f"{format_term(term)}"
                )
        self._emit_fired(opt.fired)
        with self._phase(timings, "execute"):
            target = self._update_target(translated)
            self.database.protect(
                statement.name, target,
                *referenced_objects(translated, self.database),
            )
            value = self.database.evaluator.eval(translated, allow_update=True)
            if isinstance(value, Stream):
                value = value.materialize()
            self.database.set_value(target, value)
        return SystemResult(
            "update",
            level="model",
            name=statement.name,
            type=obj.type,
            term=term,
            translated_term=translated,
            translated_target=target,
            translated_source=self._concrete(translated),
            fired=opt.fired,
        )

    def _update_target(self, translated: Term) -> str:
        """The representation object a translated update assigns to —
        the first argument of the root update function."""
        if (
            isinstance(translated, Apply)
            and translated.resolved is not None
            and translated.resolved.is_update
            and translated.args
            and isinstance(translated.args[0], (Var, ObjRef))
        ):
            return translated.args[0].name
        raise UpdateError(
            "translated update is not an update function on a representation "
            f"object: {format_term(translated)}"
        )

    def _execute_query(
        self,
        statement: QueryStmt,
        timings: dict[str, float],
        trace: Optional[RuleTrace],
    ) -> SystemResult:
        tc = self.database.typechecker
        with self._phase(timings, "typecheck"):
            term = tc.check(statement.expr)
            level = self._term_level(term)
        translated_term = None
        fired: list[str] = []
        exec_term = term
        if level == "model":
            from repro.core.terms import clone_term

            with self._phase(timings, "optimize"):
                work = tc.check(clone_term(term))
                opt = self.optimizer.optimize(work, self.database, trace)
                if self._term_level(opt.term) == "model":
                    raise OptimizationError(
                        f"no rule translates the model query: {format_term(term)}"
                    )
            exec_term = opt.term
            translated_term = opt.term
            fired = opt.fired
            self._emit_fired(fired)
        with self._phase(timings, "execute"):
            value = self.database.evaluator.eval(exec_term)
            if isinstance(value, Stream):
                value = value.materialize()
        return SystemResult(
            "query",
            level=level,
            type=exec_term.type,
            value=value,
            term=term,
            translated_term=translated_term,
            translated_source=(
                self._concrete(translated_term) if translated_term is not None else None
            ),
            fired=fired,
        )

    def _concrete(self, term: Term) -> str:
        from repro.lang.printer import format_concrete

        return format_concrete(term, self.database.sos)
