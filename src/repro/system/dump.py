"""Dump a database to program text and restore it by re-execution.

Persistence through the language itself: a dump is an ordinary program of
``type`` / ``create`` / ``update`` statements that, run on a fresh system,
rebuilds the named types, objects, catalog entries and stored tuples.  This
keeps persistence model-independent — anything expressible in the language
round-trips, and the dump doubles as a human-readable export.

Tuple attribute values are rendered with the literal constructors of the
base level (``pt``, ``box``, ``poly`` for the spatial types); structures are
rebuilt by replaying ``insert`` statements against their representation
objects, so clustering and index organization are reconstructed rather than
copied byte for byte.
"""

from __future__ import annotations

from repro.catalog.catalog import CatalogValue
from repro.core.algebra import Relation, TupleValue
from repro.core.types import Type, format_type
from repro.errors import ExecutionError
from repro.geometry import Point, Polygon, Rect
from repro.storage import BTree, LSDTree, SRel, TidRelation
from repro.storage.tidrel import SecondaryIndex


def dump_program(database) -> str:
    """The program text that rebuilds ``database`` on a fresh system."""
    lines: list[str] = ["-- database dump (re-runnable program)"]
    for name, t in database.aliases.items():
        # The alias's own definition must be spelled out structurally.
        lines.append(f"type {name} = {format_type(t)}")
    # Creates first (objects may reference each other via the catalog).
    deferred: list[str] = []
    for obj in database.objects.values():
        if obj.name == "rep" and isinstance(obj.value, CatalogValue):
            # created by make_relational_system; keep idempotent restores
            pass
        else:
            lines.append(f"create {obj.name} : {_type_text(database, obj.type)}")
        deferred.extend(_value_statements(database, obj))
    lines.extend(deferred)
    return "\n".join(lines) + "\n"


def restore_program(system, text: str) -> None:
    """Run a dump against a (fresh) system."""
    system.run(text)


def _type_text(database, t) -> str:
    """Render a type, substituting alias names for matching subterms so the
    dump stays readable (``rel(city)`` instead of the expanded tuple)."""
    from repro.core.types import TypeApp

    for name, aliased in database.aliases.items():
        if aliased == t:
            return name
    if isinstance(t, TypeApp) and t.args:
        rendered = []
        for arg in t.args:
            if isinstance(arg, Type):
                rendered.append(_type_text(database, arg))
            else:
                rendered.append(str(arg))
        return f"{t.constructor}(" + ", ".join(rendered) + ")"
    return format_type(t)


def _value_statements(database, obj) -> list[str]:
    value = obj.value
    if value is None:
        return []
    if isinstance(value, CatalogValue):
        return [
            f"update {obj.name} := insert({obj.name}, "
            + ", ".join(sym.name for sym in row)
            + ")"
            for row in value.rows
        ]
    if isinstance(value, (BTree, LSDTree, SRel, TidRelation)):
        return [
            f"update {obj.name} := insert({obj.name}, {_tuple_text(t)})"
            for t in value.scan()
        ]
    if isinstance(value, Relation):
        return [
            f"update {obj.name} := insert({obj.name}, {_tuple_text(t)})"
            for t in value.rows
        ]
    if isinstance(value, TupleValue):
        return [f"update {obj.name} := {_tuple_text(value)}"]
    if isinstance(value, (int, float, str, bool)):
        return [f"update {obj.name} := {_literal_text(value)}"]
    if isinstance(value, SecondaryIndex):
        # Rebuilt from its base relation; the base object name is not stored
        # on the index, so secondary indexes must be rebuilt by the caller.
        return [f"-- note: rebuild secondary index {obj.name} with build_index"]
    if callable(value):
        return [f"-- note: function-valued object {obj.name} is not dumped"]
    return [
        f"-- note: value of {obj.name} ({type(value).__name__}) has no "
        "program representation and is not dumped"
    ]


def _tuple_text(t: TupleValue) -> str:
    from repro.core.types import attrs_of

    parts = []
    for (name, _), value in zip(attrs_of(t.schema), t.values):
        parts.append(f"({name}, {_literal_text(value)})")
    return "mktuple[<" + ", ".join(parts) + ">]"


def _literal_text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, Point):
        return f"pt({value.x!r}, {value.y!r})"
    if isinstance(value, Rect):
        return f"box({value.xmin!r}, {value.ymin!r}, {value.xmax!r}, {value.ymax!r})"
    if isinstance(value, Polygon):
        vertices = ", ".join(f"pt({v.x!r}, {v.y!r})" for v in value.vertices)
        return f"poly[<{vertices}>]"
    raise ExecutionError(f"cannot render literal: {value!r}")
