"""Dump a database to program text and restore it by re-execution.

Persistence through the language itself: a dump is an ordinary program of
``type`` / ``create`` / ``update`` statements that, run on a fresh system,
rebuilds the named types, objects, catalog entries and stored tuples.  This
keeps persistence model-independent — anything expressible in the language
round-trips, and the dump doubles as a human-readable export (and as the
checkpoint format of the durability layer, see ``docs/DURABILITY.md``).

Statement order is deterministic and dependency-safe:

1. ``type`` definitions;
2. ``create`` statements for every object (including catalog objects such
   as ``rep`` — :func:`restore_program` skips a ``create`` whose object
   already exists, so restoring onto a fresh system that pre-creates
   ``rep`` stays idempotent);
3. data statements (tuple inserts, scalar/tuple assignments) in object
   order;
4. catalog-entry inserts (they reference other objects by name, so every
   name they mention has been created by then);
5. ``build_index`` statements for secondary indexes (their base relations
   are fully populated by then, so the rebuilt index covers every tuple);
6. one ``analyze`` statement recreating the statistics-catalog entries
   from the restored data (fresh histograms over identical rows; observed
   selectivities from cardinality feedback are not carried over).

Tuple attribute values are rendered with the literal constructors of the
base level (``pt``, ``box``, ``poly`` for the spatial types); structures are
rebuilt by replaying ``insert`` statements against their representation
objects, so clustering and index organization are reconstructed rather than
copied byte for byte.
"""

from __future__ import annotations

from repro.catalog.catalog import CatalogValue
from repro.core.algebra import Relation, TupleValue
from repro.core.types import Type, format_type
from repro.errors import ExecutionError
from repro.geometry import Point, Polygon, Rect
from repro.lang.parser import split_statements
from repro.storage import BTree, LSDTree, SRel, TidRelation
from repro.storage.tidrel import SecondaryIndex


def dump_program(database) -> str:
    """The program text that rebuilds ``database`` on a fresh system."""
    lines: list[str] = ["-- database dump (re-runnable program)"]
    for name, t in database.aliases.items():
        # The alias's own definition must be spelled out structurally.
        lines.append(f"type {name} = {format_type(t)}")
    data: list[str] = []
    catalogs: list[str] = []
    indexes: list[str] = []
    for obj in database.objects.values():
        lines.append(f"create {obj.name} : {_type_text(database, obj.type)}")
        if isinstance(obj.value, CatalogValue):
            catalogs.extend(_value_statements(database, obj))
        elif isinstance(obj.value, SecondaryIndex):
            indexes.extend(_value_statements(database, obj))
        else:
            data.extend(_value_statements(database, obj))
    lines.extend(data)
    lines.extend(catalogs)
    lines.extend(indexes)
    analyzed = sorted(
        name for name in database.stats.entries if name in database.objects
    )
    if analyzed:
        lines.append("analyze " + ", ".join(analyzed))
    return "\n".join(lines) + "\n"


def restore_program(system, text: str) -> None:
    """Run a dump against a (fresh) system.

    ``create`` statements for objects that already exist are skipped, so a
    dump restores cleanly onto a system that pre-creates catalog objects
    (``build_relational_system`` creates ``rep`` with the database).
    """
    database = system.database
    for chunk in split_statements(text):
        words = chunk.split(None, 2)
        if (
            len(words) >= 2
            and words[0] == "create"
            and database.has_object(words[1])
        ):
            continue
        system.run_one(chunk)


def _type_text(database, t) -> str:
    """Render a type, substituting alias names for matching subterms so the
    dump stays readable (``rel(city)`` instead of the expanded tuple)."""
    from repro.core.types import TypeApp

    for name, aliased in database.aliases.items():
        if aliased == t:
            return name
    if isinstance(t, TypeApp) and t.args:
        rendered = []
        for arg in t.args:
            if isinstance(arg, Type):
                rendered.append(_type_text(database, arg))
            else:
                rendered.append(str(arg))
        return f"{t.constructor}(" + ", ".join(rendered) + ")"
    return format_type(t)


def _value_statements(database, obj) -> list[str]:
    value = obj.value
    if value is None:
        return []
    if isinstance(value, CatalogValue):
        return [
            f"update {obj.name} := insert({obj.name}, "
            + ", ".join(sym.name for sym in row)
            + ")"
            for row in value.rows
        ]
    if isinstance(value, (BTree, LSDTree, SRel, TidRelation)):
        return [
            f"update {obj.name} := insert({obj.name}, {_tuple_text(t)})"
            for t in value.scan()
        ]
    if isinstance(value, Relation):
        return [
            f"update {obj.name} := insert({obj.name}, {_tuple_text(t)})"
            for t in value.rows
        ]
    if isinstance(value, TupleValue):
        return [f"update {obj.name} := {_tuple_text(value)}"]
    if isinstance(value, (int, float, str, bool)):
        return [f"update {obj.name} := {_literal_text(value)}"]
    if isinstance(value, SecondaryIndex):
        return _sindex_statements(database, obj)
    if callable(value):
        return [f"-- note: function-valued object {obj.name} is not dumped"]
    return [
        f"-- note: value of {obj.name} ({type(value).__name__}) has no "
        "program representation and is not dumped"
    ]


def _sindex_statements(database, obj) -> list[str]:
    """Rebuild a secondary index with ``build_index`` over its base object.

    The base relation is found by identity (the index holds a live
    reference to its heap); the indexed attribute comes off the index's
    representation type ``sindex(tuple, attrname, dtype)``.  Dumped after
    every data statement, so the rebuilt index covers all tuples.
    """
    index = obj.value
    base_name = next(
        (
            other.name
            for other in database.objects.values()
            if other.value is index.relation
        ),
        None,
    )
    rep_type = getattr(index, "rep_type", None)
    attr = (
        getattr(rep_type.args[1], "name", None)
        if rep_type is not None and len(rep_type.args) > 1
        else None
    )
    if base_name is None or attr is None:
        return [f"-- note: rebuild secondary index {obj.name} with build_index"]
    return [f"update {obj.name} := build_index({base_name}, {attr})"]


def _tuple_text(t: TupleValue) -> str:
    from repro.core.types import attrs_of

    parts = []
    for (name, _), value in zip(attrs_of(t.schema), t.values):
        parts.append(f"({name}, {_literal_text(value)})")
    return "mktuple[<" + ", ".join(parts) + ">]"


def _literal_text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, Point):
        return f"pt({value.x!r}, {value.y!r})"
    if isinstance(value, Rect):
        return f"box({value.xmin!r}, {value.ymin!r}, {value.xmax!r}, {value.ymax!r})"
    if isinstance(value, Polygon):
        vertices = ", ".join(f"pt({v.x!r}, {v.y!r})" for v in value.vertices)
        return f"poly[<{vertices}>]"
    raise ExecutionError(f"cannot render literal: {value!r}")
