"""Transactional statement execution over a :class:`Database`.

The paper's Section 6 session model is a sequence of statements whose
optimizer-driven translation mutates catalog state and representation
objects.  An error mid-statement (for example after an update function has
already mutated a B-tree in place) must not strand the database in a state
no paper example can reach — so statements execute inside a
:class:`Transaction`:

* at transaction start (and at every :class:`Savepoint`), the catalog
  dictionaries (``aliases``, ``objects``) are snapshotted — shallow copies,
  a few pointer copies per statement;
* before an update statement evaluates, the values of every object its term
  references are *protected*: cloned via the storage structures' cheap
  ``clone()`` support (structural copies sharing tuples, key functions and
  page ids, so a snapshot costs no simulated I/O);
* on rollback, catalog dictionaries are restored **in place** (the parser
  and typechecker hold live references to them) and protected values are
  restored by swapping the pristine clone's state back into the *original*
  value instance — preserving object identity, so cross-references between
  values (a secondary index holding its heap relation, for example) survive
  the rollback.

The interpreter and the SOS system wrap every statement in
:func:`statement_transaction`; ``run(source, atomic=True)`` wraps a whole
program in one transaction with a savepoint per statement.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.terms import Apply, Call, Fun, ListTerm, ObjRef, Term, TupleTerm, Var

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.catalog.database import Database


# ---------------------------------------------------------------------------
# Value snapshots
# ---------------------------------------------------------------------------


def clone_value(value):
    """A snapshot of an object value.

    Structures that support cheap structural copies expose ``clone()``
    (B-trees, LSD-trees, TID/temporary relations, catalogs, relations,
    graphs); containers are copied element-wise; everything else (numbers,
    strings, tuples-as-values, closures, geometry) is immutable under the
    algebra's update functions and is shared.
    """
    if value is None:
        return None
    clone = getattr(value, "clone", None)
    if clone is not None:
        return clone()
    if isinstance(value, list):
        return [clone_value(item) for item in value]
    return value


def _slots_of(cls: type) -> list[str]:
    slots: list[str] = []
    for klass in cls.__mro__:
        declared = getattr(klass, "__slots__", ())
        if isinstance(declared, str):
            declared = (declared,)
        slots.extend(declared)
    return slots


def restore_value(original, clone) -> None:
    """Swap the snapshot's state back into the original value instance.

    In-place restoration (rather than rebinding the clone) keeps every
    alias of the original value valid — e.g. a secondary index that holds a
    reference to its heap relation.
    """
    if original is clone or original is None:
        return
    if isinstance(original, list):
        original[:] = clone
        return
    d = getattr(original, "__dict__", None)
    if d is not None:
        d.clear()
        d.update(clone.__dict__)
        return
    for slot in _slots_of(type(original)):
        try:
            setattr(original, slot, getattr(clone, slot))
        except AttributeError:
            pass


# ---------------------------------------------------------------------------
# Referenced-object discovery
# ---------------------------------------------------------------------------


def referenced_objects(term: Term, database: "Database") -> set[str]:
    """Names of database objects a typechecked term references.

    Lambda-bound names shadow objects, so the walk tracks scope (same rule
    as the system's level classification).
    """
    found: set[str] = set()
    _collect_refs(term, frozenset(), database, found)
    return found


def _collect_refs(term: Term, bound: frozenset, database, found: set) -> None:
    if isinstance(term, (Var, ObjRef)):
        if term.name not in bound and database.has_object(term.name):
            found.add(term.name)
        return
    if isinstance(term, Apply):
        for arg in term.args:
            _collect_refs(arg, bound, database, found)
        return
    if isinstance(term, Fun):
        inner = bound | {name for name, _ in term.params}
        _collect_refs(term.body, inner, database, found)
        return
    if isinstance(term, (ListTerm, TupleTerm)):
        for item in term.items:
            _collect_refs(item, bound, database, found)
        return
    if isinstance(term, Call):
        _collect_refs(term.fn, bound, database, found)
        for arg in term.args:
            _collect_refs(arg, bound, database, found)


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class Savepoint:
    """A point a transaction can roll back to.

    Holds shallow copies of the catalog dictionaries (``aliases``,
    ``objects``, statistics entries — all copy-on-write, so shallow is
    sound) as of its creation, plus an undo log of ``name -> (object,
    original value, pristine clone)`` for values protected after its
    creation.
    """

    __slots__ = ("aliases", "objects", "stats", "undo")

    def __init__(self, aliases: dict, objects: dict, stats: Optional[dict] = None):
        self.aliases = aliases
        self.objects = objects
        self.stats = stats if stats is not None else {}
        self.undo: dict[str, tuple] = {}


class Transaction:
    """All-or-nothing execution of one or more statements over a database.

    States: ``active`` → ``committed`` | ``rolled-back``.  A transaction is
    not reusable after leaving ``active``.
    """

    def __init__(self, database: "Database"):
        self.database = database
        self.state = "active"
        self._savepoints: list[Savepoint] = [self._capture()]

    # ----------------------------------------------------------- lifecycle

    @property
    def active(self) -> bool:
        return self.state == "active"

    def _capture(self) -> Savepoint:
        db = self.database
        return Savepoint(
            dict(db.aliases), dict(db.objects), db.stats.snapshot()
        )

    def savepoint(self) -> Savepoint:
        """Mark the current state; :meth:`rollback` can return to it."""
        self._require_active()
        sp = self._capture()
        self._savepoints.append(sp)
        return sp

    def _require_active(self) -> None:
        if self.state != "active":
            raise RuntimeError(f"transaction is {self.state}")

    # ---------------------------------------------------------- protection

    def protect(self, *names: str) -> None:
        """Snapshot the values of ``names`` (once per savepoint) so a later
        rollback can restore them.  Must be called *before* any in-place
        mutation of the statement being executed — the executors protect
        every object an update term references before evaluating it."""
        self._require_active()
        sp = self._savepoints[-1]
        for name in names:
            if name in sp.undo:
                continue
            obj = self.database.objects.get(name)
            if obj is None:
                continue
            sp.undo[name] = (obj, obj.value, clone_value(obj.value))

    # ------------------------------------------------------------- outcome

    def commit(self) -> None:
        """Keep all changes; the undo logs are dropped."""
        self._require_active()
        self.state = "committed"
        self._savepoints.clear()

    def rollback(self, savepoint: Optional[Savepoint] = None) -> None:
        """Undo every change since ``savepoint`` (or since the transaction
        began).  Rolling back to a savepoint keeps the transaction active;
        a full rollback ends it."""
        self._require_active()
        if savepoint is None:
            index = 0
        else:
            try:
                index = self._savepoints.index(savepoint)
            except ValueError:
                raise RuntimeError("savepoint does not belong to this transaction")
        # Newest first, so the oldest (pre-statement) snapshot wins.
        for sp in reversed(self._savepoints[index:]):
            for obj, original, clone in sp.undo.values():
                if original is not None and original is not clone:
                    restore_value(original, clone)
                obj.value = original
        target = self._savepoints[index]
        db = self.database
        db.aliases.clear()
        db.aliases.update(target.aliases)
        db.objects.clear()
        db.objects.update(target.objects)
        db.stats.restore(target.stats)
        del self._savepoints[index + 1 :]
        target.undo.clear()
        if savepoint is None:
            self.state = "rolled-back"

    # -------------------------------------------------------- context mgmt

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


# ---------------------------------------------------------------------------
# Statement / program scopes
# ---------------------------------------------------------------------------


@contextmanager
def statement_transaction(database: "Database") -> Iterator[Transaction]:
    """The per-statement atomicity scope used by the executors.

    Outside any program transaction this opens (and commits / rolls back) a
    fresh transaction.  Inside one — ``run(source, atomic=True)`` — it
    creates a savepoint, so a failing statement rolls back to the previous
    statement boundary and the error decides the fate of the whole program.

    Also resets the evaluator's resource-guard counters, making the step
    budget and depth limit per-statement bounds.
    """
    database.evaluator.begin_statement()
    outer = database.transaction
    if outer is not None:
        sp = outer.savepoint()
        try:
            yield outer
        except BaseException:
            outer.rollback(sp)
            raise
        return
    txn = Transaction(database)
    database.transaction = txn
    try:
        yield txn
    except BaseException:
        txn.rollback()
        raise
    else:
        txn.commit()
    finally:
        database.transaction = None


@contextmanager
def program_transaction(database: "Database") -> Iterator[Transaction]:
    """An explicit multi-statement transaction (``run(..., atomic=True)``):
    any statement failure rolls the whole program back."""
    if database.transaction is not None:
        raise RuntimeError("a transaction is already active on this database")
    txn = Transaction(database)
    database.transaction = txn
    try:
        yield txn
    except BaseException:
        txn.rollback()
        raise
    else:
        txn.commit()
    finally:
        database.transaction = None
