"""Wire codecs for the json-lines client/server protocol.

One request or response is one JSON object on one line.  Values, results,
errors, explain reports and lint reports all have symmetric
``encode_*`` / ``decode_*`` pairs here, used by both endpoints — the
client reconstructs *real* library objects (:class:`TupleValue` rows with
``.attr()``, :class:`Relation`, :class:`~repro.geometry.Point`,
:class:`~repro.system.sos_system.SystemResult`,
:class:`~repro.observe.ExecutionMetrics`, the exception classes of
:mod:`repro.errors`), so code written against a local session runs
unchanged against a network one.

Tagged encoding: any non-scalar value becomes ``{"$": tag, ...}``.  A
plain dict is tagged too (``{"$": "dict", "items": [[k, v], ...]}``), so
the ``$`` discriminator can never collide with user data.  Types travel
as concrete syntax and are re-parsed on the client against the standard
relational signature — the one signature both endpoints share.
"""

from __future__ import annotations

import threading

from repro import errors as _errors
from repro.core.algebra import Closure, Relation, Stream, TupleValue
from repro.core.types import Type, format_type
from repro.errors import ProtocolError, SOSError, wrap_statement_error
from repro.geometry import Point, Polygon, Rect
from repro.observe import ExecutionMetrics, FiredRule, RuleTrace
from repro.system.sos_system import SystemResult

# ---------------------------------------------------------------------------
# Types: concrete syntax over the wire, re-parsed against a shared signature
# ---------------------------------------------------------------------------

_TYPE_PARSER = None
_TYPE_PARSER_LOCK = threading.Lock()
_TYPE_CACHE: dict[str, Type] = {}


def _type_parser():
    """A parser over the standard relational signature, built lazily once
    per process (building the signature is milliseconds; decoding a row
    must not pay it per tuple)."""
    global _TYPE_PARSER
    if _TYPE_PARSER is None:
        with _TYPE_PARSER_LOCK:
            if _TYPE_PARSER is None:
                from repro.lang.parser import Parser
                from repro.system.sos_system import build_relational_database

                _TYPE_PARSER = Parser(build_relational_database().sos)
    return _TYPE_PARSER


def encode_type(t: Type) -> str:
    return format_type(t)


def decode_type(source: str) -> Type:
    t = _TYPE_CACHE.get(source)
    if t is None:
        t = _TYPE_CACHE[source] = _type_parser().parse_type(source)
    return t


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def encode_value(value) -> object:
    """Encode any library value into JSON-able form (tagged where needed)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, TupleValue):
        return {
            "$": "tuple",
            "schema": encode_type(value.schema),
            "values": [encode_value(v) for v in value.values],
        }
    if isinstance(value, Relation):
        return {
            "$": "rel",
            "type": encode_type(value.type),
            "rows": [[encode_value(v) for v in row.values] for row in value.rows],
        }
    if isinstance(value, Stream):
        rows = value.materialize()
        return {
            "$": "stream",
            "type": encode_type(value.tuple_type),
            "rows": [[encode_value(v) for v in row.values] for row in rows],
        }
    if isinstance(value, Point):
        return {"$": "point", "x": value.x, "y": value.y}
    if isinstance(value, Rect):
        return {
            "$": "rect",
            "xmin": value.xmin, "ymin": value.ymin,
            "xmax": value.xmax, "ymax": value.ymax,
        }
    if isinstance(value, Polygon):
        return {
            "$": "pgon",
            "vertices": [[p.x, p.y] for p in value.vertices],
        }
    if isinstance(value, Type):
        return {"$": "type", "source": encode_type(value)}
    if isinstance(value, (list, tuple)):
        return {"$": "list", "items": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "$": "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if isinstance(value, Closure):
        return {"$": "opaque", "text": "<function value>"}
    # Storage structures (B-trees, catalogs, ...) and anything else the
    # client cannot usefully reconstruct travel as their repr.
    return {"$": "opaque", "text": repr(value)}


def decode_value(value) -> object:
    if not isinstance(value, dict):
        if isinstance(value, list):  # never produced by encode, but be lenient
            return [decode_value(v) for v in value]
        return value
    tag = value.get("$")
    if tag == "tuple":
        schema = decode_type(value["schema"])
        return TupleValue(schema, tuple(decode_value(v) for v in value["values"]))
    if tag in ("rel", "stream"):
        rel_type = decode_type(value["type"])
        tuple_type = rel_type.args[0] if tag == "rel" else rel_type
        rows = [
            TupleValue(tuple_type, tuple(decode_value(v) for v in row))
            for row in value["rows"]
        ]
        # A stream is one-shot and already materialized server-side; the
        # client gets the list of tuples (iterates the same way).
        return Relation(rel_type, rows) if tag == "rel" else rows
    if tag == "point":
        return Point(value["x"], value["y"])
    if tag == "rect":
        return Rect(value["xmin"], value["ymin"], value["xmax"], value["ymax"])
    if tag == "pgon":
        return Polygon(tuple(Point(x, y) for x, y in value["vertices"]))
    if tag == "type":
        return decode_type(value["source"])
    if tag == "list":
        return [decode_value(v) for v in value["items"]]
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in value["items"]}
    if tag == "opaque":
        return value["text"]
    raise ProtocolError(f"malformed value frame: unknown tag {tag!r}")


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def encode_result(result: SystemResult) -> dict:
    from repro.core.terms import format_term

    return {
        "kind": result.kind,
        "level": result.level,
        "name": result.name,
        "type": encode_type(result.type) if result.type is not None else None,
        "value": encode_value(result.value),
        "term": format_term(result.term) if result.term is not None else None,
        "translated_term": (
            format_term(result.translated_term)
            if result.translated_term is not None
            else None
        ),
        "translated_target": result.translated_target,
        "translated_source": result.translated_source,
        "fired": list(result.fired),
        "timings": dict(result.timings),
        "metrics": (
            encode_metrics(result.metrics) if result.metrics is not None else None
        ),
        "rule_trace": (
            encode_rule_trace(result.rule_trace)
            if result.rule_trace is not None
            else None
        ),
    }


def decode_result(data: dict) -> SystemResult:
    # ``term`` / ``translated_term`` arrive as formatted abstract syntax —
    # the client has no typechecker context to rebuild real Term objects,
    # and none of the result surface needs one (``generated_statement``
    # prefers ``translated_source``, which is verbatim).
    return SystemResult(
        kind=data["kind"],
        level=data["level"],
        name=data["name"],
        type=decode_type(data["type"]) if data["type"] is not None else None,
        value=decode_value(data["value"]),
        term=data["term"],
        translated_term=data["translated_term"],
        translated_target=data["translated_target"],
        translated_source=data["translated_source"],
        fired=list(data["fired"]),
        timings=dict(data["timings"]),
        metrics=(
            decode_metrics(data["metrics"])
            if data["metrics"] is not None
            else None
        ),
        rule_trace=(
            decode_rule_trace(data["rule_trace"])
            if data["rule_trace"] is not None
            else None
        ),
    )


def encode_metrics(metrics: ExecutionMetrics) -> dict:
    return {
        "operators": {op: dict(slot) for op, slot in metrics.operators.items()},
        "counters": dict(metrics.counters),
        "io": dict(metrics.io),
        "histograms": {
            name: list(hist.values) for name, hist in metrics.histograms.items()
        },
    }


def decode_metrics(data: dict) -> ExecutionMetrics:
    metrics = ExecutionMetrics()
    metrics.operators.update(
        {op: dict(slot) for op, slot in data["operators"].items()}
    )
    metrics.counters.update(data["counters"])
    metrics.io.update(data["io"])
    for name, values in data.get("histograms", {}).items():
        for v in values:
            metrics.record(name, v)
    return metrics


def encode_rule_trace(trace: RuleTrace) -> dict:
    return {
        "fired": [
            {"rule": f.rule, "step": f.step, "before": f.before, "after": f.after}
            for f in trace.fired
        ],
        "attempts": {
            rule: dict(outcomes) for rule, outcomes in trace.attempts.items()
        },
    }


def decode_rule_trace(data: dict) -> RuleTrace:
    trace = RuleTrace()
    trace.fired.extend(
        FiredRule(f["rule"], f["step"], f["before"], f["after"])
        for f in data["fired"]
    )
    trace.attempts.update(
        {rule: dict(outcomes) for rule, outcomes in data["attempts"].items()}
    )
    return trace


# ---------------------------------------------------------------------------
# Lint reports
# ---------------------------------------------------------------------------


def encode_lint_report(report) -> dict:
    return {"diagnostics": [d.as_dict() for d in report.diagnostics]}


def decode_lint_report(data: dict):
    from repro.lint.diagnostics import Diagnostic, LintReport

    return LintReport(
        [
            Diagnostic(
                code=d["code"],
                message=d["message"],
                severity=d["severity"],
                # `or ""` keeps the round trip identical: Diagnostic's
                # empty-string defaults must not come back as None.
                source=d.get("source") or "",
                subject=d.get("subject") or "",
                line=d.get("line"),
                column=d.get("column"),
            )
            for d in data["diagnostics"]
        ]
    )


# ---------------------------------------------------------------------------
# Errors: same class, same message, same fields on the other side
# ---------------------------------------------------------------------------

_SKIP_ATTRS = {"report"}  # LintError.report: not JSON-able, dropped


def _jsonable(v) -> bool:
    if v is None or isinstance(v, (bool, int, float, str)):
        return True
    if isinstance(v, (list, tuple)):
        return all(_jsonable(x) for x in v)
    return False


def encode_error(exc: BaseException) -> dict:
    """Encode an exception: class name, message, simple attributes, and —
    for the dynamic ``StatementError`` dual-inheritance wrappers — the
    original cause class so the client can rebuild the same dual class."""
    attrs = {
        k: (list(v) if isinstance(v, tuple) else v)
        for k, v in vars(exc).items()
        if k not in _SKIP_ATTRS and _jsonable(v)
    }
    frame = {
        "type": type(exc).__name__,
        "message": str(exc),
        "attrs": attrs,
    }
    if isinstance(exc, _errors.StatementError):
        cause = exc.__cause__
        cause_cls = None
        for base in type(exc).__mro__[1:]:
            if (
                issubclass(base, SOSError)
                and not issubclass(base, _errors.StatementError)
                and base is not SOSError
            ):
                cause_cls = base.__name__
                break
        frame["statement"] = {
            "index": exc.index,
            "source": exc.source,
            "phase": exc.phase,
            "cause_type": (
                type(cause).__name__ if cause is not None else cause_cls
            ),
            "cause_message": str(cause) if cause is not None else None,
            "cause_attrs": (
                {
                    k: (list(v) if isinstance(v, tuple) else v)
                    for k, v in vars(cause).items()
                    if k not in _SKIP_ATTRS and _jsonable(v)
                }
                if cause is not None
                else {}
            ),
        }
    return frame


def _error_class(name: str):
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls
    if name == "InjectedFault":
        from repro.testing.faults import InjectedFault

        return InjectedFault
    return None


def _rebuild(cls, message: str, attrs: dict) -> BaseException:
    """Instantiate without calling ``__init__`` — the subclasses have
    varied constructor signatures, and some (ParseError) transform the
    message; the encoded message is already the final one."""
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    for k, v in attrs.items():
        try:
            setattr(exc, k, tuple(v) if k == "names" else v)
        except AttributeError:
            pass  # slotted class without that attribute
    return exc


def decode_error(frame: dict) -> BaseException:
    name = frame.get("type", "ProtocolError")
    message = frame.get("message", "remote error")
    attrs = frame.get("attrs", {})
    statement = frame.get("statement")
    if statement is not None and statement.get("cause_type"):
        cause_cls = _error_class(statement["cause_type"])
        if cause_cls is not None:
            cause = _rebuild(
                cause_cls,
                statement.get("cause_message") or message,
                statement.get("cause_attrs", {}),
            )
            return wrap_statement_error(
                cause,
                index=statement.get("index"),
                source=statement.get("source"),
                phase=statement.get("phase"),
            )
    cls = _error_class(name)
    if cls is None:
        return ProtocolError(f"remote {name}: {message}")
    return _rebuild(cls, message, attrs)
