"""The asyncio socket server: many client sessions, one durable database.

Protocol: json-lines — one request object per line, one response per line,
strictly request/response per connection (clients are blocking).  Request
``{"op": ..., ...}``; response ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": <error frame>}`` (see :mod:`repro.server.wire`).

Statements execute on worker threads (``asyncio.to_thread``) so the event
loop keeps reading other clients while the engine's lock serializes actual
execution — that overlap, plus cross-client group commit, is where the
multi-client throughput comes from.

**Cross-client group commit.**  The engine commits with ``sync=False``:
commit records are appended and flushed (a *process* crash loses nothing)
but not yet fsynced.  Before acknowledging, a handler awaits
:meth:`GroupCommitBatcher.sync`, which yields to the event loop once so
other handlers' commits can pile in, then issues a single fsync for the
whole batch.  Every acknowledged statement is durable; concurrent clients
share fsyncs instead of paying one each.

A client that disconnects mid-transaction gets its open transaction rolled
back — buffered statements are discarded before they ever reach the
write-ahead log, so the disconnect leaves no WAL residue.

The ``server.ack`` fault site fires just before a successful statement
response is written; an injected fault there drops the connection instead
of answering — the committed-but-unacknowledged window the crash matrix
probes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Optional

from repro import telemetry
from repro.errors import (
    ConflictError,
    ProtocolError,
    ServerBusyError,
    StatementTimeoutError,
)
from repro.lang.parser import split_statements
from repro.observe import SpanRecorder
from repro.server.mvcc import EngineSession, MVCCEngine
from repro.server.wire import (
    encode_error,
    encode_lint_report,
    encode_result,
    encode_value,
)
from repro.testing.faults import InjectedFault, fault_point

#: The default server port ("SOS" on a phone keypad, close enough: 7464).
DEFAULT_PORT = 7464

#: Sentinel for "no journal entry; execute for real" — ``None`` is a valid
#: replayed response (a committed ``commit`` returns ``None``).
_MISS = object()


class GroupCommitBatcher:
    """Coalesces WAL fsyncs across concurrently-committing handlers.

    The first committer of a batch creates the shared future, yields once
    (``sleep(0)``) so every handler that committed in the meantime can
    attach to the same batch, then fsyncs once and wakes them all.
    """

    def __init__(self, engine_ref):
        self._engine_ref = engine_ref
        self._waiter: Optional[asyncio.Future] = None
        self._pending = 0
        self.batches = 0
        self.synced = 0

    async def sync(self) -> None:
        self.synced += 1
        if self._waiter is not None:
            self._pending += 1
            await self._waiter
            return
        self._waiter = asyncio.get_running_loop().create_future()
        waiter = self._waiter
        self._pending = 1
        await asyncio.sleep(0)  # let concurrent commits join this batch
        self._waiter = None
        size = self._pending
        self.batches += 1
        if telemetry.ENABLED:
            telemetry.incr("group_commit.batches")
            telemetry.incr("group_commit.synced", size)
            telemetry.observe_value("group_commit.batch_size", size)
        try:
            await asyncio.to_thread(self._engine_ref().sync_wal)
        except BaseException as exc:
            waiter.set_exception(exc)
            # A batch-mate re-raises it too; mark retrieved either way.
            try:
                await waiter
            except BaseException:
                raise
        else:
            waiter.set_result(None)


#: Counter/histogram families pre-declared at server start so every
#: exposition page lists them (at zero) before traffic arrives.
CORE_METRIC_FAMILIES = {
    "counters": (
        "server.connections",
        "server.statements",
        "server.queries",
        "server.slow_queries",
        "mvcc.snapshots",
        "mvcc.commits",
        "mvcc.conflicts",
        "mvcc.rollbacks",
        "mvcc.privatizations",
        "wal.frames",
        "wal.bytes",
        "wal.fsyncs",
        "group_commit.batches",
        "group_commit.synced",
        "server.rejected_connections",
        "server.statement_timeouts",
        "mvcc.journal_hits",
        "client.reconnects",
        "client.retries.transport",
        "client.retries.conflict",
        "client.retries.busy",
    ),
    "gauges": (
        "server.active_sessions",
        "mvcc.open_transactions",
        "server.draining",
        "server.drain_seconds",
    ),
    "histograms": (
        "server.statement_seconds",
        "mvcc.commit_seconds",
        "wal.fsync_seconds",
        "group_commit.batch_size",
    ),
}


class SOSServer:
    """One listening socket over one :class:`MVCCEngine`.

    ``slow_query_ms`` arms the slow-query log: any statement at or over
    the threshold is recorded (text, duration, per-phase timings, fired
    rules) in a bounded in-memory ring and — when ``slow_query_log`` is a
    path — appended to that file as one JSON object per line.  Starting a
    server enables the process-wide :mod:`repro.telemetry` registry.
    """

    def __init__(
        self,
        *,
        data_dir: Optional[str] = None,
        group_commit: int = 8,
        checkpoint_interval: Optional[int] = None,
        allow_reset: bool = False,
        slow_query_ms: Optional[float] = None,
        slow_query_log: Optional[str] = None,
        max_connections: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
    ):
        self._config = {
            "data_dir": data_dir,
            "group_commit": group_commit,
            "checkpoint_interval": checkpoint_interval,
            "statement_timeout_ms": statement_timeout_ms,
        }
        self.engine = MVCCEngine(**self._config)
        self.allow_reset = allow_reset
        self.max_connections = max_connections
        self.batcher = GroupCommitBatcher(lambda: self.engine)
        self.connections = 0
        self.active_sessions = 0
        self.rejected_connections = 0
        self.draining = False
        self.started_at = time.time()
        if slow_query_ms is None and slow_query_log is not None:
            slow_query_ms = 0.0  # a log path alone means "log everything"
        self.slow_query_ms = slow_query_ms
        self.slow_queries: list[dict] = []
        self._slow_log_file = (
            open(slow_query_log, "a") if slow_query_log is not None else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._handlers: set[asyncio.Task] = set()
        self._live_sessions: set[EngineSession] = set()
        self._inflight = 0
        telemetry.enable()
        telemetry.REGISTRY.declare(**CORE_METRIC_FAMILIES)

    # ---------------------------------------------------------------- serving

    async def start(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT):
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server.sockets[0].getsockname()[:2]

    async def start_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Serve the Prometheus exposition endpoint on the same loop;
        returns the bound ``(host, port)``."""
        self._metrics_server = await asyncio.start_server(
            self._handle_metrics, host, port
        )
        return self._metrics_server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: float = 10.0) -> float:
        """Graceful shutdown, phase one: stop admitting work, finish what
        is already running, make it durable.

        New connections — and new requests on existing connections — are
        refused with a retryable :class:`~repro.errors.ServerBusyError`
        while the flag is up; requests already dispatched run to
        completion (their commits are acknowledged durably), and
        transactions left idle on connected sessions are rolled back
        (their buffered statements never reach the WAL).  Returns the
        drain duration in seconds; ``timeout`` bounds the wait for
        in-flight requests.
        """
        start = time.perf_counter()
        self.draining = True
        if telemetry.ENABLED:
            telemetry.gauge("server.draining", 1)
        deadline = start + timeout
        while self._inflight > 0 and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        for session in tuple(self._live_sessions):
            session.abort_open_transaction()
        await asyncio.to_thread(self.engine.sync_wal)
        elapsed = time.perf_counter() - start
        if telemetry.ENABLED:
            telemetry.gauge("server.drain_seconds", elapsed)
        return elapsed

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        for task in tuple(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        # lint: disable=ENG003 -- audited: stop() runs after every handler
        # task has finished; there are no connections left to stall.
        self.engine.close()
        if self._slow_log_file is not None:
            self._slow_log_file.close()
            self._slow_log_file = None

    # ------------------------------------------------------------ per-client

    def _admission_refusal(self) -> Optional[ServerBusyError]:
        """The load-shedding check a new connection must pass."""
        if self.draining:
            return ServerBusyError(
                "server is draining for shutdown; retry against the "
                "restarted server"
            )
        if (
            self.max_connections is not None
            and self.active_sessions >= self.max_connections
        ):
            return ServerBusyError(
                f"server is at its connection limit "
                f"({self.max_connections}); retry later"
            )
        return None

    async def _refuse(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        refusal: ServerBusyError,
    ) -> None:
        """Answer the connection's first request with a retryable busy
        error, then close — no engine session is ever created."""
        self.rejected_connections += 1
        if telemetry.ENABLED:
            telemetry.incr("server.rejected_connections")
        frame = json.dumps(
            {"ok": False, "error": encode_error(refusal)}
        ).encode() + b"\n"
        try:
            line = await reader.readline()
            if line:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        refusal = self._admission_refusal()
        if refusal is not None:
            await self._refuse(reader, writer, refusal)
            return
        self.connections += 1
        self.active_sessions += 1
        if telemetry.ENABLED:
            telemetry.incr("server.connections")
            telemetry.gauge("server.active_sessions", self.active_sessions)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        # lint: disable=ENG003 -- audited: session() is lock-protected
        # bookkeeping (allocates an id), not statement execution.
        session = self.engine.session()
        self._live_sessions.add(session)
        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    break  # server shutting down; finish cleanly
                if not line:
                    break  # client went away
                try:
                    if self.draining:
                        raise ServerBusyError(
                            "server is draining for shutdown; the request "
                            "was not executed"
                        )
                    request = json.loads(line)
                    self._inflight += 1
                    try:
                        response = await self._dispatch(session, request)
                    finally:
                        self._inflight -= 1
                except InjectedFault:
                    # server.ack (or a fault plan armed over the wire)
                    # fired: drop the connection without answering, like a
                    # crash between commit and acknowledgement.
                    break
                except Exception as exc:  # noqa: BLE001 — encode, don't die
                    if telemetry.ENABLED and isinstance(
                        exc, StatementTimeoutError
                    ):
                        telemetry.incr("server.statement_timeouts")
                    response = {"ok": False, "error": encode_error(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._live_sessions.discard(session)
            self.active_sessions -= 1
            if telemetry.ENABLED:
                telemetry.gauge("server.active_sessions", self.active_sessions)
            # Disconnect (or drop) mid-transaction: roll the open
            # transaction back; its statements never reached the WAL.
            session.abort_open_transaction()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _dispatch(self, session: EngineSession, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, "_op_" + str(op), None)
        if handler is None:
            raise ProtocolError(f"unknown op: {op!r}")
        result = await handler(session, request)
        return {"ok": True, "result": result}

    async def _sync_before_ack(self, session: EngineSession) -> None:
        """Group-commit barrier: make everything this session committed
        durable before the acknowledgement goes out."""
        if self.engine.durable and not session.in_transaction:
            await self.batcher.sync()

    # -------------------------------------------------------- accounting

    def _account_statement(
        self, session: EngineSession, source: str, result, elapsed: float
    ) -> None:
        """Per-statement registry counters plus the slow-query log."""
        if telemetry.ENABLED:
            telemetry.incr("server.statements")
            if result.kind == "query":
                telemetry.incr("server.queries")
            telemetry.observe_value("server.statement_seconds", elapsed)
        if (
            self.slow_query_ms is not None
            and elapsed * 1000.0 >= self.slow_query_ms
        ):
            self._log_slow(session, source, result, elapsed)

    def _account_program(
        self, session: EngineSession, source: str, results, elapsed: float
    ) -> None:
        """Account a multi-statement program: registry totals use the
        whole-request duration split evenly; the slow-query log attributes
        each chunk its own measured execution timings."""
        if not results:
            return
        chunks = split_statements(source)
        share = elapsed / len(results)
        for index, result in enumerate(results):
            text = chunks[index] if index < len(chunks) else source
            self._account_statement(session, text, result, share)

    def _log_slow(
        self, session: EngineSession, source: str, result, elapsed: float
    ) -> None:
        entry = {
            "ts": time.time(),
            "session": session.session_id,
            "ms": round(elapsed * 1000.0, 3),
            "kind": result.kind,
            "statement": source,
            "timings": {
                phase: round(seconds * 1000.0, 3)
                for phase, seconds in (result.timings or {}).items()
            },
            "fired": list(result.fired or []),
        }
        self.slow_queries.append(entry)
        if len(self.slow_queries) > 256:
            del self.slow_queries[: len(self.slow_queries) - 256]
        if telemetry.ENABLED:
            telemetry.incr("server.slow_queries")
        if self._slow_log_file is not None:
            self._slow_log_file.write(
                json.dumps(entry, separators=(",", ":")) + "\n"
            )
            self._slow_log_file.flush()

    def telemetry_snapshot(self) -> dict:
        """The registry snapshot plus server-level identification — the
        ``metrics`` op payload and the exposition page source."""
        snap = telemetry.REGISTRY.snapshot()
        snap["gauges"]["server.uptime_seconds"] = time.time() - self.started_at
        snap["server"] = {
            "server": "repro",
            "durable": self.engine.durable,
            "uptime_seconds": snap["gauges"]["server.uptime_seconds"],
            "connections": self.connections,
            "rejected_connections": self.rejected_connections,
            "draining": self.draining,
            "active_sessions": self.active_sessions,
            "sessions": self.engine._sessions,
            "engine": dict(self.engine.metrics),
            "group_commit": {
                "batches": self.batcher.batches,
                "synced": self.batcher.synced,
            },
            "slow_queries": list(self.slow_queries[-16:]),
        }
        return snap

    # ------------------------------------------------------------------- ops

    async def _claim_token(self, session, token: Optional[str], synthesized):
        """The exactly-once check: claim ``token`` for execution, or
        replay its recorded outcome.

        Returns :data:`_MISS` when this request holds a fresh claim and
        must execute (ending in a commit outcome or
        ``journal.abandon``).  Otherwise the outcome already exists (or
        an earlier attempt is still executing, in which case this waits
        for it): a recorded conflict re-raises the original
        :class:`~repro.errors.ConflictError`; a recorded commit returns
        the original response frame, or ``synthesized`` when the frame
        did not survive a server restart — made durable before re-acking.
        """
        while True:
            status, entry = self.engine.journal.begin_attempt(token)
            if status == "new":
                return _MISS
            if status == "pending":
                # The original attempt is still executing (a retry can
                # outrun a slow statement); wait for its outcome rather
                # than executing a second time.
                await asyncio.to_thread(entry.wait, 30.0)
                continue
            if entry["outcome"] == "conflict":
                names = tuple(entry["names"])
                raise ConflictError(
                    "transaction lost the first-committer-wins race on "
                    + ", ".join(names)
                    + "; retry on a fresh transaction (replayed outcome)",
                    names=names,
                )
            await self._sync_before_ack(session)
            response = entry["response"]
            return synthesized if response is None else response

    @staticmethod
    def _journal_hit_frame() -> dict:
        """A result frame for a replayed commit whose original response
        did not survive the server restart — enough for the client to
        treat the retried statement as the success it already was."""
        return {
            "kind": "update",
            "level": 1,
            "name": None,
            "type": None,
            "value": "<already committed; outcome replayed from the commit journal>",
            "term": None,
            "translated_term": None,
            "translated_target": None,
            "translated_source": None,
            "fired": [],
            "timings": {},
            "metrics": None,
            "rule_trace": None,
            "journal_hit": True,
        }

    async def _op_run_one(self, session, request):
        token = request.get("token")
        replay = await self._claim_token(
            session, token, self._journal_hit_frame()
        )
        if replay is not _MISS:
            return replay
        recorder = SpanRecorder() if request.get("trace") else None
        start = time.perf_counter()
        try:
            result = await asyncio.to_thread(
                session.run_one,
                request["source"],
                sync=False,
                recorder=recorder,
                token=token,
            )
        except BaseException:
            # No commit outcome to journal (statement error, closed
            # session, injected crash): release the claim so a retry can
            # execute for real.  A recorded conflict is not pending and
            # survives this.
            self.engine.journal.abandon(token)
            raise
        if result.kind != "query":
            await self._sync_before_ack(session)
        else:
            self.engine.journal.abandon(token)  # queries have no outcome
        elapsed = time.perf_counter() - start
        self._account_statement(session, request["source"], result, elapsed)
        frame = encode_result(result)
        if recorder is not None:
            frame["server_spans"] = recorder.events
            frame["server_elapsed"] = recorder.elapsed()
        # Remember the committed answer *before* the acknowledgement can
        # be lost, so a retried request returns it verbatim.
        self.engine.journal.attach_response(token, frame)
        fault_point("server.ack")
        return frame

    async def _op_run(self, session, request):
        atomic = bool(request.get("atomic", False))
        token = request.get("token") if atomic else None
        replay = await self._claim_token(
            session, token, [self._journal_hit_frame()]
        )
        if replay is not _MISS:
            return replay
        recorder = SpanRecorder() if request.get("trace") else None
        start = time.perf_counter()
        try:
            results = await asyncio.to_thread(
                session.run,
                request["source"],
                atomic,
                sync=False,
                recorder=recorder,
                token=token,
            )
        except BaseException:
            self.engine.journal.abandon(token)
            raise
        if any(r.kind != "query" for r in results):
            await self._sync_before_ack(session)
        else:
            self.engine.journal.abandon(token)
        elapsed = time.perf_counter() - start
        self._account_program(session, request["source"], results, elapsed)
        frames = [encode_result(r) for r in results]
        if recorder is None:
            self.engine.journal.attach_response(token, frames)
            fault_point("server.ack")
            return frames
        response = {
            "results": frames,
            "server_spans": recorder.events,
            "server_elapsed": recorder.elapsed(),
        }
        self.engine.journal.attach_response(token, response)
        fault_point("server.ack")
        return response

    async def _op_begin(self, session, request):
        session.begin()
        return None

    async def _op_commit(self, session, request):
        token = request.get("token")
        replay = await self._claim_token(session, token, None)
        if replay is not _MISS:
            return replay
        recorder = SpanRecorder() if request.get("trace") else None
        try:
            await asyncio.to_thread(
                session.commit, sync=False, recorder=recorder, token=token
            )
        except BaseException:
            self.engine.journal.abandon(token)
            raise
        if self.engine.durable:
            await self.batcher.sync()
        if recorder is None:
            fault_point("server.ack")
            return None
        response = {
            "server_spans": recorder.events,
            "server_elapsed": recorder.elapsed(),
        }
        self.engine.journal.attach_response(token, response)
        fault_point("server.ack")
        return response

    async def _op_txn_status(self, session, request):
        """Resolve a commit whose acknowledgement was lost: the state of
        the idempotency token — ``committed``, ``conflict``, or
        ``unknown`` (never committed; safe to replay and retry)."""
        outcome = self.engine.journal.outcome(request.get("token"))
        return {"state": outcome if outcome is not None else "unknown"}

    async def _op_rollback(self, session, request):
        session.rollback()
        return None

    async def _op_explain(self, session, request):
        info = await asyncio.to_thread(
            session.explain,
            request["source"],
            analyze=bool(request.get("analyze", False)),
        )
        return encode_value(info)

    async def _op_lint(self, session, request):
        report = await asyncio.to_thread(self.engine.lint)
        return encode_lint_report(report)

    async def _op_check(self, session, request):
        # Program precheck: pure analysis against the committed catalog —
        # it never opens an MVCC transaction or touches the WAL.
        report = await asyncio.to_thread(
            self.engine.check,
            request["source"],
            bool(request.get("atomic", False)),
        )
        return encode_lint_report(report)

    async def _op_checkpoint(self, session, request):
        return await asyncio.to_thread(self.engine.checkpoint)

    async def _op_dump(self, session, request):
        return await asyncio.to_thread(self.engine.dump)

    async def _op_close(self, session, request):
        # The connection stays open: a closed session still answers
        # queries, but mutations raise — the durable-session contract.
        await asyncio.to_thread(session.close)
        return None

    async def _op_set_tracing(self, session, request):
        session.tracing = bool(request.get("enabled", True))
        return None

    async def _op_ping(self, session, request):
        return {
            "server": "repro",
            "durable": self.engine.durable,
            "session": session.session_id,
            "metrics": dict(self.engine.metrics),
            "counters": dict(session.counters),
            "closed": session.closed,
            "in_transaction": session.in_transaction,
        }

    async def _op_metrics(self, session, request):
        return self.telemetry_snapshot()

    # `status` is the conventional wire name; `metrics` the explicit one.
    _op_status = _op_metrics

    # ------------------------------------------------- metrics exposition

    async def _handle_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A minimal HTTP/1.1 GET handler for the exposition endpoint —
        enough for ``curl`` and a Prometheus scraper, on the same loop."""
        try:
            request_line = await reader.readline()
            while True:  # drain headers; the page ignores them
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1].split("?", 1)[0] if len(parts) > 1 else "/"
            if path in ("/", "/metrics"):
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
                body = telemetry.render_prometheus(
                    self.telemetry_snapshot()
                ).encode("utf-8")
            else:
                status, ctype, body = "404 Not Found", "text/plain", b"not found\n"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _op_reset(self, session, request):
        """Test-only (``allow_reset``): swap in a fresh engine so a shared
        test server gives each test an empty database."""
        if not self.allow_reset:
            raise ProtocolError("server does not allow reset")
        old = self.engine
        self.engine = MVCCEngine(**self._config)
        old.close()
        session.engine = self.engine
        session._txn = None
        session._closed = False
        return None


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


async def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    data_dir: Optional[str] = None,
    group_commit: int = 8,
    checkpoint_interval: Optional[int] = None,
    metrics_port: Optional[int] = None,
    slow_query_ms: Optional[float] = None,
    slow_query_log: Optional[str] = None,
    max_connections: Optional[int] = None,
    statement_timeout_ms: Optional[float] = None,
    ready: Optional[threading.Event] = None,
) -> None:
    """Run a server until cancelled (the ``python -m repro serve`` body).

    SIGTERM triggers a graceful drain: stop admitting work, finish
    in-flight commits durably, roll back idle transactions, flush the WAL,
    and return cleanly (exit code 0) — new connections meanwhile get a
    retryable busy error.
    """
    server = SOSServer(
        data_dir=data_dir,
        group_commit=group_commit,
        checkpoint_interval=checkpoint_interval,
        slow_query_ms=slow_query_ms,
        slow_query_log=slow_query_log,
        max_connections=max_connections,
        statement_timeout_ms=statement_timeout_ms,
    )
    bound = await server.start(host, port)
    print(f"repro server listening on {bound[0]}:{bound[1]}", flush=True)
    if metrics_port is not None:
        mhost, mport = await server.start_metrics(host, metrics_port)
        print(f"metrics exposition on http://{mhost}:{mport}/metrics", flush=True)
    terminated = asyncio.Event()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, terminated.set)
    except (NotImplementedError, RuntimeError):
        pass  # platform without loop signal handlers; Ctrl-C still works
    if ready is not None:
        ready.set()
    try:
        forever = asyncio.ensure_future(server.serve_forever())
        stop_wait = asyncio.ensure_future(terminated.wait())
        await asyncio.wait(
            {forever, stop_wait}, return_when=asyncio.FIRST_COMPLETED
        )
        if terminated.is_set():
            elapsed = await server.drain()
            print(
                f"repro server drained in {elapsed:.3f}s; shutting down",
                flush=True,
            )
        for task in (forever, stop_wait):
            task.cancel()
        await asyncio.gather(forever, stop_wait, return_exceptions=True)
    finally:
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        await server.stop()


class ServerHandle:
    """A server running on a background thread — the in-process harness the
    tests and benchmarks use.  ``stop()`` is idempotent."""

    def __init__(self, server: SOSServer, host: str, port: int, loop, thread):
        self.server = server
        self.host = host
        self.port = port
        self.metrics_host: Optional[str] = None
        self.metrics_port: Optional[int] = None
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def address(self) -> str:
        return f"repro://{self.host}:{self.port}"

    @property
    def metrics_url(self) -> Optional[str]:
        if self.metrics_port is None:
            return None
        return f"http://{self.metrics_host}:{self.metrics_port}/metrics"

    def drain(self, timeout: float = 10.0) -> float:
        """Run the server's graceful drain from the caller's thread;
        returns the drain duration in seconds."""
        return asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout=timeout), self._loop
        ).result(timeout=timeout + 5)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    data_dir: Optional[str] = None,
    group_commit: int = 8,
    checkpoint_interval: Optional[int] = None,
    allow_reset: bool = False,
    metrics_port: Optional[int] = None,
    slow_query_ms: Optional[float] = None,
    slow_query_log: Optional[str] = None,
    max_connections: Optional[int] = None,
    statement_timeout_ms: Optional[float] = None,
) -> ServerHandle:
    """Start a server on a background thread; ``port=0`` picks a free port.
    Returns a :class:`ServerHandle` whose ``address`` is a ready-to-use
    ``repro://`` DSN (and, with ``metrics_port``, whose ``metrics_url``
    is the live exposition endpoint)."""
    loop = asyncio.new_event_loop()
    server = SOSServer(
        data_dir=data_dir,
        group_commit=group_commit,
        checkpoint_interval=checkpoint_interval,
        allow_reset=allow_reset,
        slow_query_ms=slow_query_ms,
        slow_query_log=slow_query_log,
        max_connections=max_connections,
        statement_timeout_ms=statement_timeout_ms,
    )
    started: dict = {}
    ready = threading.Event()

    def runner() -> None:
        asyncio.set_event_loop(loop)

        async def boot():
            try:
                started["address"] = await server.start(host, port)
                if metrics_port is not None:
                    started["metrics"] = await server.start_metrics(
                        host, metrics_port
                    )
            except BaseException as exc:  # noqa: BLE001
                started["error"] = exc
            ready.set()

        loop.run_until_complete(boot())
        if "error" not in started:
            loop.run_forever()

    thread = threading.Thread(target=runner, name="repro-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=10):
        raise ProtocolError("server did not start within 10s")
    if "error" in started:
        thread.join(timeout=5)
        loop.close()
        raise started["error"]
    bound_host, bound_port = started["address"]
    handle = ServerHandle(server, bound_host, bound_port, loop, thread)
    if "metrics" in started:
        handle.metrics_host, handle.metrics_port = started["metrics"]
    return handle
