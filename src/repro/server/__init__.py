"""The multi-session server: MVCC engine, wire protocol, socket endpoints.

Layering::

    client.py   NetworkSession / SocketClient      (blocking, client side)
        |  json-lines frames (wire.py codecs)
    net.py      asyncio socket server + group-commit batcher
        |  in-process calls
    mvcc.py     MVCCEngine / EngineSession         (snapshots, COW, FCW)
        |
    ...the ordinary single-session system (repro.system)

``repro.api.connect("repro://host:port")`` returns a
:class:`~repro.server.client.NetworkSession`;
``python -m repro serve --data-dir DIR`` runs the server.
"""

from repro.server.mvcc import EngineSession, MVCCEngine, MVCCTransaction
from repro.server.net import (
    DEFAULT_PORT,
    ServerHandle,
    SOSServer,
    serve,
    start_server,
)

__all__ = [
    "DEFAULT_PORT",
    "EngineSession",
    "MVCCEngine",
    "MVCCTransaction",
    "ServerHandle",
    "SOSServer",
    "serve",
    "start_server",
]
