"""Multi-version concurrency over one shared database.

One :class:`MVCCEngine` owns a single (optionally durable)
:class:`~repro.system.sos_system.SOSSystem` and multiplexes any number of
:class:`EngineSession` handles over it — the in-process core the socket
server (:mod:`repro.server.net`) exposes to the network.  The design
follows the PR-1 transaction machinery and the PR-3 statistics catalog:

**Snapshots are shallow.**  A transaction begins by copying the catalog
dictionaries (``aliases``, ``objects``, the statistics entries) — pointer
copies, exactly what a :class:`~repro.system.transactions.Savepoint` takes.
Readers then see the committed :class:`DatabaseObject` instances of their
snapshot no matter what later writers do.

**Writes are copy-on-write.**  Before an update statement evaluates, the
engine's :attr:`Database.cow_hook` gives every object the statement will
touch a *private* clone (``clone_value`` — structural copies sharing
tuples), rebinding it in the transaction's workspace.  In-place update
functions therefore mutate only the clone; the committed value other
sessions read is never touched.  The write set falls out for free: any
name whose workspace entry is no longer the snapshot's instance.

**First committer wins.**  The engine keeps a version number per committed
name.  At commit, any write-set name whose committed version is newer than
the transaction's snapshot raises :class:`~repro.errors.ConflictError`;
the loser's workspace is discarded and the client simply retries.

**Durability is transaction-granular.**  Statement texts are buffered in
the transaction and reach the write-ahead log only at commit — begin/stmt
records, then commit records — so an aborted or conflicted transaction
leaves *zero* bytes in the log and a client dying mid-transaction leaves
no WAL residue.  The in-memory publish happens before the log write: a
crash between the two loses an unacknowledged transaction (allowed), and
an auto-checkpoint triggered by the commit records dumps a state that
already includes them (required).  Group commit *across* sessions is the
server's job: the engine appends commit records under the manager's
group-commit policy and only fsyncs eagerly when ``sync=True``.

Statement execution itself is serialized (``threading.RLock``): the engine
swaps the transaction's workspace into the shared database's catalog
dictionaries *by content* (the parser and typechecker hold live references
to the dict instances), runs the statement through the unchanged Section 6
pipeline, and swaps the committed state back.  Concurrency is between
transactions, never within a statement — the semantics every paper example
was verified under.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Optional

from repro import observe, telemetry
from repro.catalog.database import DatabaseObject
from repro.core.algebra import ResourceLimits
from repro.errors import CatalogError, ConflictError, SOSError, StatementError, wrap_statement_error
from repro.lang.parser import split_statements
from repro.observe import Event, Tracer
from repro.system.sos_system import SystemResult, build_relational_system
from repro.system.transactions import clone_value
from repro.testing.faults import fault_point


class MVCCTransaction:
    """One transaction's snapshot, workspace, and buffered WAL statements.

    ``aliases`` / ``objects`` / ``stats`` are the *workspace* — the dicts
    installed into the shared database while this transaction executes a
    statement.  The ``snapshot_*`` twins are frozen at begin; the write set
    is every name whose workspace entry differs from its snapshot entry by
    identity (copy-on-write guarantees a privatized or created object is a
    fresh instance).
    """

    __slots__ = (
        "start_version",
        "aliases",
        "objects",
        "stats",
        "snapshot_aliases",
        "snapshot_objects",
        "snapshot_stats",
        "statements",
        "cow",
        "state",
    )

    def __init__(self, database, start_version: int):
        self.start_version = start_version
        self.aliases = dict(database.aliases)
        self.objects = dict(database.objects)
        self.stats = database.stats.snapshot()
        self.snapshot_aliases = dict(self.aliases)
        self.snapshot_objects = dict(self.objects)
        self.snapshot_stats = dict(self.stats)
        self.statements: list[str] = []
        self.cow: set[str] = set()
        self.state = "active"

    @property
    def active(self) -> bool:
        return self.state == "active"

    def write_sets(self) -> tuple[dict, set, dict, set]:
        """``(object writes, object drops, alias writes, alias drops)`` —
        identity diffs of the workspace against the snapshot."""
        obj_writes = {
            name: obj
            for name, obj in self.objects.items()
            if self.snapshot_objects.get(name) is not obj
        }
        obj_drops = set(self.snapshot_objects) - set(self.objects)
        alias_writes = {
            name: t
            for name, t in self.aliases.items()
            if self.snapshot_aliases.get(name) is not t
        }
        alias_drops = set(self.snapshot_aliases) - set(self.aliases)
        return obj_writes, obj_drops, alias_writes, alias_drops


class CommitJournal:
    """A bounded journal of commit outcomes, keyed by idempotency token.

    The network client stamps every transaction (and every auto-committed
    statement) with a token; the engine records the commit's outcome here
    — ``committed`` or ``conflict`` — and the socket server attaches the
    encoded response frame of the committing request.  A *retried* request
    carrying a token the journal already knows therefore returns the
    original outcome instead of double-applying or spuriously conflicting:
    exactly-once commits across ack-lost disconnects.

    The ``committed`` outcomes are additionally persisted in the WAL
    commit records, so the journal survives a server restart (response
    frames do not — a post-recovery retry gets a synthesized journal-hit
    frame, still exactly-once).  The journal is bounded: the oldest
    entries are evicted past ``limit``, which is why tokens are ephemeral
    (a retry window, not an audit log).

    A token's *first* attempt claims it with a ``pending`` entry
    (:meth:`begin_attempt`), so a retry racing the still-executing
    original — a dropped connection retries faster than a slow statement
    commits — blocks on the pending event instead of executing a second
    time.  An attempt that fails before any commit outcome exists
    (statement error, closed session) must :meth:`abandon` its claim so a
    later retry can execute for real.
    """

    __slots__ = ("_lock", "_entries", "limit", "hits")

    def __init__(self, limit: int = 1024):
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.limit = limit
        self.hits = 0

    def record(
        self,
        token: Optional[str],
        outcome: str,
        *,
        names: tuple[str, ...] = (),
    ) -> None:
        """Record the outcome of the commit identified by ``token``
        (no-op without a token).  Resolves a pending claim, waking any
        retries blocked on it."""
        if token is None:
            return
        with self._lock:
            previous = self._entries.get(token)
            event = previous.get("event") if previous is not None else None
            self._entries[token] = {
                "outcome": outcome,
                "names": tuple(names),
                "response": None,
            }
            self._entries.move_to_end(token)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
        if event is not None:
            event.set()

    def begin_attempt(self, token: Optional[str]) -> tuple[str, Optional[dict]]:
        """Claim ``token`` for execution, atomically.

        Returns one of:

        - ``("new", None)`` — unknown token, now claimed ``pending``;
          the caller executes and must end with :meth:`record` (via the
          commit path) or :meth:`abandon`;
        - ``("pending", event)`` — another attempt is mid-flight; wait on
          the :class:`threading.Event` and call again;
        - ``("done", entry)`` — the outcome is already recorded (counted
          as a journal hit); replay it.
        """
        if token is None:
            return "new", None
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                self._entries[token] = {
                    "outcome": "pending",
                    "names": (),
                    "response": None,
                    "event": threading.Event(),
                }
                while len(self._entries) > self.limit:
                    self._entries.popitem(last=False)
                return "new", None
            if entry["outcome"] == "pending":
                return "pending", entry["event"]
            self.hits += 1
            found = {k: v for k, v in entry.items() if k != "event"}
        if telemetry.ENABLED:
            telemetry.incr("mvcc.journal_hits")
        return "done", found

    def abandon(self, token: Optional[str]) -> None:
        """Release a pending claim whose attempt failed before reaching a
        commit outcome (no-op once an outcome is recorded)."""
        if token is None:
            return
        event = None
        with self._lock:
            entry = self._entries.get(token)
            if entry is not None and entry["outcome"] == "pending":
                del self._entries[token]
                event = entry.get("event")
        if event is not None:
            event.set()

    def attach_response(self, token: Optional[str], response) -> None:
        """Remember the encoded response frame the committing request
        produced, so a retry can return it verbatim."""
        if token is None:
            return
        with self._lock:
            entry = self._entries.get(token)
            if entry is not None:
                entry["response"] = response

    def get(self, token: Optional[str]) -> Optional[dict]:
        """The recorded entry for ``token`` (bumps the hit counter), or
        ``None`` — the retried-request check.  Pending claims read as
        misses; use :meth:`begin_attempt` to coordinate with them."""
        if token is None:
            return None
        with self._lock:
            entry = self._entries.get(token)
            if entry is None or entry["outcome"] == "pending":
                return None
            self.hits += 1
            found = {k: v for k, v in entry.items() if k != "event"}
        if telemetry.ENABLED:
            telemetry.incr("mvcc.journal_hits")
        return found

    def outcome(self, token: Optional[str]) -> Optional[str]:
        """The recorded outcome for ``token`` without counting a hit
        (the ``txn_status`` probe).  A pending attempt reads as unknown —
        by the time the client can ask, its connection's attempt has
        already died, and the rolled-back claim will be abandoned."""
        if token is None:
            return None
        with self._lock:
            entry = self._entries.get(token)
            if entry is None or entry["outcome"] == "pending":
                return None
            return entry["outcome"]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class MVCCEngine:
    """The shared database plus the version bookkeeping of the store.

    ``data_dir`` makes the store durable (recovery on open, WAL at commit);
    ``group_commit`` is handed to the
    :class:`~repro.durability.DurabilityManager` so commit records batch
    their fsyncs — the socket server turns that into cross-client group
    commit by committing with ``sync=False`` and flushing once per batch.
    """

    def __init__(
        self,
        *,
        data_dir: Optional[str] = None,
        group_commit: int = 1,
        checkpoint_interval: Optional[int] = None,
        optimizer=None,
        tracer: Optional[Tracer] = None,
        statement_timeout_ms: Optional[float] = None,
        journal_limit: int = 1024,
    ):
        self.system = build_relational_system(optimizer, tracer=tracer)
        self.database = self.system.database
        self.tracer = self.system.tracer
        self.durability = None
        if data_dir is not None:
            from repro.durability import (
                DEFAULT_CHECKPOINT_INTERVAL,
                DurabilityManager,
            )

            self.durability = DurabilityManager(
                data_dir,
                group_commit=group_commit,
                checkpoint_interval=(
                    DEFAULT_CHECKPOINT_INTERVAL
                    if checkpoint_interval is None
                    else checkpoint_interval
                ),
                tracer=self.tracer,
            )
            self.durability.attach(self.system)
        self.statement_timeout_ms = statement_timeout_ms
        self.journal = CommitJournal(journal_limit)
        if self.durability is not None:
            # Recovery read the WAL; re-arm the journal with the tokens of
            # every committed transaction so retried commits that straddle
            # a server restart still observe their original outcome.
            for token in self.durability.recovered_tokens:
                self.journal.record(token, "committed")
        self.commit_version = 0
        self.versions: dict[str, int] = {}
        self.alias_versions: dict[str, int] = {}
        self.metrics: dict[str, int] = {
            "mvcc.snapshots": 0,
            "mvcc.commits": 0,
            "mvcc.conflicts": 0,
            "mvcc.rollbacks": 0,
            "mvcc.privatizations": 0,
        }
        self.open_transactions = 0
        self._lock = threading.RLock()
        self._saved = None
        self._sessions = 0
        self.closed = False

    # ------------------------------------------------------------- sessions

    def session(self) -> "EngineSession":
        """A new session handle over this engine (auto-commit by default)."""
        with self._lock:
            self._sessions += 1
            return EngineSession(self, self._sessions)

    @property
    def durable(self) -> bool:
        return self.durability is not None

    # ---------------------------------------------------------- transactions

    def begin(self) -> MVCCTransaction:
        with self._lock:
            txn = MVCCTransaction(self.database, self.commit_version)
            self._bump("mvcc.snapshots")
            self.open_transactions += 1
            if telemetry.ENABLED:
                telemetry.gauge(
                    "mvcc.open_transactions", self.open_transactions
                )
            return txn

    def _bump(self, name: str) -> None:
        # lint: disable=ENG001 -- audited: every caller already holds
        # self._lock (begin/commit/rollback critical sections).
        self.metrics[name] = self.metrics.get(name, 0) + 1
        if observe.ENABLED:
            observe.incr(name)
        if telemetry.ENABLED:
            telemetry.incr(name)
        self.tracer.emit(name, kind="counter", value=self.metrics[name])

    def _transaction_closed(self) -> None:
        """A transaction left the ``active`` state (commit, conflict, or
        rollback) — maintain the open-transaction gauge."""
        # lint: disable=ENG001 -- audited: only called from commit/rollback
        # paths that hold self._lock.
        self.open_transactions -= 1
        if telemetry.ENABLED:
            telemetry.gauge("mvcc.open_transactions", self.open_transactions)

    @contextmanager
    def _recording(self, recorder: Optional[Callable[[Event], None]]):
        """Subscribe ``recorder`` to the engine tracer for the duration of
        a lock-held scope.  The lock serializes execution, so the recorder
        sees exactly one request's events."""
        if recorder is None:
            yield
            return
        self.tracer.subscribe(recorder)
        try:
            yield
        finally:
            self.tracer.unsubscribe(recorder)

    # ------------------------------------------------------------- execution

    def run_in(
        self,
        txn: MVCCTransaction,
        source: str,
        *,
        collect: bool = False,
        recorder: Optional[Callable[[Event], None]] = None,
    ) -> SystemResult:
        """Execute one statement inside ``txn``'s workspace.

        The statement-level atomicity machinery applies unchanged — a
        failure rolls the workspace back to the statement boundary and the
        transaction stays usable.  ``recorder`` (an
        :class:`~repro.observe.SpanRecorder`) captures this statement's
        phase spans for cross-wire trace stitching.
        """
        with self._lock:
            self._require_open()
            if not txn.active:
                raise CatalogError(f"transaction is {txn.state}")
            chunk = source.strip()
            self._install(txn)
            try:
                with self._recording(recorder):
                    result = self._run_plain(chunk, collect=collect)
            finally:
                self._extract(txn)
            if result.kind != "query":
                txn.statements.append(chunk)
            return result

    def explain_in(
        self, txn: MVCCTransaction, source: str, *, analyze: bool = False
    ) -> dict:
        with self._lock:
            self._require_open()
            self._install(txn)
            try:
                saved = self.system.durability
                self.system.durability = None
                try:
                    return self.system.explain(source, analyze=analyze)
                finally:
                    self.system.durability = saved
            finally:
                self._extract(txn)

    def _run_plain(self, chunk: str, *, collect: bool) -> SystemResult:
        """One statement through the ordinary pipeline, with per-statement
        WAL logging disabled (the engine logs at transaction commit) and —
        when ``statement_timeout_ms`` is armed — a per-statement
        evaluation deadline that cancels runaway statements with
        :class:`~repro.errors.StatementTimeoutError`."""
        system = self.system
        saved_dur = system.durability
        saved_collect = system.tracing
        evaluator = self.database.evaluator
        saved_limits = evaluator.limits
        system.durability = None
        if collect != saved_collect:
            system.set_tracing(collect)
        if self.statement_timeout_ms is not None:
            base = saved_limits if saved_limits is not None else ResourceLimits()
            evaluator.limits = ResourceLimits(
                base.max_steps,
                base.max_depth,
                deadline=time.monotonic() + self.statement_timeout_ms / 1000.0,
            )
        try:
            return system.run_one(chunk)
        finally:
            system.durability = saved_dur
            evaluator.limits = saved_limits
            if collect != saved_collect:
                system.set_tracing(saved_collect)

    # ------------------------------------------------- workspace installation

    def _install(self, txn: MVCCTransaction) -> None:
        """Swap ``txn``'s workspace into the shared database (by content —
        the parser and typechecker hold live references to the dicts)."""
        db = self.database
        # lint: disable=ENG001 -- audited: workspace install/extract runs
        # only inside run/commit critical sections that hold self._lock.
        self._saved = (dict(db.aliases), dict(db.objects), db.stats.snapshot())
        db.aliases.clear()
        db.aliases.update(txn.aliases)
        db.objects.clear()
        db.objects.update(txn.objects)
        db.stats.restore(txn.stats)
        db.cow_hook = lambda names: self._privatize(txn, names)

    def _extract(self, txn: MVCCTransaction) -> None:
        """Copy the (possibly mutated) workspace back out of the database
        and restore the committed state."""
        db = self.database
        db.cow_hook = None
        txn.aliases = dict(db.aliases)
        txn.objects = dict(db.objects)
        txn.stats = db.stats.snapshot()
        aliases, objects, stats = self._saved
        # lint: disable=ENG001 -- audited: see _install; lock held by caller.
        self._saved = None
        db.aliases.clear()
        db.aliases.update(aliases)
        db.objects.clear()
        db.objects.update(objects)
        db.stats.restore(stats)

    def _privatize(self, txn: MVCCTransaction, names) -> None:
        """Copy-on-write: give each about-to-be-mutated object a private
        clone in the installed workspace (once per transaction)."""
        db = self.database
        for name in names:
            if name in txn.cow:
                continue
            obj = db.objects.get(name)
            if obj is None:
                continue
            if txn.snapshot_objects.get(name) is not obj:
                # Created (or already privatized) inside this transaction.
                txn.cow.add(name)
                continue
            private = DatabaseObject(obj.name, obj.type, obj.level)
            private.value = clone_value(obj.value)
            db.objects[name] = private
            txn.cow.add(name)
            self._bump("mvcc.privatizations")

    # ---------------------------------------------------------------- commit

    def commit(
        self,
        txn: MVCCTransaction,
        *,
        sync: bool = True,
        recorder: Optional[Callable[[Event], None]] = None,
        token: Optional[str] = None,
    ) -> None:
        """First-committer-wins check, publish, write-ahead log.

        With ``sync=False`` the commit records are appended (and flushed to
        the OS) but not fsynced — the caller must
        :meth:`sync_wal` before acknowledging the client; the socket server
        batches that fsync across sessions.

        ``token`` is the transaction's idempotency token: the outcome
        (committed or conflicted) is recorded in the commit-outcome
        :class:`CommitJournal` under it, and committed outcomes ride the
        last WAL commit record so the journal survives recovery.
        """
        with self._lock:
            self._require_open()
            if not txn.active:
                raise CatalogError(f"cannot commit a {txn.state} transaction")
            start = time.perf_counter()
            obj_writes, obj_drops, alias_writes, alias_drops = txn.write_sets()
            conflicts = sorted(
                {
                    name
                    for name in (*obj_writes, *obj_drops)
                    if self.versions.get(name, 0) > txn.start_version
                }
                | {
                    name
                    for name in (*alias_writes, *alias_drops)
                    if self.alias_versions.get(name, 0) > txn.start_version
                }
            )
            if conflicts:
                txn.state = "aborted"
                self._transaction_closed()
                self._bump("mvcc.conflicts")
                self.journal.record(token, "conflict", names=tuple(conflicts))
                raise ConflictError(
                    "transaction lost the first-committer-wins race on "
                    + ", ".join(conflicts)
                    + "; retry on a fresh transaction",
                    names=tuple(conflicts),
                )
            with self._recording(recorder):
                fault_point("mvcc.commit")
                if obj_writes or obj_drops or alias_writes or alias_drops:
                    self._publish(
                        txn, obj_writes, obj_drops, alias_writes, alias_drops
                    )
                fault_point("mvcc.publish")
                dur = self.durability
                if dur is not None and txn.statements:
                    seqs = [dur.log_statement(text) for text in txn.statements]
                    for seq in seqs:
                        dur.commit(seq, token=token if seq == seqs[-1] else None)
                    if sync:
                        # lint: disable=ENG002 -- audited: a synchronous
                        # commit must fsync inside the critical section so
                        # the durable order matches the commit order.
                        dur.flush()
                txn.state = "committed"
                self._transaction_closed()
                self._bump("mvcc.commits")
                self.journal.record(token, "committed")
            if telemetry.ENABLED:
                telemetry.observe_value(
                    "mvcc.commit_seconds", time.perf_counter() - start
                )

    def _publish(
        self, txn, obj_writes, obj_drops, alias_writes, alias_drops
    ) -> None:
        db = self.database
        # Audited ENG001 sites: _publish is called from exactly one place,
        # inside commit()'s `with self._lock` critical section.
        self.commit_version += 1  # lint: disable=ENG001 -- lock held by commit()
        version = self.commit_version
        for name, obj in obj_writes.items():
            db.objects[name] = obj
            self.versions[name] = version  # lint: disable=ENG001 -- lock held by commit()
        for name in obj_drops:
            db.objects.pop(name, None)
            self.versions[name] = version  # lint: disable=ENG001 -- lock held by commit()
        for name, t in alias_writes.items():
            db.aliases[name] = t
            self.alias_versions[name] = version  # lint: disable=ENG001 -- lock held by commit()
        for name in alias_drops:
            db.aliases.pop(name, None)
            self.alias_versions[name] = version  # lint: disable=ENG001 -- lock held by commit()
        # Statistics entries are immutable copy-on-write values; publish the
        # changed ones without conflict checks (metadata: last writer wins).
        for name, entry in txn.stats.items():
            if txn.snapshot_stats.get(name) is not entry:
                db.stats.entries[name] = entry
        for name in set(txn.snapshot_stats) - set(txn.stats):
            db.stats.entries.pop(name, None)

    def rollback(self, txn: MVCCTransaction) -> None:
        """Discard the workspace; the committed store was never touched."""
        with self._lock:
            if txn.active:
                txn.state = "rolled-back"
                self._transaction_closed()
                self._bump("mvcc.rollbacks")

    def sync_wal(self) -> None:
        """Fsync any commit records still pending under group commit."""
        with self._lock:
            if self.durability is not None:
                # lint: disable=ENG002 -- audited: group-commit drain is
                # the one fsync that must serialize with commits; the
                # batcher amortizes it across sessions.
                self.durability.flush()

    # ------------------------------------------------------------ store-wide

    def checkpoint(self) -> int:
        with self._lock:
            self._require_open()
            if self.durability is None:
                raise CatalogError(
                    "engine has no data_dir; nothing to checkpoint"
                )
            return self.durability.checkpoint()

    def lint(self):
        from repro.lint import lint_database

        with self._lock:
            return lint_database(
                self.database, self.system.optimizer, source=repr(self)
            )

    def check(self, source: str, atomic: bool = False):
        """Statically analyze a program against the committed catalog
        (:func:`repro.lint.lint_program`) — no transaction is opened, no
        WAL frame is written; the lock only pins a consistent catalog."""
        from repro.lint import lint_program

        with self._lock:
            self._require_open()
            return lint_program(self.database, source, atomic=atomic)

    def dump(self) -> str:
        from repro.system.dump import dump_program

        with self._lock:
            return dump_program(self.database)

    def close(self) -> None:
        """Flush and close the WAL; the engine refuses further statements."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if self.durability is not None:
                self.durability.close()

    def _require_open(self) -> None:
        if self.closed:
            raise CatalogError("engine is closed")

    def __repr__(self) -> str:
        where = (
            self.durability.data_dir if self.durability is not None else "mem"
        )
        return (
            f"<MVCCEngine {where} v{self.commit_version} "
            f"sessions={self._sessions}>"
        )


class EngineSession:
    """One client's view of the engine: auto-commit statements, explicit
    ``begin``/``commit``/``rollback``, and the closed-session contract
    (queries keep working, mutations raise) shared with durable local
    sessions."""

    __slots__ = ("engine", "session_id", "counters", "tracing", "_txn", "_closed")

    def __init__(self, engine: MVCCEngine, session_id: int):
        self.engine = engine
        self.session_id = session_id
        self.counters: dict[str, int] = {
            "statements": 0,
            "queries": 0,
            "conflicts": 0,
            "commits": 0,
        }
        self.tracing = False
        self._txn: Optional[MVCCTransaction] = None
        self._closed = False

    # ---------------------------------------------------------- transactions

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin(self) -> None:
        self._require_mutable("begin a transaction on")
        if self._txn is not None:
            raise CatalogError("a transaction is already open on this session")
        self._txn = self.engine.begin()

    def commit(self, *, sync: bool = True, recorder=None, token=None) -> None:
        if self._txn is None:
            raise CatalogError("no transaction is open on this session")
        txn, self._txn = self._txn, None
        try:
            self.engine.commit(txn, sync=sync, recorder=recorder, token=token)
        except ConflictError:
            self.counters["conflicts"] += 1
            raise
        self.counters["commits"] += 1

    def rollback(self) -> None:
        if self._txn is None:
            raise CatalogError("no transaction is open on this session")
        txn, self._txn = self._txn, None
        self.engine.rollback(txn)

    def abort_open_transaction(self) -> None:
        """Roll back a dangling transaction (client disconnect path)."""
        if self._txn is not None:
            txn, self._txn = self._txn, None
            self.engine.rollback(txn)

    # ------------------------------------------------------------- execution

    def run_one(
        self, source: str, *, sync: bool = True, recorder=None, token=None
    ) -> SystemResult:
        statement_is_query = source.lstrip().startswith("query")
        if not statement_is_query:
            self._require_mutable("mutate")
        elif self._closed:
            # Closed sessions still answer queries against the committed
            # state — the durable local-session contract.
            return self._read_only_query(source, recorder=recorder)
        self.counters["statements"] += 1
        if statement_is_query:
            self.counters["queries"] += 1
        if self._txn is not None:
            try:
                return self.engine.run_in(
                    self._txn, source, collect=self.tracing, recorder=recorder
                )
            except ConflictError:
                self.counters["conflicts"] += 1
                raise
        txn = self.engine.begin()
        try:
            result = self.engine.run_in(
                txn, source, collect=self.tracing, recorder=recorder
            )
        except BaseException:
            self.engine.rollback(txn)
            raise
        try:
            self.engine.commit(txn, sync=sync, recorder=recorder, token=token)
        except ConflictError:
            self.counters["conflicts"] += 1
            raise
        self.counters["commits"] += 1
        return result

    def _read_only_query(self, source: str, *, recorder=None) -> SystemResult:
        txn = self.engine.begin()
        try:
            return self.engine.run_in(
                txn, source, collect=self.tracing, recorder=recorder
            )
        finally:
            self.engine.rollback(txn)

    def run(
        self,
        source: str,
        atomic: bool = False,
        *,
        sync: bool = True,
        recorder=None,
        token=None,
    ) -> list[SystemResult]:
        chunks = split_statements(source)
        if atomic:
            if self._txn is not None:
                raise CatalogError(
                    "atomic programs cannot nest inside an open transaction"
                )
            self._require_mutable("run an atomic program on")
            self.begin()
            try:
                results = [
                    self._run_indexed(chunk, index, recorder=recorder)
                    for index, chunk in enumerate(chunks)
                ]
            except BaseException:
                self.rollback()
                raise
            self.commit(sync=sync, token=token)
            return results
        return [
            self._run_indexed(chunk, index, sync=sync, recorder=recorder)
            for index, chunk in enumerate(chunks)
        ]

    def _run_indexed(
        self, chunk: str, index: int, *, sync: bool = True, recorder=None
    ) -> SystemResult:
        """Run one program chunk, stamping the program-level statement
        index onto any error (``run_one`` wraps with ``index=None``)."""
        try:
            return self.run_one(chunk, sync=sync, recorder=recorder)
        except StatementError as exc:
            if exc.index is None:
                exc.index = index
            if exc.source is None:
                exc.source = chunk
            raise
        except SOSError as exc:
            raise wrap_statement_error(exc, index=index, source=chunk) from exc

    def query(self, source: str, *, sync: bool = True) -> SystemResult:
        return self.run_one("query " + source, sync=sync)

    def explain(self, source: str, *, analyze: bool = False) -> dict:
        if self._txn is not None:
            return self.engine.explain_in(self._txn, source, analyze=analyze)
        txn = self.engine.begin()
        try:
            return self.engine.explain_in(txn, source, analyze=analyze)
        finally:
            self.engine.rollback(txn)

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Idempotent: roll back any open transaction and flush the WAL.
        The session stays usable for queries; mutations raise."""
        if self._closed:
            return
        self.abort_open_transaction()
        self.engine.sync_wal()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_mutable(self, what: str) -> None:
        if self._closed:
            raise CatalogError(
                f"session is closed; cannot {what} it (queries still work)"
            )
        self.engine._require_open()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "in-txn" if self._txn is not None else "idle"
        )
        return f"<EngineSession {self.session_id} {state}>"
