"""The network client: a blocking json-lines socket and a
:class:`NetworkSession` that speaks the :class:`~repro.api.Session`
protocol.

``connect("repro://host:port")`` returns a :class:`NetworkSession`; the
code below it is deliberately thin — every statement is one request line,
every answer one response line, and the :mod:`repro.server.wire` codecs
rebuild real library objects and real exception classes, so client code
cannot tell a network session from a local one by its surface.

Transport failures (server gone, malformed frame, connection refused)
raise :class:`~repro.errors.ProtocolError` — the one error class local
sessions never raise.

**Fault tolerance** is opted into through DSN query parameters::

    repro://host:port?retries=3&deadline_ms=5000&backoff_ms=50

With ``retries`` > 0 the session transparently reconnects (capped
exponential backoff with jitter) and retries retryable failures:
transport errors, :class:`~repro.errors.ServerBusyError` (load shedding /
drain), and — for auto-committed statements — lost first-committer-wins
races.  Every mutation then carries an idempotency token, so a retry
whose original request *did* commit is answered from the server's
commit-outcome journal instead of applying twice: exactly-once commits.
With the default ``retries=0`` the wire behavior is exactly the
pre-retry protocol — any failure surfaces immediately.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro import telemetry
from repro.api import Session
from repro.errors import (
    CatalogError,
    ConflictError,
    ProtocolError,
    ServerBusyError,
    SOSError,
    StatementError,
    wrap_statement_error,
)
from repro.lang.parser import split_statements
from repro.observe import Event, Tracer
from repro.server.net import DEFAULT_PORT
from repro.server.wire import (
    decode_error,
    decode_lint_report,
    decode_result,
    decode_value,
)
from repro.system.sos_system import SystemResult


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`NetworkSession` behaves when the network misbehaves.

    ``retries``
        extra attempts after the first try (0 disables all retry and
        reconnect machinery — the default, and the pre-retry behavior);
    ``deadline_ms``
        overall per-call budget covering every attempt and backoff sleep
        (also the socket read timeout, so a hung server cannot park a
        call forever);
    ``backoff_ms`` / ``backoff_cap_ms``
        first reconnect backoff and its exponential cap — the actual
        sleep is jittered to half–full of the computed value;
    ``connect_timeout``
        seconds allowed for the TCP connect (DSN: ``connect_timeout_ms``).
    """

    retries: int = 0
    deadline_ms: Optional[float] = None
    backoff_ms: float = 50.0
    backoff_cap_ms: float = 2000.0
    connect_timeout: float = 10.0


def _parse_hostport(rest: str, dsn: str) -> tuple[str, int]:
    if not rest:
        raise CatalogError("repro:// DSN needs a host, e.g. repro://localhost")
    host, sep, port_text = rest.rpartition(":")
    if not sep:
        return rest, DEFAULT_PORT
    try:
        return host, int(port_text)
    except ValueError:
        raise CatalogError(f"bad port in DSN {dsn!r}: {port_text!r}") from None


def parse_dsn(dsn: str) -> tuple[str, int]:
    """``repro://HOST[:PORT][?options]`` → ``(host, port)``."""
    host, port, _ = parse_dsn_options(dsn)
    return host, port


def parse_dsn_options(dsn: str) -> tuple[str, int, RetryPolicy]:
    """``repro://HOST[:PORT]?retries=3&deadline_ms=5000&backoff_ms=50``
    → ``(host, port, policy)``.

    Recognized options: ``retries``, ``deadline_ms``, ``backoff_ms``,
    ``backoff_cap_ms``, ``connect_timeout_ms``.  An unknown option or a
    malformed value raises :class:`~repro.errors.CatalogError`.
    """
    if not dsn.startswith("repro://"):
        raise CatalogError(f"not a repro:// DSN: {dsn!r}")
    rest = dsn[len("repro://"):]
    rest, _, query = rest.partition("?")
    host, port = _parse_hostport(rest.rstrip("/"), dsn)
    policy = RetryPolicy()
    for part in query.split("&") if query else ():
        if not part:
            continue
        key, _, text = part.partition("=")
        try:
            if key == "retries":
                policy = replace(policy, retries=max(0, int(text)))
            elif key == "deadline_ms":
                policy = replace(policy, deadline_ms=float(text))
            elif key == "backoff_ms":
                policy = replace(policy, backoff_ms=float(text))
            elif key == "backoff_cap_ms":
                policy = replace(policy, backoff_cap_ms=float(text))
            elif key == "connect_timeout_ms":
                policy = replace(policy, connect_timeout=float(text) / 1000.0)
            else:
                raise CatalogError(
                    f"unknown DSN option {key!r} in {dsn!r} (known: retries, "
                    "deadline_ms, backoff_ms, backoff_cap_ms, "
                    "connect_timeout_ms)"
                )
        except ValueError:
            raise CatalogError(
                f"bad value for DSN option {key!r} in {dsn!r}: {text!r}"
            ) from None
    return host, port, policy


class SocketClient:
    """One blocking connection: ``request(op, **args)`` → decoded result."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
    ):
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ProtocolError(
                f"cannot reach repro://{host}:{port}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self.address = (host, port)

    def set_timeout(self, timeout: Optional[float]) -> None:
        """Adjust the socket timeout for the next request (the session's
        per-call deadline machinery)."""
        try:
            self._sock.settimeout(timeout)
        except OSError:
            pass  # socket already dead; the next request reports it

    def request(self, op: str, **args):
        frame = {"op": op, **args}
        try:
            self._file.write(json.dumps(frame).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        except ValueError as exc:  # writing to a locally dropped socket
            raise ProtocolError(
                f"connection to repro://{self.address[0]}:{self.address[1]} "
                "was dropped; reconnect with connect()"
            ) from exc
        except OSError as exc:
            raise ProtocolError(
                f"server at repro://{self.address[0]}:{self.address[1]} "
                f"went away mid-request: {exc}"
            ) from exc
        if not line:
            raise ProtocolError(
                "server closed the connection without answering "
                f"(op {op!r})"
            )
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"malformed response frame: {exc}") from exc
        if response.get("ok"):
            return response.get("result")
        raise decode_error(response.get("error", {}))

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def _new_token() -> str:
    return uuid.uuid4().hex


class NetworkSession(Session):
    """A :class:`~repro.api.Session` over a socket to a running server.

    Statements auto-commit unless a transaction is open
    (:meth:`begin` / :meth:`commit` / :meth:`rollback`); a commit that
    loses the first-committer-wins race raises
    :class:`~repro.errors.ConflictError` exactly as an in-process engine
    session would.  ``close()`` is idempotent and keeps the connection
    usable for queries — the closed-session contract — while
    :meth:`disconnect` drops the socket itself.

    With a :class:`RetryPolicy` (``?retries=...`` on the DSN) the session
    reconnects and retries by itself — see the module docstring for the
    exactly-once machinery.  An open transaction's statements are
    buffered client-side: after a reconnect they are replayed onto a
    fresh server transaction (the dropped connection's workspace was
    discarded wholesale, so nothing applies twice), or the transaction is
    aborted with a clear error if the replay cannot be reproduced.
    """

    __slots__ = (
        "_client",
        "_dsn",
        "_closed",
        "_tracing",
        "_tracer",
        "_trace_id",
        "_policy",
        "_host",
        "_port",
        "_timeout",
        "_in_txn",
        "_txn_statements",
        "_precheck",
    )

    def __init__(
        self,
        client: SocketClient,
        dsn: str,
        policy: Optional[RetryPolicy] = None,
    ):
        self._client = client
        self._dsn = dsn
        self._closed = False
        self._tracing = False
        self._tracer = Tracer()
        self._trace_id = uuid.uuid4().hex[:16]
        self._policy = policy if policy is not None else RetryPolicy()
        self._host, self._port = client.address
        self._timeout = (
            None
            if self._policy.deadline_ms is None
            else self._policy.deadline_ms / 1000.0
        )
        self._in_txn = False
        self._txn_statements: list[str] = []
        self._precheck: Optional[str] = None

    @classmethod
    def open(cls, dsn: str) -> "NetworkSession":
        host, port, policy = parse_dsn_options(dsn)
        timeout = (
            None if policy.deadline_ms is None else policy.deadline_ms / 1000.0
        )
        client = SocketClient(
            host,
            port,
            timeout=timeout,
            connect_timeout=policy.connect_timeout,
        )
        return cls(client, f"repro://{host}:{port}", policy=policy)

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._policy

    # --------------------------------------------------------------- tracing

    @property
    def tracer(self) -> Tracer:
        """This session's event bus.  While anyone is subscribed, every
        statement request carries the session's trace ID and the server
        ships its phase spans back for replay — one timeline across the
        wire (see ``docs/OBSERVABILITY.md``)."""
        return self._tracer

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Shorthand for ``session.tracer.subscribe(fn)`` (the local
        session has the same method)."""
        return self._tracer.subscribe(fn)

    @property
    def trace_id(self) -> str:
        return self._trace_id

    def _replay_spans(self, frame, t0: float, elapsed: float) -> None:
        """Deliver server-side span events into the local tracer.

        The two processes share no clock; the server reports event times
        relative to its own request handling (``t``) plus the total time
        it held the request (``server_elapsed``).  Centering that window
        inside the client-observed round trip splits the network cost
        evenly, which keeps every server span strictly inside the client
        statement span — the property the Chrome-trace nesting needs.
        """
        if not isinstance(frame, dict):
            return
        spans = frame.pop("server_spans", None)
        server_elapsed = frame.pop("server_elapsed", None)
        if not spans or not self._tracer.enabled:
            return
        if server_elapsed is None:
            server_elapsed = max((s.get("t", 0.0) for s in spans), default=0.0)
        base = t0 + max((elapsed - server_elapsed) / 2.0, 0.0)
        depth0 = self._tracer._depth
        for span in spans:
            data = dict(span.get("data") or {})
            data.setdefault("trace_id", self._trace_id)
            data.setdefault("remote", True)
            self._tracer.deliver(
                Event(
                    span.get("name", "?"),
                    span.get("kind", "counter"),
                    span.get("value", 0.0),
                    data,
                    depth0 + span.get("depth", 0),
                    ts=base + span.get("t", 0.0),
                )
            )

    def _traced_request(self, op: str, **args):
        """One request wrapped in a client-side span, with the server's
        spans replayed inside it.  Falls back to a plain request when
        nobody subscribed."""
        if not self._tracer.enabled:
            return self._client.request(op, **args)
        label = args.get("source", "")
        t0 = time.perf_counter()
        with self._tracer.span(
            "statement",
            trace_id=self._trace_id,
            op=op,
            source=label[:120],
        ):
            frame = self._client.request(op, trace=self._trace_id, **args)
            self._replay_spans(frame, t0, time.perf_counter() - t0)
        return frame

    # ------------------------------------------------------ retry machinery

    def _deadline(self) -> Optional[float]:
        if self._policy.deadline_ms is None:
            return None
        return time.monotonic() + self._policy.deadline_ms / 1000.0

    @staticmethod
    def _out_of_time(deadline: Optional[float]) -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def _arm_timeout(self, deadline: Optional[float]) -> None:
        if deadline is not None:
            self._client.set_timeout(
                max(0.05, deadline - time.monotonic())
            )

    @staticmethod
    def _count_retry(kind: str) -> None:
        if telemetry.ENABLED:
            telemetry.incr(f"client.retries.{kind}")

    def _backoff(self, attempt: int, deadline: Optional[float]) -> None:
        """Capped exponential backoff with half-to-full jitter."""
        policy = self._policy
        delay_ms = min(
            policy.backoff_cap_ms, policy.backoff_ms * (2 ** (attempt - 1))
        )
        delay = delay_ms / 1000.0 * (0.5 + random.random() / 2.0)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    def _reconnect(self, *, replay: bool = True) -> None:
        """Drop the dead socket, dial again, and restore session state —
        closed flag, tracing flag, and (when ``replay``) the open
        transaction's buffered statements."""
        self._client.close()
        self._client = SocketClient(
            self._host,
            self._port,
            timeout=self._timeout,
            connect_timeout=self._policy.connect_timeout,
        )
        if telemetry.ENABLED:
            telemetry.incr("client.reconnects")
        if self._closed:
            self._client.request("close")
        if self._tracing:
            self._client.request("set_tracing", enabled=True)
        if replay and self._in_txn:
            self._replay_transaction()

    def _replay_transaction(self) -> None:
        """Rebuild the open transaction on a fresh connection.  The old
        connection's server-side workspace was rolled back wholesale when
        it dropped, so re-running the buffered statements applies each
        exactly once.  A statement that no longer reproduces aborts the
        transaction with a non-retryable error."""
        self._client.request("begin")
        for source in self._txn_statements:
            try:
                self._client.request("run_one", source=source)
            except (ProtocolError, ServerBusyError):
                raise  # transport trouble again; the retry loop handles it
            except SOSError as exc:
                self._end_txn()
                raise CatalogError(
                    "open transaction aborted: replaying its buffered "
                    f"statements after reconnect failed ({exc})"
                ) from exc

    def _end_txn(self) -> None:
        self._in_txn = False
        self._txn_statements = []

    def _retryable(self, send: Callable[[], object], *, replay: bool = True):
        """Run ``send`` with transport/busy retries and reconnects.  Used
        for requests that are idempotent by nature (queries, reads,
        in-transaction statements — replayed workspaces never double
        apply)."""
        deadline = self._deadline()
        attempt = 0
        pending_reconnect = False
        while True:
            try:
                if pending_reconnect:
                    self._reconnect(replay=replay)
                    pending_reconnect = False
                self._arm_timeout(deadline)
                return send()
            except (ServerBusyError, ProtocolError) as exc:
                attempt += 1
                if attempt > self._policy.retries or self._out_of_time(
                    deadline
                ):
                    raise
                self._count_retry(
                    "busy" if isinstance(exc, ServerBusyError) else "transport"
                )
                self._backoff(attempt, deadline)
                pending_reconnect = True

    def _retry_mutation(self, send: Callable[[str], object]):
        """Run an auto-committing mutation with an idempotency token.

        Transport/busy retries resend the *same* token — if the original
        attempt committed, the server's journal answers instead of
        re-applying.  A lost first-committer-wins race retries with a
        *fresh* token (the old token's recorded outcome is the conflict
        itself)."""
        deadline = self._deadline()
        token = _new_token()
        attempt = 0
        pending_reconnect = False
        while True:
            try:
                if pending_reconnect:
                    self._reconnect(replay=False)
                    pending_reconnect = False
                self._arm_timeout(deadline)
                return send(token)
            except ConflictError:
                attempt += 1
                if attempt > self._policy.retries or self._out_of_time(
                    deadline
                ):
                    raise
                self._count_retry("conflict")
                token = _new_token()
                self._backoff(attempt, deadline)
            except (ServerBusyError, ProtocolError) as exc:
                attempt += 1
                if attempt > self._policy.retries or self._out_of_time(
                    deadline
                ):
                    raise
                self._count_retry(
                    "busy" if isinstance(exc, ServerBusyError) else "transport"
                )
                self._backoff(attempt, deadline)
                pending_reconnect = True

    # ------------------------------------------------------------ execution

    def run(self, source: str, atomic: bool = False) -> list[SystemResult]:
        if self._precheck is not None:
            from repro.api import enforce_precheck

            # Server-side static analysis first: a rejected program never
            # opens an MVCC transaction or writes a WAL frame.
            enforce_precheck(
                self._precheck, self.check(source, atomic=atomic), source
            )
        if self._policy.retries == 0:
            return self._decode_run(
                self._traced_request("run", source=source, atomic=atomic)
            )
        if self._in_txn:
            results = self._decode_run(
                self._retryable(
                    lambda: self._traced_request(
                        "run", source=source, atomic=atomic
                    )
                )
            )
            self._buffer_txn_chunks(source, results)
            return results
        if atomic:
            # One request, one token: the whole program commits (and is
            # journaled) as a unit.
            return self._decode_run(
                self._retry_mutation(
                    lambda token: self._traced_request(
                        "run", source=source, atomic=True, token=token
                    )
                )
            )
        # Auto-commit program: split client-side so each chunk carries its
        # own idempotency token — a mid-program failure then retries only
        # the chunk in flight, never an already-committed one.  The whole
        # program was already prechecked above; don't re-check per chunk.
        results = []
        precheck, self._precheck = self._precheck, None
        try:
            for index, chunk in enumerate(split_statements(source)):
                try:
                    results.append(self.run_one(chunk))
                except StatementError as exc:
                    if exc.index is None:
                        exc.index = index
                    if exc.source is None:
                        exc.source = chunk
                    raise
                except SOSError as exc:
                    raise wrap_statement_error(
                        exc, index=index, source=chunk
                    ) from exc
        finally:
            self._precheck = precheck
        return results

    @staticmethod
    def _decode_run(frames) -> list[SystemResult]:
        if isinstance(frames, dict):  # trace-wrapped response
            frames = frames["results"]
        return [decode_result(f) for f in frames]

    def _buffer_txn_chunks(self, source: str, results) -> None:
        """Remember the mutating chunks of a successful in-transaction
        program for post-reconnect replay."""
        chunks = split_statements(source)
        for chunk, result in zip(chunks, results):
            if result.kind != "query":
                self._txn_statements.append(chunk)

    def run_one(self, source: str) -> SystemResult:
        if self._precheck is not None:
            from repro.api import enforce_precheck

            enforce_precheck(self._precheck, self.check(source), source)
        if self._policy.retries == 0:
            return decode_result(
                self._traced_request("run_one", source=source)
            )
        if self._in_txn:
            result = decode_result(
                self._retryable(
                    lambda: self._traced_request("run_one", source=source)
                )
            )
            if result.kind != "query":
                self._txn_statements.append(source)
            return result
        if source.lstrip().startswith("query"):
            return decode_result(
                self._retryable(
                    lambda: self._traced_request("run_one", source=source),
                    replay=False,
                )
            )
        return decode_result(
            self._retry_mutation(
                lambda token: self._traced_request(
                    "run_one", source=source, token=token
                )
            )
        )

    def explain(self, source: str, *, analyze: bool = False) -> dict:
        return decode_value(
            self._read_request("explain", source=source, analyze=analyze)
        )

    def lint(self):
        return decode_lint_report(self._read_request("lint"))

    def check(self, source: str, *, atomic: bool = False):
        """Server-side static program analysis
        (:func:`repro.lint.lint_program` against the committed catalog);
        returns the :class:`~repro.lint.LintReport` without opening a
        transaction or writing a WAL frame."""
        return decode_lint_report(
            self._read_request("check", source=source, atomic=atomic)
        )

    def _read_request(self, op: str, **args):
        if self._policy.retries == 0:
            return self._client.request(op, **args)
        return self._retryable(lambda: self._client.request(op, **args))

    # --------------------------------------------------------- transactions

    def begin(self) -> None:
        """Open an explicit transaction (snapshot isolation; commit wins
        or raises :class:`~repro.errors.ConflictError`)."""
        if self._policy.retries == 0:
            self._client.request("begin")
        else:
            self._retryable(
                lambda: self._client.request("begin"), replay=False
            )
        self._in_txn = True
        self._txn_statements = []

    def commit(self) -> None:
        if self._policy.retries == 0 or not self._in_txn:
            try:
                self._traced_request("commit")
            finally:
                self._end_txn()
            return
        deadline = self._deadline()
        token = _new_token()
        attempt = 0
        resolve = False
        while True:
            try:
                if resolve:
                    # The commit request itself failed mid-flight; find
                    # out whether it landed before doing anything else.
                    self._reconnect(replay=False)
                    self._arm_timeout(deadline)
                    state = self._client.request("txn_status", token=token)[
                        "state"
                    ]
                    if state == "committed":
                        self._end_txn()
                        return
                    if state == "conflict":
                        self._end_txn()
                        raise ConflictError(
                            "transaction lost the first-committer-wins race "
                            "(resolved from the commit journal); retry on a "
                            "fresh transaction"
                        )
                    # unknown: it never committed — rebuild the
                    # transaction and commit again under the same token.
                    self._replay_transaction()
                    resolve = False
                self._arm_timeout(deadline)
                self._traced_request("commit", token=token)
                self._end_txn()
                return
            except ConflictError:
                self._end_txn()
                raise
            except (ServerBusyError, ProtocolError) as exc:
                attempt += 1
                if attempt > self._policy.retries or self._out_of_time(
                    deadline
                ):
                    self._end_txn()
                    raise
                self._count_retry(
                    "busy" if isinstance(exc, ServerBusyError) else "transport"
                )
                self._backoff(attempt, deadline)
                resolve = True

    def rollback(self) -> None:
        if self._policy.retries == 0 or not self._in_txn:
            try:
                self._client.request("rollback")
            finally:
                self._end_txn()
            return
        try:
            self._client.request("rollback")
        except (ProtocolError, ServerBusyError):
            # The server rolls an open transaction back the moment its
            # connection drops (and a draining server rolls back idle
            # transactions), so a lost rollback has still rolled back —
            # reconnect opportunistically and report success.
            try:
                self._reconnect(replay=False)
            except (ProtocolError, ServerBusyError):
                pass
        finally:
            self._end_txn()

    # ------------------------------------------------------------ store-wide

    def checkpoint(self) -> int:
        return self._read_request("checkpoint")

    def dump(self) -> str:
        return self._read_request("dump")

    def set_tracing(self, enabled: bool = True) -> None:
        """Toggle metric collection for this session's statements."""
        self._client.request("set_tracing", enabled=bool(enabled))
        self._tracing = bool(enabled)

    @property
    def tracing(self) -> bool:
        return self._tracing

    def ping(self) -> dict:
        """Server/session status: engine metrics (``mvcc.*``), this
        session's statement counters, and flags."""
        return self._read_request("ping")

    def server_metrics(self) -> dict:
        """The server's process-wide telemetry registry snapshot:
        ``counters`` / ``gauges`` / ``histograms`` plus a ``server``
        section (uptime, sessions, recent slow queries).  The same data
        the ``--metrics-port`` exposition endpoint and ``python -m repro
        top`` render."""
        return self._read_request("metrics")

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Idempotent.  Rolls back an open transaction server-side and
        marks the session closed: queries keep working, mutations raise
        :class:`~repro.errors.CatalogError` (the durable local contract).
        """
        if self._closed:
            return
        try:
            self._client.request("close")
        except ProtocolError:
            pass  # server already gone: nothing left to close
        self._closed = True
        self._end_txn()

    def disconnect(self) -> None:
        """Drop the socket (an open transaction is rolled back server-side)."""
        self._client.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<NetworkSession {self._dsn} ({state})>"
