"""The network client: a blocking json-lines socket and a
:class:`NetworkSession` that speaks the :class:`~repro.api.Session`
protocol.

``connect("repro://host:port")`` returns a :class:`NetworkSession`; the
code below it is deliberately thin — every statement is one request line,
every answer one response line, and the :mod:`repro.server.wire` codecs
rebuild real library objects and real exception classes, so client code
cannot tell a network session from a local one by its surface.

Transport failures (server gone, malformed frame, connection refused)
raise :class:`~repro.errors.ProtocolError` — the one error class local
sessions never raise.
"""

from __future__ import annotations

import json
import socket
import time
import uuid
from typing import Callable, Optional

from repro.api import Session
from repro.errors import CatalogError, ProtocolError
from repro.observe import Event, Tracer
from repro.server.net import DEFAULT_PORT
from repro.server.wire import (
    decode_error,
    decode_lint_report,
    decode_result,
    decode_value,
)
from repro.system.sos_system import SystemResult


def parse_dsn(dsn: str) -> tuple[str, int]:
    """``repro://HOST[:PORT]`` → ``(host, port)``."""
    if not dsn.startswith("repro://"):
        raise CatalogError(f"not a repro:// DSN: {dsn!r}")
    rest = dsn[len("repro://"):].rstrip("/")
    if not rest:
        raise CatalogError("repro:// DSN needs a host, e.g. repro://localhost")
    host, sep, port_text = rest.rpartition(":")
    if not sep:
        return rest, DEFAULT_PORT
    try:
        return host, int(port_text)
    except ValueError:
        raise CatalogError(f"bad port in DSN {dsn!r}: {port_text!r}") from None


class SocketClient:
    """One blocking connection: ``request(op, **args)`` → decoded result."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = None):
        try:
            self._sock = socket.create_connection((host, port), timeout=10)
        except OSError as exc:
            raise ProtocolError(
                f"cannot reach repro://{host}:{port}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self.address = (host, port)

    def request(self, op: str, **args):
        frame = {"op": op, **args}
        try:
            self._file.write(json.dumps(frame).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        except ValueError as exc:  # writing to a locally dropped socket
            raise ProtocolError(
                f"connection to repro://{self.address[0]}:{self.address[1]} "
                "was dropped; reconnect with connect()"
            ) from exc
        except OSError as exc:
            raise ProtocolError(
                f"server at repro://{self.address[0]}:{self.address[1]} "
                f"went away mid-request: {exc}"
            ) from exc
        if not line:
            raise ProtocolError(
                "server closed the connection without answering "
                f"(op {op!r})"
            )
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"malformed response frame: {exc}") from exc
        if response.get("ok"):
            return response.get("result")
        raise decode_error(response.get("error", {}))

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class NetworkSession(Session):
    """A :class:`~repro.api.Session` over a socket to a running server.

    Statements auto-commit unless a transaction is open
    (:meth:`begin` / :meth:`commit` / :meth:`rollback`); a commit that
    loses the first-committer-wins race raises
    :class:`~repro.errors.ConflictError` exactly as an in-process engine
    session would.  ``close()`` is idempotent and keeps the connection
    usable for queries — the closed-session contract — while
    :meth:`disconnect` drops the socket itself.
    """

    __slots__ = ("_client", "_dsn", "_closed", "_tracing", "_tracer", "_trace_id")

    def __init__(self, client: SocketClient, dsn: str):
        self._client = client
        self._dsn = dsn
        self._closed = False
        self._tracing = False
        self._tracer = Tracer()
        self._trace_id = uuid.uuid4().hex[:16]

    @classmethod
    def open(cls, dsn: str) -> "NetworkSession":
        host, port = parse_dsn(dsn)
        return cls(SocketClient(host, port), f"repro://{host}:{port}")

    # --------------------------------------------------------------- tracing

    @property
    def tracer(self) -> Tracer:
        """This session's event bus.  While anyone is subscribed, every
        statement request carries the session's trace ID and the server
        ships its phase spans back for replay — one timeline across the
        wire (see ``docs/OBSERVABILITY.md``)."""
        return self._tracer

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Shorthand for ``session.tracer.subscribe(fn)`` (the local
        session has the same method)."""
        return self._tracer.subscribe(fn)

    @property
    def trace_id(self) -> str:
        return self._trace_id

    def _replay_spans(self, frame, t0: float, elapsed: float) -> None:
        """Deliver server-side span events into the local tracer.

        The two processes share no clock; the server reports event times
        relative to its own request handling (``t``) plus the total time
        it held the request (``server_elapsed``).  Centering that window
        inside the client-observed round trip splits the network cost
        evenly, which keeps every server span strictly inside the client
        statement span — the property the Chrome-trace nesting needs.
        """
        if not isinstance(frame, dict):
            return
        spans = frame.pop("server_spans", None)
        server_elapsed = frame.pop("server_elapsed", None)
        if not spans or not self._tracer.enabled:
            return
        if server_elapsed is None:
            server_elapsed = max((s.get("t", 0.0) for s in spans), default=0.0)
        base = t0 + max((elapsed - server_elapsed) / 2.0, 0.0)
        depth0 = self._tracer._depth
        for span in spans:
            data = dict(span.get("data") or {})
            data.setdefault("trace_id", self._trace_id)
            data.setdefault("remote", True)
            self._tracer.deliver(
                Event(
                    span.get("name", "?"),
                    span.get("kind", "counter"),
                    span.get("value", 0.0),
                    data,
                    depth0 + span.get("depth", 0),
                    ts=base + span.get("t", 0.0),
                )
            )

    def _traced_request(self, op: str, **args):
        """One request wrapped in a client-side span, with the server's
        spans replayed inside it.  Falls back to a plain request when
        nobody subscribed."""
        if not self._tracer.enabled:
            return self._client.request(op, **args)
        label = args.get("source", "")
        t0 = time.perf_counter()
        with self._tracer.span(
            "statement",
            trace_id=self._trace_id,
            op=op,
            source=label[:120],
        ):
            frame = self._client.request(op, trace=self._trace_id, **args)
            self._replay_spans(frame, t0, time.perf_counter() - t0)
        return frame

    # ------------------------------------------------------------ execution

    def run(self, source: str, atomic: bool = False) -> list[SystemResult]:
        frames = self._traced_request("run", source=source, atomic=atomic)
        if isinstance(frames, dict):  # trace-wrapped response
            frames = frames["results"]
        return [decode_result(f) for f in frames]

    def run_one(self, source: str) -> SystemResult:
        return decode_result(self._traced_request("run_one", source=source))

    def explain(self, source: str, *, analyze: bool = False) -> dict:
        return decode_value(
            self._client.request("explain", source=source, analyze=analyze)
        )

    def lint(self):
        return decode_lint_report(self._client.request("lint"))

    # --------------------------------------------------------- transactions

    def begin(self) -> None:
        """Open an explicit transaction (snapshot isolation; commit wins
        or raises :class:`~repro.errors.ConflictError`)."""
        self._client.request("begin")

    def commit(self) -> None:
        self._traced_request("commit")

    def rollback(self) -> None:
        self._client.request("rollback")

    # ------------------------------------------------------------ store-wide

    def checkpoint(self) -> int:
        return self._client.request("checkpoint")

    def dump(self) -> str:
        return self._client.request("dump")

    def set_tracing(self, enabled: bool = True) -> None:
        """Toggle metric collection for this session's statements."""
        self._client.request("set_tracing", enabled=bool(enabled))
        self._tracing = bool(enabled)

    @property
    def tracing(self) -> bool:
        return self._tracing

    def ping(self) -> dict:
        """Server/session status: engine metrics (``mvcc.*``), this
        session's statement counters, and flags."""
        return self._client.request("ping")

    def server_metrics(self) -> dict:
        """The server's process-wide telemetry registry snapshot:
        ``counters`` / ``gauges`` / ``histograms`` plus a ``server``
        section (uptime, sessions, recent slow queries).  The same data
        the ``--metrics-port`` exposition endpoint and ``python -m repro
        top`` render."""
        return self._client.request("metrics")

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Idempotent.  Rolls back an open transaction server-side and
        marks the session closed: queries keep working, mutations raise
        :class:`~repro.errors.CatalogError` (the durable local contract).
        """
        if self._closed:
            return
        try:
            self._client.request("close")
        except ProtocolError:
            pass  # server already gone: nothing left to close
        self._closed = True

    def disconnect(self) -> None:
        """Drop the socket (an open transaction is rolled back server-side)."""
        self._client.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<NetworkSession {self._dsn} ({state})>"
