"""Catalog types and values.

``catalog`` essentially describes n-ary relations whose components are names
of database objects (identifiers).  The paper treats it as a predefined type
whose rows can be tested like PROLOG predicates inside optimization rules —
:meth:`CatalogValue.lookup` provides exactly that: match a row pattern with
``None`` wildcards and get the bindings back.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.core.operators import Quantifier
from repro.core.sorts import KindSort, TypeSort, UnionSort, VarSort
from repro.core.sos import SignatureBuilder
from repro.core.types import Sym, Type, TypeApp
from repro.testing.faults import fault_point

IDENT_T = TypeApp("ident")

MAX_CATALOG_WIDTH = 4
"""Catalog constructors are registered for widths 1..4 (the paper's ``rep``
catalog has width 2); wider catalogs would just need a larger constant."""


class CatalogValue:
    """A catalog object: a list of rows of identifiers."""

    __slots__ = ("type", "rows")

    def __init__(self, catalog_type: Type, rows: Optional[Iterable[tuple]] = None):
        self.type = catalog_type
        self.rows: list[tuple] = [tuple(r) for r in rows] if rows is not None else []

    @property
    def width(self) -> int:
        assert isinstance(self.type, TypeApp)
        return len(self.type.args)

    def clone(self) -> "CatalogValue":
        """A snapshot copy (rows are immutable identifier tuples)."""
        return CatalogValue(self.type, self.rows)

    def insert(self, row: Sequence) -> None:
        fault_point("catalog.insert")
        entry = tuple(row)
        if len(entry) != self.width:
            raise ValueError(
                f"catalog row has {len(entry)} components, expected {self.width}"
            )
        if entry not in self.rows:
            self.rows.append(entry)

    def remove(self, row: Sequence) -> bool:
        fault_point("catalog.remove")
        entry = tuple(row)
        if entry in self.rows:
            self.rows.remove(entry)
            return True
        return False

    def lookup(self, pattern: Sequence[Optional[object]]) -> Iterator[tuple]:
        """All rows matching the pattern; ``None`` components are wildcards.

        This is the PROLOG-predicate view of a catalog used by rule
        conditions: ``rep(cities, X)`` becomes ``lookup((Sym('cities'),
        None))`` and each result binds ``X``.
        """
        if len(pattern) != self.width:
            raise ValueError(
                f"pattern has {len(pattern)} components, expected {self.width}"
            )
        for row in self.rows:
            if all(p is None or p == c for p, c in zip(pattern, row)):
                yield row

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"CatalogValue({len(self.rows)} rows)"


def _catalog_insert(width: int):
    def impl(ctx, cat: CatalogValue, *components):
        cat.insert(components)
        return cat

    impl.__name__ = f"catalog_insert_{width}"
    return impl


def _catalog_remove(width: int):
    def impl(ctx, cat: CatalogValue, *components):
        cat.remove(components)
        return cat

    impl.__name__ = f"catalog_remove_{width}"
    return impl


def add_catalog_level(builder: SignatureBuilder) -> None:
    """Install the CATALOG kind, the ``catalog`` constructors (one per
    width) and the ``insert`` / ``cat_remove`` update functions."""
    ident = builder.kind("IDENT")
    data = builder.kind("DATA")
    cat_kind = builder.kind("CATALOG")
    component = UnionSort((KindSort(ident), KindSort(data)))
    for width in range(1, MAX_CATALOG_WIDTH + 1):
        builder.constructor(
            "catalog", [component] * width, cat_kind, level="hybrid"
        )
        quantifier = Quantifier("cat", cat_kind)
        ident_args = tuple(TypeSort(IDENT_T) for _ in range(width))
        builder.op(
            "insert",
            quantifiers=(quantifier,),
            args=(VarSort("cat"),) + ident_args,
            result=VarSort("cat"),
            impl=_catalog_insert(width),
            is_update=True,
            level="hybrid",
            doc=f"insert a width-{width} identifier row into a catalog",
            post_check=_width_check(width),
        )
        builder.op(
            "cat_remove",
            quantifiers=(quantifier,),
            args=(VarSort("cat"),) + ident_args,
            result=VarSort("cat"),
            impl=_catalog_remove(width),
            is_update=True,
            level="hybrid",
            doc=f"remove a width-{width} identifier row from a catalog",
            post_check=_width_check(width),
        )
    builder.op(
        "empty",
        quantifiers=(Quantifier("cat", cat_kind),),
        args=(),
        result=VarSort("cat"),
        impl=lambda ctx: CatalogValue(ctx.result_type),
        level="hybrid",
        doc="an empty catalog of the expected type",
    )


def _width_check(width: int):
    def check(type_system, binds, descriptors):
        cat = binds.get("cat")
        if isinstance(cat, TypeApp) and len(cat.args) != width:
            return (
                f"catalog has width {len(cat.args)}, "
                f"this insert provides {width} component(s)"
            )
        return None

    return check


def register_catalog_carriers(algebra) -> None:
    algebra.register_carrier(
        "catalog",
        lambda alg, v, t: isinstance(v, CatalogValue) and v.type == t,
    )
