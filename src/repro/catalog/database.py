"""The database: named objects, named types, and level classification.

A :class:`Database` holds the state behind a running system: type aliases
(``type city = ...``), objects (``create cities : rel(city)``) and their
values.  It wires the typechecker's object lookup and the evaluator's object
resolution, and classifies types into *model*, *representation* and *hybrid*
levels (paper Section 6) by the constructors they use.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algebra import Evaluator, ResourceLimits, SecondOrderAlgebra
from repro.core.sos import SecondOrderSignature
from repro.core.typecheck import TypeChecker
from repro.core.types import Type, TypeApp, format_type, walk_type
from repro.errors import CatalogError, ExecutionError
from repro.stats.model import StatsCatalog
from repro.testing.faults import fault_point


class DatabaseObject:
    """A named object: declared type, current value (``None`` = undefined),
    and the level of its type."""

    __slots__ = ("name", "type", "value", "level")

    def __init__(self, name: str, declared: Type, level: str):
        self.name = name
        self.type = declared
        self.value = None
        self.level = level

    def __repr__(self) -> str:
        state = "defined" if self.value is not None else "undefined"
        return f"<{self.name} : {format_type(self.type)} ({state})>"


class Database:
    """Named types and objects over one signature and algebra."""

    def __init__(self, sos: SecondOrderSignature, algebra: SecondOrderAlgebra):
        self.sos = sos
        self.algebra = algebra
        self.aliases: dict[str, Type] = {}
        self.objects: dict[str, DatabaseObject] = {}
        self.typechecker = TypeChecker(sos, object_types=self.type_of)
        self.evaluator = Evaluator(algebra, resolver=self.value_of)
        #: The statistics catalog (``analyze`` statement, cost model,
        #: cardinality feedback).  Empty until the first ``analyze``.
        self.stats = StatsCatalog()
        #: The active :class:`~repro.system.transactions.Transaction`, if any.
        #: Executors install it around statements; ``None`` between them.
        self.transaction = None
        #: Copy-on-write hook for multi-version concurrency.  When an MVCC
        #: engine has a transaction workspace installed, it sets this to a
        #: callable that gives every about-to-be-mutated object a private
        #: clone *before* the statement-level undo machinery snapshots it —
        #: so in-place update functions never touch the shared committed
        #: values other sessions are reading.  ``None`` outside MVCC.
        self.cow_hook = None
        # Function-valued constructor arguments (B-tree/LSD-tree key
        # functions) are typechecked at type formation time.
        sos.type_system.term_typer = self._type_key_function

    def _type_key_function(self, fun, expected_params) -> None:
        self.typechecker._check_fun(fun, {}, expected_params=tuple(expected_params))

    # ----------------------------------------------------------------- types

    def define_type(self, name: str, t: Type) -> Type:
        self.sos.type_system.check_type(t)
        self.aliases[name] = t
        return t

    def type_of(self, name: str) -> Optional[Type]:
        obj = self.objects.get(name)
        return obj.type if obj is not None else None

    # --------------------------------------------------------------- objects

    def create(self, name: str, declared: Type) -> DatabaseObject:
        if name in self.objects:
            raise CatalogError(f"object {name} already exists")
        self.sos.type_system.check_type(declared)
        obj = DatabaseObject(name, declared, self.level_of_type(declared))
        self.objects[name] = obj
        return obj

    def drop(self, name: str) -> None:
        if name not in self.objects:
            raise CatalogError(f"no such object: {name}")
        del self.objects[name]
        self.stats.discard(name)

    def value_of(self, name: str):
        obj = self.objects.get(name)
        if obj is None:
            raise ExecutionError(f"no such object: {name}")
        if obj.value is None:
            raise ExecutionError(f"object {name} has an undefined value")
        return obj.value

    def set_value(self, name: str, value) -> None:
        self.protect(name)
        fault_point("database.set_value")
        obj = self.objects.get(name)
        if obj is None:
            raise CatalogError(f"no such object: {name}")
        self.algebra.require_value(value, obj.type)
        obj.value = value
        if self.stats.entries and name in self.stats.entries:
            try:
                self.stats.note_rowcount(name, len(value))
            except TypeError:
                pass  # unsized value: the analyzed count stands

    def has_object(self, name: str) -> bool:
        return name in self.objects

    # ----------------------------------------------------------- transactions

    def protect(self, *names: str) -> None:
        """Snapshot object values into the active transaction (no-op when
        none is running).  ``set_value`` protects its target as a safety
        net; the executors protect every referenced object *before*
        evaluating an update term, which is what makes in-place update
        functions roll back cleanly."""
        hook = self.cow_hook
        if hook is not None:
            hook(names)
        txn = self.transaction
        if txn is not None and txn.active:
            txn.protect(*names)

    def set_resource_limits(
        self,
        max_steps: Optional[int] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        """Configure the evaluator's per-statement resource guard; both
        ``None`` removes it."""
        if max_steps is None and max_depth is None:
            self.evaluator.limits = None
        else:
            self.evaluator.limits = ResourceLimits(max_steps, max_depth)

    # ---------------------------------------------------------------- levels

    def level_of_type(self, t: Type) -> str:
        """Classify a type as ``model``, ``rep`` or ``hybrid`` (Section 6).

        A type is hybrid if it uses only hybrid constructors; it is model /
        rep if it additionally uses constructors of exactly that level.
        Mixing model and representation constructors in one type is an
        error — such a type could be neither translated nor executed.
        """
        levels = set()
        for part in walk_type(t):
            if isinstance(part, TypeApp):
                if self.sos.type_system.has_constructor(part.constructor):
                    levels.add(self.sos.type_system.constructor(part.constructor).level)
        if "model" in levels and "rep" in levels:
            raise CatalogError(
                f"type {format_type(t)} mixes model and representation "
                "constructors"
            )
        if "model" in levels:
            return "model"
        if "rep" in levels:
            return "rep"
        return "hybrid"
