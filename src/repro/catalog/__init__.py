"""The database catalog as an algebraic structure (paper Section 6).

The catalog is *not* hard-wired: ``catalog`` is a type constructor like any
other, catalog objects are created with ``create`` and updated with the
``insert`` update function, and optimizer rule conditions such as
``rep(rel1, rep1)`` are evaluated as lookups against a catalog object.
"""

from repro.catalog.catalog import CatalogValue, add_catalog_level, register_catalog_carriers
from repro.catalog.database import Database, DatabaseObject

__all__ = [
    "CatalogValue",
    "add_catalog_level",
    "register_catalog_carriers",
    "Database",
    "DatabaseObject",
]
