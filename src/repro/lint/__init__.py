"""Static analysis for second-order signatures and rewrite rule sets.

Two passes over the things a :class:`~repro.catalog.database.Database` is
built from:

* :func:`lint_signature` / :func:`lint_spec` — well-formedness of a
  signature (``SOS001`` … ``SOS010``): unknown kinds, duplicate and
  shadowed operator specs, bad quantifier patterns, syntax drift, subtype
  cycles, unreachable representations, update-function laws, missing docs;
* :func:`lint_rules` / :func:`lint_optimizer` — rewrite rules against a
  signature (``RUL001`` … ``RUL008``): unbound variables, dead rules,
  unknown catalogs, rewrite loops, and symbolic type preservation;
* :func:`lint_program` — whole SOS programs against a signature and
  catalog, before execution (``PRG000`` … ``PRG008``): per-statement
  typecheck, def-use dataflow over catalog objects, transaction effects,
  and plan-shape warnings — the pass behind ``Session.check`` and
  ``connect(precheck=...)``;
* :func:`lint_engine` — the project's own concurrency discipline over
  ``src/repro`` (``ENG001`` … ``ENG006``): lock coverage of MVCC shared
  state, blocking calls under the lock or on the event loop, telemetry
  declarations, and fault-site registration (``lint --self``).

:func:`lint_database` runs the first two over a live database.  See
``docs/STATIC_ANALYSIS.md`` for the code table and suppression syntax.
"""

from __future__ import annotations

from repro.lint.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintReport,
    scan_suppressions,
)
from repro.lint.enginepass import lint_engine, lint_engine_source
from repro.lint.progpass import lint_program
from repro.lint.rulepass import lint_optimizer, lint_rules
from repro.lint.specpass import lint_signature, lint_spec


def database_catalogs(db) -> set[str]:
    """Names of the catalog objects a database defines."""
    from repro.core.types import TypeApp

    return {
        name
        for name, obj in db.objects.items()
        if isinstance(obj.type, TypeApp) and obj.type.constructor == "catalog"
    }


def lint_database(db, optimizer=None, *, source: str = "<database>") -> LintReport:
    """Lint a database's signature, and its optimizer's rules when given."""
    report = lint_signature(db.sos, source=source)
    if optimizer is not None:
        report.extend(
            lint_optimizer(
                optimizer,
                db.sos,
                catalogs=database_catalogs(db),
                source=source,
            )
        )
    return report


__all__ = [
    "CODES",
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintReport",
    "WARNING",
    "database_catalogs",
    "lint_database",
    "lint_engine",
    "lint_engine_source",
    "lint_optimizer",
    "lint_program",
    "lint_rules",
    "lint_signature",
    "lint_spec",
    "scan_suppressions",
]
