"""Static analysis of rewrite rules (``RUL001`` … ``RUL008``).

A :class:`~repro.optimizer.rules.RewriteRule` is only exercised when a
query happens to match it, so a broken rule — an unbound right-hand-side
variable, a condition over a catalog that does not exist, a rewrite that
changes the type of the plan — can hide for a long time.  This pass checks
every rule of a rule set against a signature without running any query:

* *binding analysis* (RUL001/RUL002): every variable the RHS or a
  condition consumes must be bound by the LHS pattern or by an earlier
  catalog condition;
* *liveness* (RUL003): the LHS head operator must exist in the signature,
  otherwise the rule can never fire;
* *type preservation* (RUL004/RUL008): the LHS and RHS are typechecked
  once, symbolically, under fresh typed variables — rule type variables
  are instantiated with synthetic concrete types, unconstrained variables
  with the :class:`~repro.lint.symbolic.AnyType` wildcard — and the two
  result types must agree up to representation change (same content
  schema, subtyping allowed);
* *catalog hygiene* (RUL005) and *loop detection* (RUL006).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.patterns import PApp, PVar, pattern_variables
from repro.core.sorts import (
    BindSort,
    FunSort,
    KindSort,
    TypeSort,
    VarSort,
)
from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Term,
    TupleTerm,
    Var,
    clone_term,
    same_term,
)
from repro.core.typecheck import TypeChecker
from repro.core.types import Sym, Type, TypeApp, TypeArg, tuple_type
from repro.errors import TypeCheckError
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.symbolic import ANY, INT, fresh_term_arg, instantiate_type_pattern
from repro.optimizer.conditions import (
    CatalogCondition,
    StatsCondition,
    TypeCondition,
)
from repro.optimizer.rules import RewriteRule
from repro.optimizer.termmatch import TypeVar


def lint_rules(
    rules: Sequence[RewriteRule],
    sos,
    *,
    catalogs: Iterable[str] = ("rep",),
    source: str = "<rules>",
) -> LintReport:
    """Run every rule check over ``rules`` against signature ``sos``."""
    report = LintReport()
    known_catalogs = set(catalogs)
    for rule in rules:
        _check_bindings(rule, sos, report, source)
        dead = _check_liveness(rule, sos, report, source)
        _check_catalogs(rule, known_catalogs, report, source)
        if not dead:
            # A dead rule's LHS cannot typecheck; RUL003 already says why.
            _check_type_preservation(rule, sos, report, source)
    _check_loops(rules, report, source)
    return report


def lint_optimizer(optimizer, sos, *, catalogs=("rep",), source="<rules>") -> LintReport:
    """Lint every rule of every step of an optimizer."""
    seen: dict[str, RewriteRule] = {}
    for step in optimizer.steps:
        for rule in step.rules:
            seen.setdefault(rule.name, rule)
    return lint_rules(list(seen.values()), sos, catalogs=catalogs, source=source)


# ------------------------------------------------------------------ helpers


def _walk(term: Term) -> Iterable[Term]:
    yield term
    if isinstance(term, Apply):
        for a in term.args:
            yield from _walk(a)
    elif isinstance(term, Fun):
        yield from _walk(term.body)
    elif isinstance(term, (ListTerm, TupleTerm)):
        for i in term.items:
            yield from _walk(i)
    elif isinstance(term, Call):
        yield from _walk(term.fn)
        for a in term.args:
            yield from _walk(a)


def _lhs_bound(rule: RewriteRule) -> set[str]:
    """Variables the LHS match binds: term variables and operator variables."""
    bound: set[str] = set()
    for node in _walk(rule.lhs):
        if isinstance(node, Var) and node.name in rule.variables:
            bound.add(node.name)
        elif isinstance(node, Apply) and node.op in rule.variables:
            bound.add(node.op)
    # Type variables bound through declared type patterns are usable too
    # (``rel1: rel(tuple1)`` binds ``tuple1``).
    for name in bound & set(rule.variables):
        rv = rule.variables[name]
        if rv.type_pattern is not None:
            bound |= pattern_variables(rv.type_pattern)
    return bound


# ------------------------------------------------------- RUL001 / RUL002


def _check_bindings(rule: RewriteRule, sos, report: LintReport, source: str) -> None:
    bound = _lhs_bound(rule)
    # Conditions run in order; each may consume earlier bindings and
    # contribute its own.
    for cond in rule.conditions:
        if isinstance(cond, CatalogCondition):
            bound |= set(cond.variables)
        elif isinstance(cond, TypeCondition):
            if cond.variable not in bound:
                report.add(
                    Diagnostic(
                        "RUL002",
                        f"type condition tests '{cond.variable}', which no "
                        "LHS pattern or earlier catalog condition binds",
                        source=source,
                        subject=rule.name,
                    )
                )
            bound |= pattern_variables(cond.pattern)
        elif isinstance(cond, StatsCondition):
            if cond.variable not in bound:
                report.add(
                    Diagnostic(
                        "RUL002",
                        f"stats condition consults '{cond.variable}', which no "
                        "LHS pattern or earlier catalog condition binds",
                        source=source,
                        subject=rule.name,
                    )
                )
        # FunCondition is an opaque predicate: nothing to analyze.

    def visit(term: Term, params: set[str]) -> None:
        if isinstance(term, Var):
            if (
                term.name in rule.variables
                and term.name not in bound
                and term.name not in params
            ):
                report.add(
                    Diagnostic(
                        "RUL001",
                        f"RHS uses rule variable '{term.name}' which neither "
                        "the LHS pattern nor any condition binds",
                        source=source,
                        subject=rule.name,
                    )
                )
            return
        if isinstance(term, Apply):
            if term.op in rule.variables and term.op not in bound:
                report.add(
                    Diagnostic(
                        "RUL001",
                        f"RHS applies operator variable '{term.op}' which "
                        "neither the LHS pattern nor any condition binds",
                        source=source,
                        subject=rule.name,
                    )
                )
            for a in term.args:
                visit(a, params)
            return
        if isinstance(term, Fun):
            visit(term.body, params | {n for n, _ in term.params})
            return
        if isinstance(term, (ListTerm, TupleTerm)):
            for i in term.items:
                visit(i, params)
            return
        if isinstance(term, Call):
            visit(term.fn, params)
            for a in term.args:
                visit(a, params)

    visit(rule.rhs, set())


# ----------------------------------------------------------------- RUL003


def _check_liveness(rule: RewriteRule, sos, report: LintReport, source: str) -> bool:
    lhs = rule.lhs
    if not isinstance(lhs, Apply):
        return False
    if lhs.op in rule.variables or sos.is_operator(lhs.op):
        return False
    report.add(
        Diagnostic(
            "RUL003",
            f"LHS head operator '{lhs.op}' is not in the signature; "
            "the rule can never fire",
            source=source,
            subject=rule.name,
        )
    )
    return True


# ----------------------------------------------------------------- RUL005


def _check_catalogs(
    rule: RewriteRule, known: set[str], report: LintReport, source: str
) -> None:
    for cond in rule.conditions:
        if isinstance(cond, CatalogCondition) and cond.catalog not in known:
            report.add(
                Diagnostic(
                    "RUL005",
                    f"condition consults catalog '{cond.catalog}', which the "
                    "database does not define "
                    f"(known: {', '.join(sorted(known)) or 'none'})",
                    source=source,
                    subject=rule.name,
                )
            )


# ----------------------------------------------------------------- RUL006


def _check_loops(
    rules: Sequence[RewriteRule], report: LintReport, source: str
) -> None:
    for i, a in enumerate(rules):
        for b in rules[i + 1 :]:
            if same_term(a.lhs, b.rhs) and same_term(a.rhs, b.lhs):
                report.add(
                    Diagnostic(
                        "RUL006",
                        f"rules '{a.name}' and '{b.name}' rewrite A => B and "
                        "B => A; exhaustive application will not terminate",
                        source=source,
                        subject=a.name,
                    )
                )


# ------------------------------------------- RUL004 / RUL007 / RUL008


def _collect_type_vars(
    rule: RewriteRule,
) -> tuple[set[str], set[str]]:
    """All rule type-variable names, and the subset that stand for tuple
    types (they appear under a type constructor's content position or as a
    lambda parameter type)."""
    names: set[str] = set()
    tuples: set[str] = set()

    def from_type(t: Type, as_param: bool) -> None:
        if isinstance(t, TypeVar):
            names.add(t.name)
            if as_param:
                tuples.add(t.name)
        elif isinstance(t, TypeApp):
            for a in t.args:
                if isinstance(a, Type):
                    # stream(tuple1): a type variable applied under a
                    # constructor holds the content schema.
                    from_type(a, True)

    for rv in rule.variables.values():
        if rv.type_pattern is not None:
            names |= pattern_variables(rv.type_pattern)
            p = rv.type_pattern
            if isinstance(p, PApp) and p.args and isinstance(p.args[0], PVar):
                tuples.add(p.args[0].name)
        for t in rv.fun_args or ():
            from_type(t, True)
        if rv.fun_result is not None:
            from_type(rv.fun_result, False)
    for cond in rule.conditions:
        if isinstance(cond, TypeCondition):
            names |= pattern_variables(cond.pattern)
            p = cond.pattern
            if isinstance(p, PApp) and p.args and isinstance(p.args[0], PVar):
                tuples.add(p.args[0].name)
    for term in (rule.lhs, rule.rhs):
        for node in _walk(term):
            if isinstance(node, Fun):
                for _, ptype in node.params:
                    if ptype is not None:
                        from_type(ptype, True)
    return names, tuples


def _is_ident_sort(sort) -> bool:
    if isinstance(sort, BindSort):
        return _is_ident_sort(sort.sort)
    return (
        isinstance(sort, TypeSort)
        and isinstance(sort.type, TypeApp)
        and sort.type.constructor == "ident"
    )


def _ident_vars(rule: RewriteRule, sos) -> set[str]:
    """Plain rule variables the LHS passes in ``ident`` argument positions —
    attribute names (``modify[a1, v1]``), which dependent post-checks
    require to exist in the subject's tuple type."""
    out: set[str] = set()
    for node in _walk(rule.lhs):
        if not isinstance(node, Apply) or node.op in rule.variables:
            continue
        if not sos.is_operator(node.op):
            continue
        for spec in sos.operators(node.op):
            if len(spec.arg_sorts) != len(node.args):
                continue
            for arg, sort in zip(node.args, spec.arg_sorts):
                if not (isinstance(arg, Var) and arg.name in rule.variables):
                    continue
                rv = rule.variables[arg.name]
                if rv.is_operator_var or rv.type_pattern or rv.kind:
                    continue
                if _is_ident_sort(sort):
                    out.add(arg.name)
    return out


def _synthesize_bindings(
    rule: RewriteRule,
    tuple_vars: set[str],
    type_names: set[str],
    ident_vars: set[str] = frozenset(),
) -> dict[str, TypeArg]:
    """Symbolic type bindings: one synthetic concrete tuple per tuple
    variable, with one attribute per operator variable over it."""
    attrs: dict[str, list[tuple[str, Type]]] = {tv: [] for tv in tuple_vars}
    tbinds: dict[str, TypeArg] = {}
    for rv in rule.variables.values():
        if not rv.is_operator_var:
            continue
        fun_args = rv.fun_args or ()
        if len(fun_args) != 1 or not isinstance(fun_args[0], TypeVar):
            continue
        tv = fun_args[0].name
        result = rv.fun_result
        if isinstance(result, TypeVar):
            rtype: Type = INT
            tbinds.setdefault(result.name, INT)
        elif isinstance(result, Type):
            rtype = result
        else:
            rtype = INT
        attrs.setdefault(tv, []).append((rv.name, rtype))
        # Operator variables bind their name as a Sym, so the synthetic
        # attribute name and e.g. a B-tree key-name binding agree.
        tbinds.setdefault(rv.name, Sym(rv.name))
    if len(tuple_vars) == 1:
        # Attribute-name variables must name real attributes of the (only)
        # schema; with several schemas the target is ambiguous, and no
        # bundled rule mixes the two shapes.
        tv = next(iter(tuple_vars))
        for name in sorted(ident_vars):
            attrs.setdefault(tv, []).append((name, INT))
    for tv in tuple_vars:
        # The default attribute is unique per tuple variable so joins of two
        # synthetic tuples have disjoint schemas.
        pairs = attrs.get(tv) or [(f"k_{tv}", INT)]
        tbinds[tv] = tuple_type(pairs)
    for name in type_names:
        tbinds.setdefault(name, INT)
    return tbinds


def _instantiate_condition_type(
    cond: TypeCondition, tbinds: dict[str, TypeArg], sos
) -> Optional[Type]:
    """A concrete type for a condition-bound variable, resolving still-free
    pattern variables positionally against the constructor's signature."""
    t = _instantiate_papp(cond.pattern, tbinds, sos)
    if t is None or not cond.subtype_ok:
        return t
    # ``subtype_ok`` means the variable's real type is the pattern *or any
    # subtype of it*; abstract heads (relrep) have no operators of their
    # own, so refine to a concrete subtype when one instantiates cleanly.
    refined = _refine_to_subtype(t, sos)
    return refined if refined is not None else t


def _refine_to_subtype(t: Type, sos) -> Optional[Type]:
    from repro.core.patterns import match_type

    if not isinstance(t, TypeApp):
        return None
    for rule in sos.subtypes.rules:
        sup = rule.sup
        if not (isinstance(sup, PApp) and sup.constructor == t.constructor):
            continue
        binds = match_type(sup, t)
        if binds is None:
            continue
        if not pattern_variables(rule.sub) <= set(binds):
            continue
        sub = instantiate_type_pattern(rule.sub, binds)
        if isinstance(sub, Type):
            return sub
    return None


def _instantiate_papp(pattern, tbinds: dict[str, TypeArg], sos) -> Optional[Type]:
    if not isinstance(pattern, PApp):
        t = instantiate_type_pattern(pattern, tbinds)
        return t if isinstance(t, Type) else None
    ts = sos.type_system
    if not ts.has_constructor(pattern.constructor):
        return None
    ctor = next(
        (
            c
            for c in ts.overloads(pattern.constructor)
            if len(c.arg_sorts) == len(pattern.args)
        ),
        None,
    )
    if ctor is None:
        return None
    args: list[TypeArg] = []
    for sub, sort in zip(pattern.args, ctor.arg_sorts):
        if isinstance(sub, PVar) and sub.name in tbinds:
            args.append(tbinds[sub.name])
            continue
        resolved = _fresh_for_sort(
            sort, sub.name if isinstance(sub, PVar) else None, tbinds
        )
        if resolved is None:
            return None
        args.append(resolved)
        if isinstance(sub, PVar):
            tbinds[sub.name] = resolved
    return TypeApp(pattern.constructor, tuple(args))


def _fresh_for_sort(
    sort, name: Optional[str], tbinds: dict[str, TypeArg]
) -> Optional[TypeArg]:
    if isinstance(sort, BindSort):
        return _fresh_for_sort(sort.sort, name, tbinds)
    if isinstance(sort, KindSort):
        return INT
    if isinstance(sort, TypeSort):
        if isinstance(sort.type, TypeApp) and sort.type.constructor == "ident":
            return Sym(name or "a")
        return sort.type
    if isinstance(sort, FunSort) and len(sort.args) == 1:
        param = sort.args[0]
        if isinstance(param, VarSort):
            bound = tbinds.get(param.name)
            if isinstance(bound, Type):
                return fresh_term_arg(bound)
        return fresh_term_arg(ANY)
    return None


def _resolve_rule_type(t: Optional[Type], tbinds: dict[str, TypeArg]) -> Optional[Type]:
    if t is None:
        return None
    if isinstance(t, TypeVar):
        bound = tbinds.get(t.name)
        return bound if isinstance(bound, Type) else ANY
    if isinstance(t, TypeApp):
        changed = False
        args: list[TypeArg] = []
        for a in t.args:
            if isinstance(a, Type):
                r = _resolve_rule_type(a, tbinds)
                changed = changed or r is not a
                args.append(r)
            else:
                args.append(a)
        if changed:
            return TypeApp(t.constructor, tuple(args))
    return t


def _concretize(term: Term, tbinds: dict[str, TypeArg]) -> Term:
    """A clone of ``term`` whose lambda parameter types are concrete."""
    out = clone_term(term)

    def fix(node: Term) -> None:
        if isinstance(node, Fun):
            node.params = tuple(
                (n, _resolve_rule_type(pt, tbinds)) for n, pt in node.params
            )
            fix(node.body)
        elif isinstance(node, Apply):
            for a in node.args:
                fix(a)
        elif isinstance(node, (ListTerm, TupleTerm)):
            for i in node.items:
                fix(i)
        elif isinstance(node, Call):
            fix(node.fn)
            for a in node.args:
                fix(a)

    fix(out)
    return out


def _result_compatible(lt: Type, rt: Type, sos) -> bool:
    if lt == rt:
        return True
    subtypes = sos.subtypes
    if subtypes.is_subtype(rt, lt) or subtypes.is_subtype(lt, rt):
        return True
    # A representation change keeps the content schema: rel(t) may become
    # stream(t), btree(t, ...), relrep(t) — the first argument carries the
    # tuple type in every collection constructor of the bundled models.
    if (
        isinstance(lt, TypeApp)
        and isinstance(rt, TypeApp)
        and lt.args
        and rt.args
        and lt.args[0] == rt.args[0]
    ):
        return True
    return False


def _check_type_preservation(
    rule: RewriteRule, sos, report: LintReport, source: str
) -> None:
    try:
        type_names, tuple_vars = _collect_type_vars(rule)
        tbinds = _synthesize_bindings(
            rule, tuple_vars, type_names - tuple_vars, _ident_vars(rule, sos)
        )
        env: dict[str, Type] = {}
        for cond in rule.conditions:
            if isinstance(cond, TypeCondition):
                t = _instantiate_condition_type(cond, tbinds, sos)
                if t is not None:
                    env[cond.variable] = t
        for rv in rule.variables.values():
            if rv.is_operator_var:
                continue
            if rv.type_pattern is not None:
                t = instantiate_type_pattern(rv.type_pattern, tbinds)
                env[rv.name] = t if isinstance(t, Type) else ANY
            else:
                env.setdefault(rv.name, ANY)
        for cond in rule.conditions:
            if isinstance(cond, CatalogCondition):
                for v in cond.variables:
                    env.setdefault(v, ANY)
        checker = TypeChecker(sos, object_types=env.get)
        lhs = _concretize(rule.lhs, tbinds)
        try:
            lhs = checker.check(lhs, dict(env))
        except TypeCheckError as exc:
            report.add(
                Diagnostic(
                    "RUL008",
                    f"LHS does not typecheck under symbolic bindings: {exc}",
                    source=source,
                    subject=rule.name,
                )
            )
            return
        rhs = _concretize(rule.rhs, tbinds)
        try:
            rhs = checker.check(rhs, dict(env))
        except TypeCheckError as exc:
            report.add(
                Diagnostic(
                    "RUL004",
                    f"RHS does not typecheck under symbolic bindings: {exc}",
                    source=source,
                    subject=rule.name,
                )
            )
            return
        lt, rt = lhs.type, rhs.type
        if lt is None or rt is None:
            raise RuntimeError("typechecker returned an untyped term")
        if not _result_compatible(lt, rt, sos):
            report.add(
                Diagnostic(
                    "RUL004",
                    "rewrite changes the plan type: LHS has type "
                    f"{lt} but RHS has type {rt}",
                    source=source,
                    subject=rule.name,
                )
            )
    except Exception as exc:  # pragma: no cover - analysis fallback
        report.add(
            Diagnostic(
                "RUL007",
                f"could not analyze rule symbolically: {exc}",
                source=source,
                subject=rule.name,
            )
        )


__all__ = ["lint_rules", "lint_optimizer"]
