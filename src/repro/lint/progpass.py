"""Program analysis (progpass): whole SOS programs checked before execution.

:func:`lint_program` statically analyzes a program against a database's
signature and catalog *without executing a single statement* — no
transaction begins, no WAL frame is written, no object value is touched.
Three analysis families over the ``PRG...`` codes:

* **pre-execution typecheck** — every statement is parsed and typechecked
  against an *overlay* catalog that carries the effects of the preceding
  statements (a ``create`` makes its object visible to later statements,
  a ``type`` its alias), so a program that would die on statement 7 is
  rejected whole (``PRG000``);
* **def-use dataflow** over catalog objects — use-before-create
  (``PRG001``), use-after-delete (``PRG002``), duplicate create
  (``PRG003``), dead stores and created-never-used objects (``PRG004``);
* **transaction effects and plan shape** — write-write pairs whose
  earlier effect is discarded inside one atomic program (``PRG005``),
  mutations run outside ``atomic=True`` in a multi-statement program
  (``PRG006``), joins with no equatable attribute pair (``PRG007``) and
  queries over never-``analyze``\\ d relations (``PRG008``).

Diagnostics carry ``(line, column)`` spans into the *original* program
source (statement chunks are re-split here with a line map, because
:func:`~repro.lang.parser.split_statements` drops blank and comment
lines).  Inline ``-- lint: disable=PRG...`` comments suppress findings
exactly as they do for specification sources.

The pass is wired into the session surface as ``Session.check(source)``
and ``connect(precheck="strict"|"warn")`` — see ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    ObjRef,
    Term,
    TupleTerm,
    Var,
)
from repro.core.typecheck import TypeChecker
from repro.core.types import Type, TypeApp
from repro.errors import ParseError, SOSError
from repro.lang.parser import (
    STATEMENT_KEYWORDS,
    AnalyzeStmt,
    CreateStmt,
    DeleteStmt,
    Parser,
    QueryStmt,
    TypeStmt,
    UpdateStmt,
)
from repro.lint.diagnostics import Diagnostic, LintReport

__all__ = ["lint_program"]


# ---------------------------------------------------------------------------
# Statement chunks with spans into the original source
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _Chunk:
    """One statement chunk plus the original line number of each kept line."""

    lines: list[str] = field(default_factory=list)
    linenos: list[int] = field(default_factory=list)

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    @property
    def start(self) -> int:
        return self.linenos[0] if self.linenos else 1

    def map_line(self, chunk_line: Optional[int]) -> Optional[int]:
        """A 1-based line inside :attr:`text` -> the original source line."""
        if chunk_line is None:
            return self.start
        index = max(0, min(chunk_line - 1, len(self.linenos) - 1))
        return self.linenos[index]

    def find_name(self, name: str) -> tuple[int, int]:
        """The original ``(line, column)`` of the first occurrence of
        ``name`` in the chunk (the statement head as a fallback)."""
        pattern = re.compile(rf"\b{re.escape(name)}\b")
        for text, lineno in zip(self.lines, self.linenos):
            m = pattern.search(text)
            if m is not None:
                return lineno, m.start() + 1
        return self.start, 1


def _split_with_spans(source: str) -> tuple[list[_Chunk], Optional[Diagnostic]]:
    """Re-implement :func:`split_statements` keeping original line numbers.

    Must mirror its splitting rule exactly: a statement starts on an
    unindented line whose first word is a statement keyword; blank and
    ``--`` comment lines are dropped.  A program that starts mid-statement
    is returned as a ``PRG000`` diagnostic instead of raising.
    """
    chunks: list[_Chunk] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("--"):
            continue
        first_word = stripped.split(None, 1)[0]
        starts = first_word in STATEMENT_KEYWORDS and not raw[:1].isspace()
        if starts:
            chunks.append(_Chunk([line], [lineno]))
        elif not chunks:
            return [], Diagnostic(
                "PRG000",
                f"program must start with a statement keyword, got: {stripped}",
                line=lineno,
                column=1,
            )
        else:
            chunks[-1].lines.append(line)
            chunks[-1].linenos.append(lineno)
    return chunks, None


_HEAD_NAME_RE = re.compile(
    r"^\s*(create|delete|update|type)\s+([A-Za-z_][A-Za-z0-9_]*)"
)


def _future_definitions(chunks: list[_Chunk]) -> tuple[dict[str, int], dict[str, int]]:
    """A cheap textual pre-scan: which objects / type aliases the program
    defines, and in which statement.  Used to tell "created later"
    (``PRG001``) apart from "does not exist at all" before parsing."""
    creates: dict[str, int] = {}
    aliases: dict[str, int] = {}
    for index, chunk in enumerate(chunks):
        m = _HEAD_NAME_RE.match(chunk.lines[0])
        if m is None:
            continue
        if m.group(1) == "create":
            creates.setdefault(m.group(2), index)
        elif m.group(1) == "type":
            aliases.setdefault(m.group(2), index)
    return creates, aliases


# ---------------------------------------------------------------------------
# Term walks
# ---------------------------------------------------------------------------


def _object_refs(term: Term, known: set[str], bound: frozenset = frozenset()) -> set[str]:
    """Names from ``known`` the term references outside lambda scopes.

    Free identifiers *not* in ``known`` are left alone — they are attribute
    names for the typechecker's implicit-lambda elaboration, not objects.
    """
    refs: set[str] = set()
    if isinstance(term, (Var, ObjRef)):
        if term.name in known and term.name not in bound:
            refs.add(term.name)
    elif isinstance(term, Apply):
        for a in term.args:
            refs |= _object_refs(a, known, bound)
    elif isinstance(term, Fun):
        inner = bound | {name for name, _ in term.params}
        refs |= _object_refs(term.body, known, inner)
    elif isinstance(term, (ListTerm, TupleTerm)):
        for item in term.items:
            refs |= _object_refs(item, known, bound)
    elif isinstance(term, Call):
        refs |= _object_refs(term.fn, known, bound)
        for a in term.args:
            refs |= _object_refs(a, known, bound)
    return refs


def _param_refs(term: Term, params: set[str]) -> set[str]:
    """Which of ``params`` a condition subterm references."""
    return _object_refs(term, params)


def _join_nodes(term: Term):
    """Every ``join`` application in the term (post-typecheck walk)."""
    if isinstance(term, Apply):
        if term.op == "join":
            yield term
        for a in term.args:
            yield from _join_nodes(a)
    elif isinstance(term, Fun):
        yield from _join_nodes(term.body)
    elif isinstance(term, (ListTerm, TupleTerm)):
        for item in term.items:
            yield from _join_nodes(item)
    elif isinstance(term, Call):
        yield from _join_nodes(term.fn)
        for a in term.args:
            yield from _join_nodes(a)


def _has_equatable_pair(condition: Fun) -> bool:
    """True when the join condition contains an ``=`` comparison that
    relates both tuple parameters — the shape an equi-join rewrite (and a
    hash/merge plan) can use.  Anything else degenerates to a filtered
    cartesian product."""
    params = {name for name, _ in condition.params}
    if len(params) < 2:
        return True  # not the two-tuple shape this check understands

    def walk(term: Term) -> bool:
        if isinstance(term, Apply):
            if term.op == "=" and len(term.args) == 2:
                left = _param_refs(term.args[0], params)
                right = _param_refs(term.args[1], params)
                if left and right and left != right:
                    return True
            return any(walk(a) for a in term.args)
        if isinstance(term, Fun):
            return walk(term.body)
        if isinstance(term, (ListTerm, TupleTerm)):
            return any(walk(item) for item in term.items)
        if isinstance(term, Call):
            return walk(term.fn) or any(walk(a) for a in term.args)
        return False

    return walk(condition.body)


def _is_relation(t: Optional[Type]) -> bool:
    return isinstance(t, TypeApp) and t.constructor == "rel"


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


class _ProgramAnalysis:
    """One program's analysis state: the overlay catalog plus dataflow facts."""

    def __init__(self, database, source_name: str, atomic: bool):
        self.db = database
        self.source_name = source_name
        self.atomic = atomic
        self.report = LintReport()
        # Overlay catalog: committed state + the program's own effects.
        self.live: dict[str, Type] = {
            name: obj.type for name, obj in database.objects.items()
        }
        self.aliases: dict[str, Type] = dict(database.aliases)
        self.analyzed: set[str] = set(database.stats.entries)
        # ``analyze`` stores statistics under the *representation* object;
        # credit them to the model relation via the rep directory too.
        rep = database.objects.get("rep")
        if rep is not None and hasattr(rep.value, "rows"):
            for row in rep.value.rows:
                names = [getattr(cell, "name", cell) for cell in row]
                if len(names) == 2 and names[1] in self.analyzed:
                    self.analyzed.add(names[0])
        self.dropped: dict[str, int] = {}
        self.created: dict[str, int] = {}
        # Dataflow: the last statement that wrote each object, and whether
        # anything read the object since that write.
        self.last_write: dict[str, tuple[int, _Chunk]] = {}
        self.read_since: set[str] = set()
        self.used_since_create: set[str] = set()
        self.parser = Parser(
            database.sos,
            aliases=self.aliases,
            is_object=self._is_known_name,
        )
        self.typechecker = TypeChecker(
            database.sos, object_types=lambda name: self.live.get(name)
        )
        self.future_creates: dict[str, int] = {}

    def _is_known_name(self, name: str) -> bool:
        # Future and dropped names parse as object references so the
        # dataflow pass can report PRG001/PRG002 instead of a parse error.
        return (
            name in self.live
            or name in self.dropped
            or name in self.future_creates
        )

    # ------------------------------------------------------------ reporting

    def add(
        self,
        code: str,
        message: str,
        *,
        subject: str = "",
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        self.report.add(
            Diagnostic(
                code,
                message,
                source=self.source_name,
                subject=subject,
                line=line,
                column=column,
            )
        )

    def _flag_name(
        self, code: str, message: str, name: str, chunk: _Chunk
    ) -> None:
        line, column = chunk.find_name(name)
        self.add(code, message, subject=name, line=line, column=column)

    # ------------------------------------------------------------- dataflow

    def _check_uses(self, names: set[str], index: int, chunk: _Chunk) -> bool:
        """Report refs to not-yet / no-longer existing objects.  Returns
        True when the statement can still be typechecked (all refs live)."""
        ok = True
        for name in sorted(names):
            if name in self.live:
                continue
            ok = False
            if name in self.dropped:
                self._flag_name(
                    "PRG002",
                    f"object {name} was deleted by statement "
                    f"{self.dropped[name] + 1} and is used here",
                    name,
                    chunk,
                )
            elif name in self.future_creates:
                self._flag_name(
                    "PRG001",
                    f"object {name} is used before statement "
                    f"{self.future_creates[name] + 1} creates it",
                    name,
                    chunk,
                )
            else:
                self._flag_name(
                    "PRG000", f"no such object: {name}", name, chunk
                )
        return ok

    def _note_reads(self, names: set[str]) -> None:
        for name in names:
            self.read_since.add(name)
            self.used_since_create.add(name)

    def _note_write(
        self, name: str, index: int, chunk: _Chunk, *, kills: bool = False
    ) -> None:
        """A statement (re)defines ``name``'s value.  A previous write that
        nothing read in between is a dead store — reported as ``PRG005``
        inside an atomic program (its write sets statically conflict; the
        earlier effect is discarded at commit) and ``PRG004`` otherwise."""
        previous = self.last_write.get(name)
        if previous is not None and name not in self.read_since:
            prev_index, prev_chunk = previous
            line, column = prev_chunk.find_name(name)
            verb = "deleted" if kills else "overwritten"
            if self.atomic:
                self.add(
                    "PRG005",
                    f"statements {prev_index + 1} and {index + 1} of this "
                    f"atomic program both write {name}; the earlier value "
                    f"is {verb} without ever being read",
                    subject=name,
                    line=line,
                    column=column,
                )
            else:
                self.add(
                    "PRG004",
                    f"value written to {name} by statement {prev_index + 1} "
                    f"is {verb} by statement {index + 1} without ever "
                    "being read",
                    subject=name,
                    line=line,
                    column=column,
                )
        if kills:
            self.last_write.pop(name, None)
        else:
            self.last_write[name] = (index, chunk)
        self.read_since.discard(name)

    # ----------------------------------------------------------- statements

    def statement(self, index: int, chunk: _Chunk) -> None:
        try:
            statement = self.parser.parse_statement(chunk.text)
        except ParseError as exc:
            self.add(
                "PRG000",
                str(exc),
                line=chunk.map_line(exc.line),
                column=exc.column,
            )
            return
        except SOSError as exc:
            self.add("PRG000", str(exc), line=chunk.start, column=1)
            return
        if isinstance(statement, TypeStmt):
            self._type(statement, chunk)
        elif isinstance(statement, CreateStmt):
            self._create(statement, index, chunk)
        elif isinstance(statement, DeleteStmt):
            self._delete(statement, index, chunk)
        elif isinstance(statement, UpdateStmt):
            self._update(statement, index, chunk)
        elif isinstance(statement, QueryStmt):
            self._query(statement, index, chunk)
        elif isinstance(statement, AnalyzeStmt):
            self._analyze(statement, index, chunk)

    def _type(self, statement: TypeStmt, chunk: _Chunk) -> None:
        try:
            self.db.sos.type_system.check_type(statement.type)
        except SOSError as exc:
            self.add("PRG000", str(exc), line=chunk.start, column=1)
            return
        self.aliases[statement.name] = statement.type

    def _create(self, statement: CreateStmt, index: int, chunk: _Chunk) -> None:
        name = statement.name
        if name in self.live:
            self._flag_name(
                "PRG003",
                f"object {name} already exists"
                + (
                    f" (created by statement {self.created[name] + 1})"
                    if name in self.created
                    else " in the catalog"
                ),
                name,
                chunk,
            )
            return
        try:
            self.db.sos.type_system.check_type(statement.type)
            self.db.level_of_type(statement.type)
        except SOSError as exc:
            self.add(
                "PRG000", str(exc), subject=name, line=chunk.start, column=1
            )
            return
        self.live[name] = statement.type
        self.created[name] = index
        self.dropped.pop(name, None)
        self.used_since_create.discard(name)
        self.read_since.discard(name)
        self.last_write.pop(name, None)

    def _delete(self, statement: DeleteStmt, index: int, chunk: _Chunk) -> None:
        name = statement.name
        if not self._check_uses({name}, index, chunk):
            return
        if name in self.created and name not in self.used_since_create:
            line, column = chunk.find_name(name)
            self.add(
                "PRG004",
                f"object {name} is created by statement "
                f"{self.created[name] + 1} and deleted here without ever "
                "being used",
                subject=name,
                line=line,
                column=column,
            )
        else:
            self._note_write(name, index, chunk, kills=True)
        del self.live[name]
        self.dropped[name] = index
        self.created.pop(name, None)
        self.analyzed.discard(name)
        self.last_write.pop(name, None)

    def _update(self, statement: UpdateStmt, index: int, chunk: _Chunk) -> None:
        name = statement.name
        known = set(self.live) | set(self.dropped) | set(self.future_creates)
        refs = _object_refs(statement.expr, known)
        if not self._check_uses(refs | {name}, index, chunk):
            return
        self._note_reads(refs)
        self.used_since_create.add(name)
        try:
            term = self.typechecker.check_value_term(
                statement.expr, self.live[name]
            )
        except SOSError as exc:
            self.add("PRG000", str(exc), subject=name,
                     line=chunk.start, column=1)
            return
        self._plan_shape(term, refs, index, chunk)
        self._note_write(name, index, chunk)

    def _query(self, statement: QueryStmt, index: int, chunk: _Chunk) -> None:
        known = set(self.live) | set(self.dropped) | set(self.future_creates)
        refs = _object_refs(statement.expr, known)
        if not self._check_uses(refs, index, chunk):
            return
        self._note_reads(refs)
        try:
            term = self.typechecker.check(statement.expr)
        except SOSError as exc:
            self.add("PRG000", str(exc), line=chunk.start, column=1)
            return
        self._plan_shape(term, refs, index, chunk)
        for name in sorted(refs):
            if _is_relation(self.live.get(name)) and name not in self.analyzed:
                self._flag_name(
                    "PRG008",
                    f"relation {name} has no statistics; the optimizer "
                    f"falls back to defaults (run: analyze {name})",
                    name,
                    chunk,
                )

    def _analyze(self, statement: AnalyzeStmt, index: int, chunk: _Chunk) -> None:
        names = set(statement.names)
        if not self._check_uses(names, index, chunk):
            return
        self._note_reads(names)
        if statement.names:
            self.analyzed |= names
        else:
            self.analyzed |= set(self.live)

    def _plan_shape(
        self, term: Term, refs: set[str], index: int, chunk: _Chunk
    ) -> None:
        for node in _join_nodes(term):
            condition = next(
                (a for a in node.args if isinstance(a, Fun)), None
            )
            if condition is not None and not _has_equatable_pair(condition):
                line, column = chunk.find_name("join")
                self.add(
                    "PRG007",
                    "join condition relates no attribute of one operand to "
                    "an attribute of the other by =; this evaluates as a "
                    "filtered cartesian product",
                    subject="join",
                    line=line,
                    column=column,
                )

    # -------------------------------------------------------------- program

    def finish(self, chunks: list[_Chunk]) -> None:
        if self.atomic or len(chunks) < 2:
            return
        mutations = [
            (index, chunk)
            for index, chunk in enumerate(chunks)
            if chunk.lines[0].split(None, 1)[0]
            in ("type", "create", "update", "delete")
        ]
        if len(mutations) >= 2:
            index, chunk = mutations[1]
            self.add(
                "PRG006",
                f"program has {len(mutations)} mutating statements but runs "
                "without atomic=True; a failure here leaves the preceding "
                "statements committed",
                line=chunk.start,
                column=1,
            )


def lint_program(
    database,
    program: str,
    *,
    atomic: bool = False,
    source: str = "<program>",
) -> LintReport:
    """Statically analyze ``program`` against ``database`` without
    executing it; returns the :class:`LintReport` with ``PRG...`` findings.

    ``atomic`` mirrors the ``run(source, atomic=...)`` flag the program
    would execute under: it selects between the ``PRG005`` (conflicting
    write sets inside one atomic program) and ``PRG006`` (mutations
    outside ``atomic=True``) transaction-effect diagnostics.  Inline
    ``-- lint: disable=...`` comments in the program are honored.
    """
    chunks, head_error = _split_with_spans(program)
    if head_error is not None:
        report = LintReport([
            Diagnostic(
                head_error.code,
                head_error.message,
                source=source,
                line=head_error.line,
                column=head_error.column,
            )
        ])
        return report.suppress(source_text=program)
    analysis = _ProgramAnalysis(database, source, atomic)
    analysis.future_creates, _ = _future_definitions(chunks)
    for index, chunk in enumerate(chunks):
        # The pre-scan names every create; once reached, a name stops
        # being "future" (a second create is PRG003, not PRG001).
        analysis.future_creates = {
            name: at
            for name, at in analysis.future_creates.items()
            if at > index
        }
        analysis.statement(index, chunk)
    analysis.finish(chunks)
    return analysis.report.suppress(source_text=program).sorted()
