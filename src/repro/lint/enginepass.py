"""Engine self-lint (enginepass): the project's concurrency discipline, checked.

The concurrent server (MVCC engine + asyncio socket loop + WAL) rests on
hand-maintained invariants no runtime test reliably exercises: shared
MVCC state is only touched under the engine lock, nothing blocks while
holding it, nothing blocks the event loop, every telemetry metric is
pre-declared, every fault site is registered.  :func:`lint_engine`
encodes those rules as an AST analysis over ``src/repro`` itself and
reports violations with the same :class:`~repro.lint.diagnostics.Diagnostic`
machinery user-facing passes use — the ``ENG...`` codes:

``ENG001``  mutation of MVCC shared state outside ``with self._lock``
``ENG002``  blocking call (``fsync``/``sleep``/socket I/O) under the lock
``ENG003``  blocking or synchronous-engine call on the event-loop thread
``ENG004``  ``await`` while holding a synchronous lock
``ENG005``  telemetry metric fed but never pre-declared
``ENG006``  ``fault_point`` site not registered in ``repro.testing.faults``

Audited exceptions carry an inline Python comment::

    self.metrics[name] += 1  # lint: disable=ENG001 -- callers hold the lock

with the same own-line / standalone-line / ``disable-file`` semantics as
the ``--`` spec-comment suppressions.  Run it as
``python -m repro lint --self``; CI treats findings as build failures.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Optional

from repro.lint.diagnostics import Diagnostic, LintReport

__all__ = ["lint_engine", "lint_engine_source"]


# Attributes that make up MVCC / registry shared state.  Touching one of
# these on ``self`` in a lock-owning class outside a lock scope is ENG001.
GUARDED_ATTRS = frozenset(
    {
        "versions",
        "alias_versions",
        "commit_version",
        "open_transactions",
        "metrics",
        "counters",
        "gauges",
        "histograms",
        "_saved",
        "_sessions",
        "_entries",
        "_journal",
    }
)

#: Method calls that mutate a container in place.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Terminal attribute names whose call blocks the calling thread.
_BLOCKING_ATTRS = frozenset(
    {
        "sleep",
        "fsync",
        "flush",
        "recv",
        "sendall",
        "accept",
        "connect",
        "create_connection",
    }
)

#: Synchronous engine entry points that must be ``to_thread``-wrapped on
#: the event loop (journal bookkeeping lookups are cheap and excluded).
_ENGINE_HEAVY = frozenset(
    {
        "run",
        "run_one",
        "query",
        "execute",
        "commit",
        "rollback",
        "checkpoint",
        "dump",
        "lint",
        "check",
        "session",
        "close",
        "begin",
    }
)

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(disable|disable-file)\s*=\s*([A-Z0-9,\s]+)"
)


def scan_python_suppressions(text: str) -> tuple[set[str], dict[int, set[str]]]:
    """``# lint: disable=ENGnnn`` comments, with the spec-comment semantics:
    a trailing comment suppresses its own line; a standalone comment
    suppresses the next *code* line (justifications may continue over
    further ``#`` lines); ``disable-file`` the whole file."""
    file_wide: set[str] = set()
    by_line: dict[int, set[str]] = {}
    pending: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        m = _SUPPRESS_RE.search(raw)
        if m is not None:
            codes = {c.strip() for c in m.group(2).split(",") if c.strip()}
            if m.group(1) == "disable-file":
                file_wide |= codes
                continue
            by_line.setdefault(lineno, set()).update(codes)
            if stripped.startswith("#"):
                pending |= codes
                continue
        if pending:
            if stripped.startswith("#"):
                continue  # the justification block keeps going
            by_line.setdefault(lineno, set()).update(pending)
            pending = set()
    return file_wide, by_line


# ---------------------------------------------------------------------------
# Small AST helpers
# ---------------------------------------------------------------------------


def _attr_chain(node: ast.AST) -> list[str]:
    """``self.engine._lock`` -> ``["self", "engine", "_lock"]`` (empty list
    when the expression is not a plain name/attribute chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_lock_expr(node: ast.AST) -> bool:
    chain = _attr_chain(node)
    return bool(chain) and chain[-1].lstrip("_").endswith("lock")


def _with_holds_lock(node: ast.With | ast.AsyncWith) -> bool:
    return any(_is_lock_expr(item.context_expr) for item in node.items)


def _self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guarded_target(node: ast.AST) -> Optional[str]:
    """The guarded attribute a store/del target touches, if any.

    Catches ``self.attr = ...``, ``self.attr += ...``,
    ``self.attr[k] = ...`` and ``del self.attr[k]``.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    attr = _self_attr(node)
    if attr is not None and attr in GUARDED_ATTRS:
        return attr
    return None


def _call_string_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _collect_strings(node: ast.AST) -> Iterable[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


# ---------------------------------------------------------------------------
# Per-file visitor
# ---------------------------------------------------------------------------


class _FileLint(ast.NodeVisitor):
    """All six checks over one module, one traversal.

    The visitor threads three pieces of lexical context: whether the
    current statement is inside a ``with <lock>`` scope (``lock_depth``),
    whether the enclosing function is a coroutine (``async_depth``), and
    whether the enclosing class owns an engine lock (``lock_class``).
    """

    def __init__(
        self,
        source_name: str,
        declared_metrics: set[str],
        fault_sites: set[str],
    ):
        self.source_name = source_name
        self.declared_metrics = declared_metrics
        self.fault_sites = fault_sites
        self.findings: list[Diagnostic] = []
        self.lock_depth = 0
        self.async_depth = 0
        self.lock_class = False
        self.in_init = False

    # ------------------------------------------------------------ reporting

    def add(self, code: str, message: str, node: ast.AST, subject: str = "") -> None:
        self.findings.append(
            Diagnostic(
                code,
                message,
                source=self.source_name,
                subject=subject,
                line=getattr(node, "lineno", None),
                column=getattr(node, "col_offset", -1) + 1 or None,
            )
        )

    # ------------------------------------------------------------- scoping

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer = self.lock_class
        self.lock_class = self._owns_lock(node)
        self.generic_visit(node)
        self.lock_class = outer

    @staticmethod
    def _owns_lock(node: ast.ClassDef) -> bool:
        """True when the class's ``__init__`` assigns a ``self.*lock``
        attribute — the marker of a lock-owning (engine-like) class."""
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                for sub in ast.walk(item):
                    if isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            attr = _self_attr(target)
                            if attr is not None and attr.lstrip("_").endswith(
                                "lock"
                            ):
                                return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        outer_async, outer_lock = self.async_depth, self.lock_depth
        outer_init = self.in_init
        # A nested ``def`` runs on whatever thread calls it, and lock
        # scopes do not extend into it lexically.
        self.async_depth = 0
        self.lock_depth = 0
        self.in_init = node.name == "__init__"
        self.generic_visit(node)
        self.async_depth, self.lock_depth = outer_async, outer_lock
        self.in_init = outer_init

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        outer_async, outer_lock = self.async_depth, self.lock_depth
        outer_init = self.in_init
        self.async_depth = 1
        self.lock_depth = 0
        self.in_init = False
        self.generic_visit(node)
        self.async_depth, self.lock_depth = outer_async, outer_lock
        self.in_init = outer_init

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        held = _with_holds_lock(node) and not isinstance(node, ast.AsyncWith)
        if held:
            self.lock_depth += 1
        self.generic_visit(node)
        if held:
            self.lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -------------------------------------------------------------- ENG001

    def _check_store(self, target: ast.AST, node: ast.AST) -> None:
        if not self.lock_class or self.in_init or self.lock_depth:
            return
        attr = _guarded_target(target)
        if attr is not None:
            self.add(
                "ENG001",
                f"self.{attr} is MVCC shared state; mutate it inside "
                "`with self._lock` (or annotate an audited call path)",
                node,
                subject=attr,
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    # ------------------------------------------------------ ENG004 / await

    def visit_Await(self, node: ast.Await) -> None:
        if self.lock_depth:
            self.add(
                "ENG004",
                "await while holding a synchronous lock: every other "
                "thread (and this event loop) blocks until the coroutine "
                "resumes",
                node,
            )
        self.generic_visit(node)

    # ----------------------------------------------------------- ENG00 2/3/5/6

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        terminal = chain[-1] if chain else ""

        # ENG001 (mutator-method form): self.<guarded>.append(...)
        if (
            self.lock_class
            and not self.in_init
            and not self.lock_depth
            and terminal in _MUTATORS
            and isinstance(node.func, ast.Attribute)
        ):
            attr = _self_attr(node.func.value)
            if attr is None and isinstance(node.func.value, ast.Subscript):
                attr = _self_attr(node.func.value.value)
            if attr is not None and attr in GUARDED_ATTRS:
                self.add(
                    "ENG001",
                    f"self.{attr}.{terminal}() mutates MVCC shared state; "
                    "call it inside `with self._lock`",
                    node,
                    subject=attr,
                )

        # ``asyncio.sleep`` (and friends) are awaitables, not thread blocks.
        blocking = (
            terminal in _BLOCKING_ATTRS
            and len(chain) > 1
            and chain[0] != "asyncio"
        ) or chain == ["open"]
        if blocking and self.lock_depth:
            self.add(
                "ENG002",
                f"blocking call {'.'.join(chain)}() while holding the "
                "engine lock stalls every session on the server",
                node,
                subject=terminal,
            )
        if self.async_depth:
            if blocking and terminal != "flush":
                self.add(
                    "ENG003",
                    f"blocking call {'.'.join(chain)}() on the event-loop "
                    "thread freezes all connections; use asyncio.to_thread",
                    node,
                    subject=terminal,
                )
            elif (
                "engine" in chain[:-1]
                and terminal in _ENGINE_HEAVY
            ):
                self.add(
                    "ENG003",
                    f"synchronous engine call {'.'.join(chain)}() on the "
                    "event-loop thread; wrap it in asyncio.to_thread",
                    node,
                    subject=terminal,
                )

        # ENG005: telemetry producers must feed pre-declared families.
        if (
            len(chain) == 2
            and chain[0] == "telemetry"
            and terminal in ("incr", "gauge", "observe_value")
        ):
            name = _call_string_arg(node)
            if name is not None and name not in self.declared_metrics:
                self.add(
                    "ENG005",
                    f"metric {name!r} is fed here but never pre-declared; "
                    "add it to CORE_METRIC_FAMILIES so renderers list it "
                    "from startup",
                    node,
                    subject=name,
                )

        # ENG006: fault sites must be registered.
        if terminal == "fault_point":
            site = _call_string_arg(node)
            if site is not None and site not in self.fault_sites:
                self.add(
                    "ENG006",
                    f"fault site {site!r} is injected here but not "
                    "registered in repro.testing.faults.FAULT_SITES, so "
                    "no test can arm it",
                    node,
                    subject=site,
                )

        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Declared-metrics collection
# ---------------------------------------------------------------------------


def _declared_metrics(tree: ast.AST) -> set[str]:
    """Metric names a module pre-declares: string literals inside any
    ``*METRIC_FAMILIES`` assignment and inside any ``declare(...)`` call."""
    declared: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.endswith(
                    "METRIC_FAMILIES"
                ):
                    declared.update(_collect_strings(node.value))
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain[-1] == "declare":
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    declared.update(_collect_strings(arg))
    return declared


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_engine_source(
    text: str,
    source: str = "<module>",
    *,
    declared_metrics: Optional[set[str]] = None,
    fault_sites: Optional[set[str]] = None,
) -> LintReport:
    """Run every ENG check over one module's source text (unit-test entry
    point; :func:`lint_engine` drives it over the whole package)."""
    if declared_metrics is None or fault_sites is None:
        from repro.testing.faults import FAULT_SITES

        if fault_sites is None:
            fault_sites = set(FAULT_SITES)
        if declared_metrics is None:
            declared_metrics = _declared_metrics(ast.parse(text))
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return LintReport(
            [
                Diagnostic(
                    "ENG001",
                    f"file does not parse: {exc.msg}",
                    source=source,
                    line=exc.lineno,
                    column=exc.offset,
                )
            ]
        )
    visitor = _FileLint(source, declared_metrics, fault_sites)
    visitor.visit(tree)
    file_wide, by_line = scan_python_suppressions(text)
    report = LintReport(visitor.findings)
    kept = [
        d
        for d in report.suppress(file_wide)
        if d.line is None or d.code not in by_line.get(d.line, ())
    ]
    return LintReport(kept)


def lint_engine(root: Optional[str] = None) -> LintReport:
    """Self-lint the ``repro`` package tree rooted at ``root`` (defaults
    to the installed package directory).  Returns one sorted report whose
    diagnostic sources are paths like ``repro/server/mvcc.py``."""
    from repro.testing.faults import FAULT_SITES

    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    base = os.path.dirname(root.rstrip(os.sep))
    sources: dict[str, str] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, base).replace(os.sep, "/")
            with open(path, encoding="utf-8") as handle:
                sources[rel] = handle.read()
    declared: set[str] = set()
    for text in sources.values():
        try:
            declared |= _declared_metrics(ast.parse(text))
        except SyntaxError:
            continue
    report = LintReport()
    for rel, text in sources.items():
        report.extend(
            lint_engine_source(
                text,
                rel,
                declared_metrics=declared,
                fault_sites=set(FAULT_SITES),
            )
        )
    return report.sorted()
