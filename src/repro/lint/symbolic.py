"""Symbolic typechecking support for the rule pass.

The type-preservation check (RUL004) typechecks a rule's LHS and RHS once,
under *fresh typed variables*, instead of trusting per-query typecheck
retries at optimization time.  Rule type variables (``tuple1`` …) are
instantiated with synthetic concrete types; rule term variables become
environment entries; variables whose types nothing constrains get the
:class:`AnyType` wildcard, which the core typechecker treats as matching
every sort (see the ``wildcard`` hooks in :mod:`repro.core.typecheck` and
:mod:`repro.core.signature`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.patterns import TypePattern, instantiate_pattern
from repro.core.terms import Fun, Var
from repro.core.types import (
    TermArg,
    Type,
    TypeApp,
    TypeArg,
    tuple_type,
)


class AnyType(Type):
    """The lint wildcard: equal to every type, member of every kind.

    The core typechecker and type system special-case any type object with
    a truthy ``wildcard`` attribute, so this class needs no registration.
    """

    __slots__ = ()
    wildcard = True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type)

    def __ne__(self, other: object) -> bool:
        return not isinstance(other, Type)

    def __hash__(self) -> int:
        return hash("<any-type>")

    def __repr__(self) -> str:
        return "AnyType()"


ANY = AnyType()

INT = TypeApp("int")


def synth_tuple(attrs: list[tuple[str, Type]]) -> TypeApp:
    """A synthetic concrete tuple type; always carries at least one ordered
    attribute (``k: int``) so B-tree shapes and sort orders are satisfiable."""
    if not attrs:
        attrs = [("k", INT)]
    return tuple_type(attrs)


def instantiate_type_pattern(
    pattern: TypePattern, tbinds: dict[str, TypeArg]
) -> Optional[TypeArg]:
    """Instantiate a rule's type pattern under symbolic bindings, returning
    ``None`` when a variable is unbound (the caller falls back to ANY)."""
    try:
        return instantiate_pattern(pattern, tbinds)
    except KeyError:
        return None


def fresh_term_arg(param_type: Type) -> TermArg:
    """A placeholder function argument for function-valued constructor
    positions (the LSD-tree key function): the identity lambda."""
    return TermArg(Fun((("t", param_type),), Var("t")))


__all__ = [
    "ANY",
    "AnyType",
    "INT",
    "fresh_term_arg",
    "instantiate_type_pattern",
    "synth_tuple",
]
