"""The diagnostics framework behind :mod:`repro.lint`.

A :class:`Diagnostic` is one finding: a stable code (``SOS001`` …,
``RUL001`` …), a severity, a message, and an optional ``(line, column)``
span into the source the analyzed object came from.  A :class:`LintReport`
collects them, applies inline suppressions, and renders as text or JSON.

Suppressions use the spec/rule comment syntax::

    -- lint: disable=SOS010,RUL006      (this line, or the next one when
                                         the comment stands alone)
    -- lint: disable-file=SOS010        (the whole file)
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

ERROR = "error"
WARNING = "warn"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

#: Every stable diagnostic code with its default severity and summary.
CODES: dict[str, tuple[str, str]] = {
    "SOS000": (ERROR, "specification source failed to parse"),
    "SOS001": (ERROR, "quantifier or constructor references an unknown kind"),
    "SOS002": (ERROR, "duplicate operator signature"),
    "SOS003": (WARNING, "operator signature shadowed by an earlier identical one"),
    "SOS004": (ERROR, "quantifier pattern uses an unknown constructor or wrong arity"),
    "SOS005": (WARNING, "specs of one operator disagree on concrete syntax"),
    "SOS006": (ERROR, "syntax pattern arity differs from the argument count"),
    "SOS007": (ERROR, "subtype rules form a cycle"),
    "SOS008": (WARNING, "representation type unreachable (no operator, no subtype path)"),
    "SOS009": (ERROR, "update function violates first-arg-type = result-type"),
    "SOS010": (INFO, "operator has no documentation (missing from spec.describe)"),
    "RUL001": (ERROR, "rule RHS uses a variable the LHS and conditions never bind"),
    "RUL002": (ERROR, "rule condition references a variable that is never bound"),
    "RUL003": (ERROR, "dead rule: LHS head operator not in the signature"),
    "RUL004": (ERROR, "rule is not type-preserving"),
    "RUL005": (WARNING, "condition references an unknown catalog"),
    "RUL006": (WARNING, "rule pair rewrites A => B and B => A (direct loop)"),
    "RUL007": (INFO, "rule could not be statically analyzed"),
    "RUL008": (WARNING, "rule LHS fails the symbolic typecheck"),
    "PRG000": (ERROR, "program statement failed to parse or typecheck"),
    "PRG001": (ERROR, "object used before the statement that creates it"),
    "PRG002": (ERROR, "object used after delete"),
    "PRG003": (ERROR, "duplicate create of an existing object"),
    "PRG004": (WARNING, "dead store: created or written value is never used"),
    "PRG005": (WARNING, "conflicting write sets inside one atomic program"),
    "PRG006": (WARNING, "mutations in a multi-statement program outside atomic=True"),
    "PRG007": (WARNING, "join condition has no equatable attribute pair (cartesian blowup)"),
    "PRG008": (INFO, "query touches a relation that was never analyzed"),
    "ENG001": (ERROR, "MVCC shared state mutated outside the engine lock"),
    "ENG002": (WARNING, "blocking call while holding the engine lock"),
    "ENG003": (WARNING, "blocking or engine call on the event-loop thread"),
    "ENG004": (ERROR, "await while holding a synchronous lock"),
    "ENG005": (WARNING, "telemetry metric fed but never pre-declared"),
    "ENG006": (ERROR, "fault site injected but not registered in repro.testing.faults"),
}


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding of an analysis pass."""

    code: str
    message: str
    severity: str = ""
    source: str = ""
    """What was analyzed: a model name, rule set name, or file path."""
    subject: str = ""
    """The operator / constructor / rule the finding is about."""
    line: Optional[int] = None
    column: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.severity:
            default = CODES.get(self.code)
            object.__setattr__(
                self, "severity", default[0] if default else WARNING
            )

    @property
    def span(self) -> Optional[tuple[int, int]]:
        if self.line is None:
            return None
        return (self.line, self.column if self.column is not None else 1)

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "source": self.source,
            "subject": self.subject,
            "line": self.line,
            "column": self.column,
        }

    def render(self) -> str:
        where = self.source or "<signature>"
        if self.line is not None:
            where += f":{self.line}"
            if self.column is not None:
                where += f":{self.column}"
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{where}: {self.severity}: {self.code}{subject}: {self.message}"


_SUPPRESS_RE = re.compile(
    r"--\s*lint:\s*(disable|disable-file)\s*=\s*([A-Z0-9,\s]+)"
)


def scan_suppressions(text: str) -> tuple[set[str], dict[int, set[str]]]:
    """Collect inline suppressions from specification/rule source text.

    Returns ``(file_wide_codes, {line: codes})``.  A trailing comment
    suppresses its own line; a standalone comment line suppresses the next
    line as well (so suppressions can sit above long declarations).
    """
    file_wide: set[str] = set()
    by_line: dict[int, set[str]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        m = _SUPPRESS_RE.search(raw)
        if m is None:
            continue
        codes = {c.strip() for c in m.group(2).split(",") if c.strip()}
        if m.group(1) == "disable-file":
            file_wide |= codes
            continue
        by_line.setdefault(lineno, set()).update(codes)
        if raw.strip().startswith("--"):
            by_line.setdefault(lineno + 1, set()).update(codes)
    return file_wide, by_line


class LintReport:
    """A collection of diagnostics with rendering and filtering."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -------------------------------------------------------------- filtering

    def suppress(
        self,
        codes: Iterable[str] = (),
        source_text: Optional[str] = None,
    ) -> "LintReport":
        """A new report without suppressed diagnostics.

        ``codes`` suppresses globally; ``source_text`` is scanned for
        ``-- lint: disable=...`` comments matched against diagnostic spans.
        """
        file_wide = set(codes)
        by_line: dict[int, set[str]] = {}
        if source_text is not None:
            scanned, by_line = scan_suppressions(source_text)
            file_wide |= scanned
        kept = []
        for d in self.diagnostics:
            if d.code in file_wide:
                continue
            if d.line is not None and d.code in by_line.get(d.line, ()):
                continue
            kept.append(d)
        return LintReport(kept)

    def sorted(self) -> "LintReport":
        return LintReport(
            sorted(
                self.diagnostics,
                key=lambda d: (
                    _SEVERITY_ORDER.get(d.severity, 3),
                    d.source,
                    d.line if d.line is not None else 0,
                    d.code,
                    d.subject,
                ),
            )
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics are present."""
        return not self.errors

    # -------------------------------------------------------------- rendering

    def render_text(self) -> str:
        lines = [d.render() for d in self.sorted()]
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} info"
        )
        lines.append(counts if self.diagnostics else f"clean: {counts}")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "diagnostics": [d.as_dict() for d in self.sorted()],
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "ok": self.ok,
            },
            indent=2,
        )
