"""Static analysis of second-order signatures (``SOS001`` … ``SOS010``).

The checks run over a built :class:`~repro.core.sos.SecondOrderSignature`,
so they apply equally to signatures assembled in Python
(:func:`repro.system.build_relational_database`) and to parsed
specification text (:func:`lint_spec`).  When the signature came from text,
the spans recorded by the parser anchor each diagnostic to the declaring
line.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.kinds import Kind
from repro.core.operators import OperatorSpec, TypeOperator
from repro.core.patterns import (
    PApp,
    PBind,
    PFun,
    PList,
    PTuple,
    TypePattern,
)
from repro.core.sorts import (
    AppSort,
    BindSort,
    FunSort,
    KindSort,
    ListSort,
    ProductSort,
    Sort,
    TypeSort,
    UnionSort,
    format_sort,
)
from repro.core.sos import SecondOrderSignature
from repro.core.types import TypeApp, walk_type
from repro.errors import ParseError, SpecificationError
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.spec.describe import format_pattern


def lint_signature(
    sos: SecondOrderSignature, *, source: str = "<signature>"
) -> LintReport:
    """Run every signature check; returns the collected diagnostics."""
    report = LintReport()
    _check_quantifier_kinds(sos, report, source)
    _check_signature_clashes(sos, report, source)
    _check_pattern_constructors(sos, report, source)
    _check_syntax(sos, report, source)
    _check_subtype_cycles(sos, report, source)
    _check_unreachable_reps(sos, report, source)
    _check_update_functions(sos, report, source)
    _check_docs(sos, report, source)
    return report


def lint_spec(
    text: str,
    *,
    source: str = "<spec>",
    level: str = "model",
) -> LintReport:
    """Parse specification text and lint the resulting signature.

    Parse failures become a single ``SOS000`` diagnostic; inline
    ``-- lint: disable=...`` suppressions in the text are honored.
    """
    from repro.spec.parser import parse_spec

    try:
        sos = parse_spec(text, level=level)
    except ParseError as exc:
        return LintReport(
            [
                Diagnostic(
                    "SOS000",
                    str(exc),
                    source=source,
                    line=getattr(exc, "line", None),
                    column=getattr(exc, "column", None),
                )
            ]
        )
    except SpecificationError as exc:
        return LintReport([Diagnostic("SOS000", str(exc), source=source)])
    return lint_signature(sos, source=source).suppress(source_text=text)


# ------------------------------------------------------------------ helpers


def _span(obj) -> tuple[Optional[int], Optional[int]]:
    span = getattr(obj, "span", None)
    if span is None:
        return None, None
    return span


def _inhabited_kinds(sos: SecondOrderSignature) -> set[str]:
    ts = sos.type_system
    names = {c.result_kind.name for c in ts.constructors}
    for kinds in getattr(ts, "_extra_kinds", {}).values():
        names |= {k.name for k in kinds}
    return names


def _quantifier_kind_names(kind) -> list[str]:
    if isinstance(kind, Kind):
        return [kind.name]
    if isinstance(kind, UnionSort):
        return [
            alt.kind.name for alt in kind.alternatives if isinstance(alt, KindSort)
        ]
    return []


# ----------------------------------------------------------------- SOS001


def _check_quantifier_kinds(sos, report: LintReport, source: str) -> None:
    inhabited = _inhabited_kinds(sos)
    for spec in sos.all_operators():
        for q in spec.quantifiers:
            names = _quantifier_kind_names(q.kind)
            if names and not any(n in inhabited for n in names):
                line, column = _span(spec)
                report.add(
                    Diagnostic(
                        "SOS001",
                        f"quantifier 'forall {q.var} in "
                        f"{' | '.join(names)}' ranges over a kind no type "
                        "constructor inhabits; the operator can never apply",
                        source=source,
                        subject=spec.name,
                        line=line,
                        column=column,
                    )
                )


# -------------------------------------------------------- SOS002 / SOS003


def _signature_key(spec: OperatorSpec) -> tuple:
    quantifiers = tuple(
        (
            q.var,
            format_pattern(q.pattern) if q.pattern is not None else "",
            "|".join(_quantifier_kind_names(q.kind)),
        )
        for q in spec.quantifiers
    )
    return (
        quantifiers,
        tuple(format_sort(s) for s in spec.arg_sorts),
        spec.is_update,
    )


def _result_text(spec: OperatorSpec) -> str:
    if isinstance(spec.result, TypeOperator):
        return f"{spec.result.name}: {spec.result.result_kind.name}"
    return format_sort(spec.result)


def _check_signature_clashes(sos, report: LintReport, source: str) -> None:
    by_name: dict[str, dict[tuple, OperatorSpec]] = {}
    for spec in sos.all_operators():
        seen = by_name.setdefault(spec.name, {})
        key = _signature_key(spec)
        first = seen.get(key)
        if first is None:
            seen[key] = spec
            continue
        line, column = _span(spec)
        if _result_text(first) == _result_text(spec):
            report.add(
                Diagnostic(
                    "SOS002",
                    "duplicate specification: identical quantifiers, "
                    "argument sorts and result as an earlier spec of "
                    f"'{spec.name}'",
                    source=source,
                    subject=spec.name,
                    line=line,
                    column=column,
                )
            )
        else:
            report.add(
                Diagnostic(
                    "SOS003",
                    f"specification of '{spec.name}' with result "
                    f"{_result_text(spec)} is shadowed: an earlier spec has "
                    "the same quantifiers and argument sorts (result "
                    f"{_result_text(first)}) and the typechecker tries specs "
                    "in order",
                    source=source,
                    subject=spec.name,
                    line=line,
                    column=column,
                )
            )


# ----------------------------------------------------------------- SOS004


def _pattern_apps(pattern: TypePattern) -> Iterable[PApp]:
    if isinstance(pattern, PApp):
        yield pattern
        for a in pattern.args:
            yield from _pattern_apps(a)
    elif isinstance(pattern, PBind):
        yield from _pattern_apps(pattern.pattern)
    elif isinstance(pattern, PList):
        yield from _pattern_apps(pattern.element)
    elif isinstance(pattern, PTuple):
        for i in pattern.items:
            yield from _pattern_apps(i)
    elif isinstance(pattern, PFun):
        for a in pattern.args:
            yield from _pattern_apps(a)
        yield from _pattern_apps(pattern.result)


def _check_app(
    app: PApp, sos, report: LintReport, source: str, subject: str, span
) -> None:
    ts = sos.type_system
    line, column = span
    if not ts.has_constructor(app.constructor):
        report.add(
            Diagnostic(
                "SOS004",
                f"pattern references unknown type constructor "
                f"'{app.constructor}'",
                source=source,
                subject=subject,
                line=line,
                column=column,
            )
        )
        return
    arities = {len(c.arg_sorts) for c in ts.overloads(app.constructor)}
    if len(app.args) not in arities:
        expect = ", ".join(str(a) for a in sorted(arities))
        report.add(
            Diagnostic(
                "SOS004",
                f"pattern applies '{app.constructor}' to {len(app.args)} "
                f"argument(s); the constructor takes {expect}",
                source=source,
                subject=subject,
                line=line,
                column=column,
            )
        )


def _check_pattern_constructors(sos, report: LintReport, source: str) -> None:
    for spec in sos.all_operators():
        for q in spec.quantifiers:
            if q.pattern is None:
                continue
            for app in _pattern_apps(q.pattern):
                _check_app(app, sos, report, source, spec.name, _span(spec))
    for rule in sos.subtypes.rules:
        subject = f"{format_pattern(rule.sub)} < {format_pattern(rule.sup)}"
        for pattern in (rule.sub, rule.sup):
            for app in _pattern_apps(pattern):
                _check_app(app, sos, report, source, subject, _span(rule))


# -------------------------------------------------------- SOS005 / SOS006


def _check_syntax(sos, report: LintReport, source: str) -> None:
    first_syntax: dict[str, tuple[str, OperatorSpec]] = {}
    for spec in sos.all_operators():
        if spec.syntax is None:
            continue
        line, column = _span(spec)
        # Variadic operators (a list sort among the arguments) legitimately
        # take more operands than the pattern's group shows once.
        variadic = any(isinstance(s, ListSort) for s in spec.arg_sorts)
        if not variadic and spec.syntax.arity != len(spec.arg_sorts):
            report.add(
                Diagnostic(
                    "SOS006",
                    f"syntax pattern '{spec.syntax.text}' mentions "
                    f"{spec.syntax.arity} operand(s) but the spec takes "
                    f"{len(spec.arg_sorts)} argument(s)",
                    source=source,
                    subject=spec.name,
                    line=line,
                    column=column,
                )
            )
        known = first_syntax.get(spec.name)
        if known is None:
            first_syntax[spec.name] = (spec.syntax.text, spec)
        elif known[0] != spec.syntax.text:
            report.add(
                Diagnostic(
                    "SOS005",
                    f"spec declares syntax '{spec.syntax.text}' but an "
                    f"earlier spec of '{spec.name}' declared "
                    f"'{known[0]}'; the parser uses the first",
                    source=source,
                    subject=spec.name,
                    line=line,
                    column=column,
                )
            )


# ----------------------------------------------------------------- SOS007


def _pattern_head(pattern: TypePattern) -> Optional[str]:
    if isinstance(pattern, PApp):
        return pattern.constructor
    if isinstance(pattern, PBind):
        return _pattern_head(pattern.pattern)
    return None


def _check_subtype_cycles(sos, report: LintReport, source: str) -> None:
    edges: dict[str, set[str]] = {}
    spans: dict[tuple[str, str], tuple] = {}
    for rule in sos.subtypes.rules:
        sub, sup = _pattern_head(rule.sub), _pattern_head(rule.sup)
        if sub is None or sup is None:
            continue
        edges.setdefault(sub, set()).add(sup)
        spans.setdefault((sub, sup), _span(rule))
    reported: set[frozenset[str]] = set()

    def visit(node: str, path: list[str]) -> None:
        for nxt in edges.get(node, ()):
            if nxt in path:
                cycle = path[path.index(nxt) :] + [nxt]
                key = frozenset(cycle)
                if key in reported:
                    continue
                reported.add(key)
                line, column = spans.get((node, nxt), (None, None))
                report.add(
                    Diagnostic(
                        "SOS007",
                        "subtype rules form a cycle: "
                        + " < ".join(cycle)
                        + "; the supertype closure does not terminate",
                        source=source,
                        subject=nxt,
                        line=line,
                        column=column,
                    )
                )
            else:
                visit(nxt, path + [nxt])

    for start in list(edges):
        visit(start, [start])


# ----------------------------------------------------------------- SOS008


def _sort_mentions(sort: Sort, names: set[str], kinds: set[str]) -> None:
    if isinstance(sort, KindSort):
        kinds.add(sort.kind.name)
    elif isinstance(sort, TypeSort):
        for t in walk_type(sort.type):
            if isinstance(t, TypeApp):
                names.add(t.constructor)
    elif isinstance(sort, BindSort):
        _sort_mentions(sort.sort, names, kinds)
    elif isinstance(sort, AppSort):
        names.add(sort.constructor)
        for a in sort.args:
            _sort_mentions(a, names, kinds)
    elif isinstance(sort, ProductSort):
        for p in sort.parts:
            _sort_mentions(p, names, kinds)
    elif isinstance(sort, UnionSort):
        for a in sort.alternatives:
            _sort_mentions(a, names, kinds)
    elif isinstance(sort, ListSort):
        _sort_mentions(sort.element, names, kinds)
    elif isinstance(sort, FunSort):
        for a in sort.args:
            _sort_mentions(a, names, kinds)
        _sort_mentions(sort.result, names, kinds)


def _check_unreachable_reps(sos, report: LintReport, source: str) -> None:
    ts = sos.type_system
    mentioned: set[str] = set()
    kinds: set[str] = set()
    for spec in sos.all_operators():
        for q in spec.quantifiers:
            kinds.update(_quantifier_kind_names(q.kind))
            if q.pattern is not None:
                for app in _pattern_apps(q.pattern):
                    mentioned.add(app.constructor)
        for sort in spec.arg_sorts:
            _sort_mentions(sort, mentioned, kinds)
        if not isinstance(spec.result, TypeOperator):
            _sort_mentions(spec.result, mentioned, kinds)
    extra = getattr(ts, "_extra_kinds", {})
    for ctor in ts.constructors:
        member_kinds = {ctor.result_kind.name} | {
            k.name for k in extra.get(ctor.name, ())
        }
        if member_kinds & kinds:
            mentioned.add(ctor.name)
    # Subtype closure: a representation reachable through its supertype's
    # operators is reachable (``srel < relrep`` makes srel usable wherever
    # a relrep is accepted).
    changed = True
    while changed:
        changed = False
        for rule in sos.subtypes.rules:
            sub, sup = _pattern_head(rule.sub), _pattern_head(rule.sup)
            if sub and sup and sup in mentioned and sub not in mentioned:
                mentioned.add(sub)
                changed = True
    for ctor in ts.constructors:
        if ctor.level != "rep" or ctor.name in mentioned:
            continue
        line, column = _span(ctor)
        report.add(
            Diagnostic(
                "SOS008",
                f"representation constructor '{ctor.name}' is unreachable: "
                "no operator consumes or produces it and no subtype rule "
                "links it to one that does",
                source=source,
                subject=ctor.name,
                line=line,
                column=column,
            )
        )


# ----------------------------------------------------------------- SOS009


def _check_update_functions(sos, report: LintReport, source: str) -> None:
    for spec in sos.all_operators():
        if not spec.is_update or not spec.arg_sorts:
            continue
        if isinstance(spec.result, TypeOperator):
            continue
        first = format_sort(spec.arg_sorts[0])
        result = format_sort(spec.result)
        if first != result:
            line, column = _span(spec)
            report.add(
                Diagnostic(
                    "SOS009",
                    f"update function takes '{first}' but produces "
                    f"'{result}'; updates must return their first "
                    "argument's type (paper Section 2.5)",
                    source=source,
                    subject=spec.name,
                    line=line,
                    column=column,
                )
            )


# ----------------------------------------------------------------- SOS010


def _check_docs(sos, report: LintReport, source: str) -> None:
    seen: set[str] = set()
    for spec in sos.all_operators():
        if spec.doc or spec.name in seen:
            continue
        seen.add(spec.name)
        line, column = _span(spec)
        report.add(
            Diagnostic(
                "SOS010",
                f"operator '{spec.name}' has no documentation; "
                "spec.describe renders it without a description",
                source=source,
                subject=spec.name,
                line=line,
                column=column,
            )
        )


__all__ = ["lint_signature", "lint_spec"]
