"""Failure-testing utilities: deterministic fault injection.

This package is part of the library (not the test suite) so that fault
points can be compiled into the production code paths at negligible cost
and armed from any client — the crash-consistency tests, the benchmarks,
or an interactive session.
"""

from repro.testing.faults import (
    FAULT_SITES,
    MVCC_FAULT_SITES,
    WAL_FAULT_SITES,
    FaultPlan,
    InjectedFault,
    arm,
    clear_faults,
    disarm,
    fault_point,
    inject,
)
from repro.testing.netchaos import CHAOS_SITES, ChaosPlan, ChaosProxy
from repro.testing.state import database_fingerprint, value_fingerprint

__all__ = [
    "CHAOS_SITES",
    "ChaosPlan",
    "ChaosProxy",
    "FAULT_SITES",
    "MVCC_FAULT_SITES",
    "WAL_FAULT_SITES",
    "FaultPlan",
    "InjectedFault",
    "arm",
    "clear_faults",
    "database_fingerprint",
    "disarm",
    "fault_point",
    "inject",
    "value_fingerprint",
]
