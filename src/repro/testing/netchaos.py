"""A deterministic chaos proxy for the json-lines client/server protocol.

:class:`ChaosProxy` sits between a :class:`~repro.server.client.SocketClient`
and a running :class:`~repro.server.net.SOSServer`, relaying one request
line and one response line at a time — and injecting a network fault at an
exact, reproducible point.  Because the protocol is strictly
request/response, the proxy can count *requests* globally (across
reconnects) and fire on the Nth one, the same determinism contract as
:mod:`repro.testing.faults` gives crash tests.

Injection sites (:data:`CHAOS_SITES`):

``drop.request``
    close both directions *before* forwarding the request — the server
    never sees it (a connect-then-die client, or a partitioned link);
``drop.after_send``
    forward the request, then close without reading the response — the
    server executes (and commits) but the acknowledgement path is gone
    mid-flight;
``drop.response``
    forward the request, read the server's full response, then close
    without relaying it — the canonical *ack lost after durable commit*
    window exactly-once machinery exists for;
``partial.response``
    relay only the first half of the response bytes, then close — a torn
    frame the client must treat as a transport failure, not an answer;
``delay.response``
    hold the response for ``delay_s`` seconds before relaying — the
    per-call deadline / slow-network case (the connection survives).

The proxy is thread-based (the client side of the protocol is blocking
sockets) and binds ``127.0.0.1:0``; :attr:`ChaosProxy.address` is a
ready-to-use ``repro://`` DSN — append retry options to taste.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

CHAOS_SITES = (
    "drop.request",
    "drop.after_send",
    "drop.response",
    "partial.response",
    "delay.response",
)


@dataclass
class ChaosPlan:
    """Fire ``site`` on the ``at``-th request the proxy relays (1-based,
    counted globally across every connection, including reconnects).

    ``hits`` counts how many times the plan fired (a drop site can fire
    at most once per arm; re-arm with :meth:`ChaosProxy.set_plan`);
    ``requests_seen`` counts every request the proxy inspected while this
    plan was armed — assert on both to prove the fault happened where the
    test thinks it did.
    """

    site: str
    at: int = 1
    delay_s: float = 0.2
    hits: int = 0
    requests_seen: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.site not in CHAOS_SITES:
            raise ValueError(
                f"unknown chaos site {self.site!r} (known: {CHAOS_SITES})"
            )

    @property
    def triggered(self) -> bool:
        return self.hits > 0

    def _action_for_next(self) -> Optional[str]:
        """The site to inject on this request, or ``None`` (and do the
        bookkeeping atomically — connections run on separate threads)."""
        with self._lock:
            self.requests_seen += 1
            if self.requests_seen == self.at:
                self.hits += 1
                return self.site
        return None


class ChaosProxy:
    """An in-process TCP proxy over one upstream repro server."""

    def __init__(
        self, upstream_host: str, upstream_port: int, plan: Optional[ChaosPlan] = None
    ):
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.connections = 0
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._stopping = False

    @classmethod
    def for_dsn(cls, dsn: str, plan: Optional[ChaosPlan] = None) -> "ChaosProxy":
        from repro.server.client import parse_dsn

        host, port = parse_dsn(dsn)
        return cls(host, port, plan)

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "ChaosProxy":
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.host, self.port = self._listener.getsockname()[:2]
        accept = threading.Thread(
            target=self._accept_loop, name="chaos-proxy", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def address(self) -> str:
        """The proxy's ``repro://`` DSN (no retry options; append your own)."""
        return f"repro://{self.host}:{self.port}"

    def dsn(self, options: str = "") -> str:
        """The proxy DSN with query options, e.g. ``proxy.dsn("retries=3")``."""
        return self.address + (f"?{options}" if options else "")

    def set_plan(self, plan: Optional[ChaosPlan]) -> None:
        """Re-arm with a fresh plan (``None`` = pure passthrough)."""
        self.plan = plan

    # ----------------------------------------------------------------- relay

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            self.connections += 1
            worker = threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            )
            worker.start()
            self._threads.append(worker)

    def _serve_conn(self, client_sock: socket.socket) -> None:
        try:
            upstream_sock = socket.create_connection(self.upstream, timeout=10)
        except OSError:
            client_sock.close()
            return
        client = client_sock.makefile("rwb")
        upstream = upstream_sock.makefile("rwb")
        try:
            while True:
                line = client.readline()
                if not line:
                    return  # client went away
                plan = self.plan
                action = (
                    plan._action_for_next() if plan is not None else None
                )
                if action == "drop.request":
                    return
                upstream.write(line)
                upstream.flush()
                if action == "drop.after_send":
                    return
                response = upstream.readline()
                if not response:
                    return  # upstream went away
                if action == "drop.response":
                    return
                if action == "partial.response":
                    client.write(response[: max(1, len(response) // 2)])
                    client.flush()
                    return
                if action == "delay.response" and plan is not None:
                    time.sleep(plan.delay_s)
                client.write(response)
                client.flush()
        except (OSError, ValueError):
            pass  # either side dropped mid-relay; close both below
        finally:
            for f in (client, upstream):
                try:
                    f.close()
                except OSError:
                    pass
            for s in (client_sock, upstream_sock):
                try:
                    s.close()
                except OSError:
                    pass
