"""Deterministic fingerprints of database state, for crash-consistency tests.

A fingerprint is a hashable value capturing everything a statement can
change: the type aliases, the object catalog (names, types, levels) and
every object's value content.  Two fingerprints are equal exactly when the
two database states are observably equal — which is what the fault-injection
suite asserts: *after an injected fault, the database fingerprint equals the
pre-statement fingerprint*.
"""

from __future__ import annotations

from repro.core.types import format_type


def value_fingerprint(value):
    """A content-based, order-respecting fingerprint of one object value."""
    if value is None:
        return None
    # Secondary indexes: fingerprint the index tree (the heap reference is
    # covered by the heap object's own fingerprint).
    tree = getattr(value, "_tree", None)
    if tree is not None:
        return ("index", value_fingerprint(tree))
    rows = getattr(value, "rows", None)
    if rows is not None:
        return (type(value).__name__, tuple(repr(r) for r in rows))
    graph = getattr(value, "g", None)
    if graph is not None:
        nodes = tuple(
            (n, repr(d.get("attrs"))) for n, d in sorted(graph.nodes(data=True))
        )
        edges = tuple(
            sorted((u, v, repr(d.get("attrs"))) for u, v, d in graph.edges(data=True))
        )
        return ("graph", nodes, edges)
    scan = getattr(value, "scan", None)
    if scan is not None:
        return (type(value).__name__, tuple(repr(v) for v in scan()))
    if isinstance(value, list):
        return ("list", tuple(value_fingerprint(v) for v in value))
    return repr(value)


def database_fingerprint(database) -> tuple:
    """The full observable state of a database, as a hashable value."""
    aliases = tuple(
        sorted((name, format_type(t)) for name, t in database.aliases.items())
    )
    objects = tuple(
        sorted(
            (name, format_type(obj.type), obj.level, value_fingerprint(obj.value))
            for name, obj in database.objects.items()
        )
    )
    return (aliases, objects)
