"""Deterministic fault injection for crash-consistency testing.

Mutation paths through the system carry named *fault points*
(:func:`fault_point` calls).  A test arms a :class:`FaultPlan` for a site;
the Nth time execution reaches that site, :class:`InjectedFault` is raised.
Everything is deterministic — the same program with the same plan fails at
exactly the same operation — so rollback behavior can be asserted
statement by statement.

When nothing is armed, a fault point is a single global load and an early
return; the hooks are compiled into the production code paths permanently.

The registered sites (``FAULT_SITES``) span every layer that mutates
database state:

========================  ====================================================
site                      fires on
========================  ====================================================
``btree.insert``          every ``BTree.insert`` (so the Nth tuple of a bulk
                          ``stream_insert`` can fail mid-stream)
``btree.delete``          every ``BTree.delete``
``btree.modify``          each in-situ replacement of ``modify_tuples``
``btree.re_insert``       each delete+reinsert pair of ``re_insert_tuples``
``lsdtree.insert``        every ``LSDTree.insert``
``lsdtree.delete``        every ``LSDTree.delete``
``tidrel.insert``         every ``TidRelation.insert``
``tidrel.delete``         every ``TidRelation.delete``
``tidrel.replace``        every ``TidRelation.replace``
``srel.append``           every ``SRel.append``
``catalog.insert``        every ``CatalogValue.insert``
``catalog.remove``        every ``CatalogValue.remove``
``rel.insert``            model-level relation inserts
``rel.delete``            model-level relation deletes
``rel.modify``            model-level relation modifies
``evaluator.apply``       every operator application in the evaluator
``database.set_value``    every object (re)binding in the catalog
``optimizer.rule``        every accepted rewrite in the rule engine
``wal.append``            mid-frame in every WAL record append (the first
                          half of the frame is flushed, the rest is not —
                          a genuine torn write)
``wal.fsync``             before every WAL fsync
``wal.checkpoint.write``  mid-write of the checkpoint temp file
``wal.checkpoint.swap``   on both sides of the atomic checkpoint rename
``recovery.replay``       before each committed WAL statement replayed
                          during recovery
``mvcc.commit``           at MVCC transaction commit, after the
                          first-committer-wins check but before anything
                          is published or logged
``mvcc.publish``          after the write set is published to the shared
                          committed store, before its WAL records are
                          written (a crash here loses the transaction)
``server.ack``            in the socket server, before the success
                          response for an executed statement is written
                          to the client
========================  ====================================================

When an armed site fires while metric collection is on, the
``fault.injected`` and ``fault.<site>`` observe counters are bumped, so
traces and ``explain(analyze=True)`` reports show the injected fault
rather than a bare exception.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro import observe
from repro.errors import SOSError

FAULT_SITES: tuple[str, ...] = (
    "btree.insert",
    "btree.delete",
    "btree.modify",
    "btree.re_insert",
    "lsdtree.insert",
    "lsdtree.delete",
    "tidrel.insert",
    "tidrel.delete",
    "tidrel.replace",
    "srel.append",
    "catalog.insert",
    "catalog.remove",
    "rel.insert",
    "rel.delete",
    "rel.modify",
    "evaluator.apply",
    "database.set_value",
    "optimizer.rule",
    "wal.append",
    "wal.fsync",
    "wal.checkpoint.write",
    "wal.checkpoint.swap",
    "recovery.replay",
    "mvcc.commit",
    "mvcc.publish",
    "server.ack",
)

MVCC_FAULT_SITES: tuple[str, ...] = (
    "mvcc.commit",
    "mvcc.publish",
    "server.ack",
)
"""The multi-session server sites — the server crash matrix iterates these."""

WAL_FAULT_SITES: tuple[str, ...] = (
    "wal.append",
    "wal.fsync",
    "wal.checkpoint.write",
    "wal.checkpoint.swap",
    "recovery.replay",
)
"""The durability-layer sites — the crash matrix iterates exactly these."""


class InjectedFault(SOSError):
    """The error raised when an armed fault point fires."""


@dataclass
class FaultPlan:
    """Fail the ``at``-th time execution reaches ``site`` (1-based).

    ``hits`` counts every arrival at the site while the plan is armed,
    whether or not it triggers, so a test can verify the site was actually
    exercised; ``triggered`` records whether the fault fired.
    """

    site: str
    at: int = 1
    hits: int = field(default=0, init=False)
    triggered: bool = field(default=False, init=False)

    def hit(self) -> None:
        self.hits += 1
        if self.hits == self.at:
            self.triggered = True
            if observe.ENABLED:
                observe.incr("fault.injected")
                observe.incr(f"fault.{self.site}")
            raise InjectedFault(
                f"injected fault at {self.site} (hit {self.at})"
            )


# The armed plans, keyed by site.  ``None`` (the common case) lets
# :func:`fault_point` return after a single global load.
_ARMED: Optional[dict[str, FaultPlan]] = None


def fault_point(site: str) -> None:
    """Mark a fault site; raises :class:`InjectedFault` when an armed plan
    for ``site`` reaches its trigger count."""
    if _ARMED is None:
        return
    plan = _ARMED.get(site)
    if plan is not None:
        plan.hit()


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm a plan (replacing any previous plan for the same site)."""
    global _ARMED
    if plan.site not in FAULT_SITES:
        raise ValueError(f"unknown fault site: {plan.site}")
    if _ARMED is None:
        _ARMED = {}
    _ARMED[plan.site] = plan
    return plan


def disarm(site: str) -> None:
    """Remove the plan for ``site``, if any."""
    global _ARMED
    if _ARMED is not None:
        _ARMED.pop(site, None)
        if not _ARMED:
            _ARMED = None


def clear_faults() -> None:
    """Disarm every fault plan."""
    global _ARMED
    _ARMED = None


@contextmanager
def inject(site: str, at: int = 1) -> Iterator[FaultPlan]:
    """Context manager: arm ``site`` to fail on its ``at``-th hit, disarm on
    exit.  Yields the plan so the caller can inspect ``hits``/``triggered``."""
    plan = arm(FaultPlan(site, at))
    try:
        yield plan
    finally:
        disarm(site)
