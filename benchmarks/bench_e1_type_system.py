"""E1 — type-system operations: well-formedness checking and pattern
matching throughput (the operations behind every typecheck)."""

import pytest

from repro.core.patterns import PApp, PBind, PVar, match_type
from repro.core.types import TypeApp, rel_type, tuple_type
from repro.models.relational import relational_model

INT = TypeApp("int")
STRING = TypeApp("string")


def wide_tuple(width: int):
    return tuple_type([(f"a{i}", INT if i % 2 else STRING) for i in range(width)])


@pytest.fixture(scope="module")
def ts():
    sos, _ = relational_model()
    return sos.type_system


@pytest.mark.parametrize("width", [2, 16, 64])
def test_check_type(benchmark, ts, width):
    t = rel_type(wide_tuple(width))
    ts.check_type(t)  # warm validity
    benchmark(lambda: ts.check_type(t))


def test_check_type_rejects(benchmark, ts):
    bad = TypeApp("rel", (INT,))

    def run():
        from repro.errors import TypeFormationError

        try:
            ts.check_type(bad)
        except TypeFormationError:
            return True
        return False

    assert run()
    benchmark(run)


FIG1 = PBind("stream", PApp("stream", (PBind("tuple", PApp("tuple", (PVar("list"),))),)))


@pytest.mark.parametrize("width", [2, 16, 64])
def test_figure1_pattern_match(benchmark, width):
    subject = TypeApp("stream", (wide_tuple(width),))
    assert match_type(FIG1, subject) is not None
    benchmark(lambda: match_type(FIG1, subject))
