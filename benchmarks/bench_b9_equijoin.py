"""B9 — equi-join strategies: sort-merge vs repeated inner scan.

A foreign-key equi-join between an n-row fact side and a 100-row dimension
side.  Expected shape: the scan join is O(n·m), the merge join
O(n log n + m log m); the gap widens with n.
"""

import pytest

from repro.models.relational import make_tuple
from repro.system import build_relational_system

SIZES = [500, 2000]
N_DIM = 100

MERGE = "query facts dims join[fk = pk]"
SCAN = (
    "query facts_rep feed "
    "fun (f: fact) dims_rep feed filter[fun (d: dim) f fk = d pk] "
    "search_join count"
)
MERGE_DIRECT = "query facts_rep feed dims_rep feed merge_join[fk, pk] count"
HASH_DIRECT = "query facts_rep feed dims_rep feed hash_join[fk, pk] count"


def build(n):
    system = build_relational_system()
    system.run(
        """
type fact = tuple(<(fid, int), (fk, int)>)
type dim = tuple(<(pk, int), (label, string)>)
create facts : rel(fact)
create dims : rel(dim)
create facts_rep : srel(fact)
create dims_rep : srel(dim)
update rep := insert(rep, facts, facts_rep)
update rep := insert(rep, dims, dims_rep)
"""
    )
    import random

    rng = random.Random(5)
    fact_t = system.database.aliases["fact"]
    dim_t = system.database.aliases["dim"]
    facts = system.database.objects["facts_rep"].value
    dims = system.database.objects["dims_rep"].value
    for i in range(N_DIM):
        dims.append(make_tuple(dim_t, pk=i, label=f"d{i}"))
    for i in range(n):
        facts.append(make_tuple(fact_t, fid=i, fk=rng.randrange(N_DIM)))
    return system


@pytest.fixture(scope="module", params=SIZES)
def sized(request):
    return request.param, build(request.param)


def test_merge_join(benchmark, sized):
    n, system = sized
    assert system.run_one(MERGE_DIRECT).value == n
    benchmark.extra_info["n_facts"] = n
    benchmark(lambda: system.run_one(MERGE_DIRECT))


def test_hash_join(benchmark, sized):
    n, system = sized
    assert system.run_one(HASH_DIRECT).value == n
    benchmark.extra_info["n_facts"] = n
    benchmark(lambda: system.run_one(HASH_DIRECT))


def test_scan_search_join(benchmark, sized):
    n, system = sized
    assert system.run_one(SCAN).value == n
    benchmark.extra_info["n_facts"] = n
    benchmark(lambda: system.run_one(SCAN))


def test_translated_equi_join_uses_merge(sized):
    n, system = sized
    r = system.run_one(MERGE)
    assert r.fired == ["equi_join_merge"]
    assert len(r.value) == n
