"""B1 — selection: B-tree range plan vs feed-filter scan plan.

For each selectivity, both plans answer the same model-level selection over
the same B-tree-resident relation.  Expected shape: the range plan wins by a
wide margin for selective predicates and converges towards the scan as the
selectivity approaches 1 (it must read the same leaves).  Simulated page
reads are attached as ``extra_info``.
"""

import pytest

from benchmarks.helpers import build_spatial_system, selection_query
from repro.storage.io import GLOBAL_PAGES

N_CITIES = 4000
SELECTIVITIES = [0.001, 0.01, 0.1, 0.5, 0.9]


@pytest.fixture(scope="module")
def system():
    return build_spatial_system(n_cities=N_CITIES, n_states=1)


def _scan_text(threshold_query: str) -> str:
    # Rewrite the model query into the explicit scan plan.
    threshold = threshold_query.split(">=")[1].strip().rstrip("]")
    return f"query cities_rep feed filter[pop >= {threshold}] count"


def _range_text(threshold_query: str) -> str:
    threshold = threshold_query.split(">=")[1].strip().rstrip("]")
    return f"query cities_rep range[{threshold}, top] count"


def _run_counted(system, text):
    before = GLOBAL_PAGES.stats.snapshot()
    result = system.run_one(text)
    io = GLOBAL_PAGES.stats.delta(before)
    return result.value, io


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_btree_range_plan(benchmark, system, selectivity):
    text = _range_text(selection_query(selectivity))
    count, io = _run_counted(system, text)
    benchmark.extra_info["page_reads"] = io.reads
    benchmark.extra_info["rows"] = count
    benchmark.extra_info["selectivity"] = selectivity
    benchmark(lambda: system.run_one(text))


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_scan_filter_plan(benchmark, system, selectivity):
    text = _scan_text(selection_query(selectivity))
    count, io = _run_counted(system, text)
    benchmark.extra_info["page_reads"] = io.reads
    benchmark.extra_info["rows"] = count
    benchmark.extra_info["selectivity"] = selectivity
    benchmark(lambda: system.run_one(text))


def test_selective_range_beats_scan_in_io(system):
    """The shape claim behind the optimizer's choice: at 1% selectivity the
    range plan touches far fewer pages than the scan."""
    _, scan_io = _run_counted(system, _scan_text(selection_query(0.01)))
    _, range_io = _run_counted(system, _range_text(selection_query(0.01)))
    assert range_io.reads * 5 < scan_io.reads


def test_plans_agree(system):
    for selectivity in (0.01, 0.5):
        a = system.run_one(_scan_text(selection_query(selectivity))).value
        b = system.run_one(_range_text(selection_query(selectivity))).value
        assert a == b
