"""E8 — the two hand-written Section 4 plans plus the optimizer's output.

All three compute the same join; this is the end-to-end reproduction of the
paper's worked example, with the measured shape: index plan beats scan plan,
and the optimizer's translated plan matches the index plan's performance
(it *is* that plan, modulo variable names).
"""

import pytest

from benchmarks.helpers import (
    INDEX_JOIN,
    MODEL_JOIN,
    SCAN_JOIN,
    build_spatial_system,
)

N = 1200


@pytest.fixture(scope="module")
def system():
    return build_spatial_system(n_cities=N, n_states=64)


def test_results_agree(system):
    scan = system.run_one(SCAN_JOIN).value
    index = system.run_one(INDEX_JOIN).value
    model = system.run_one(MODEL_JOIN)
    assert scan == index == len(model.value) == N
    assert model.fired == ["join_inside_lsdtree"]


def test_scan_plan(benchmark, system):
    benchmark(lambda: system.run_one(SCAN_JOIN))


def test_index_plan(benchmark, system):
    benchmark(lambda: system.run_one(INDEX_JOIN))


def test_optimized_model_join(benchmark, system):
    benchmark(lambda: system.run_one(MODEL_JOIN))
