"""CI regression gate over :mod:`benchmarks.harness` output.

``python -m benchmarks.compare BENCH_core.json BENCH_current.json`` exits
nonzero when any tracked median regresses by more than 20 % against the
committed baseline.

Two classes of metric are checked:

* ``counters`` — deterministic per-benchmark workload numbers (page
  reads, row counts, plan-choice flags).  These are identical across
  machines for a given code version, so *any* growth beyond the
  threshold is a genuine algorithmic regression (a plan flip, a lost
  index path, extra I/O); a flag counter (``*_picks_index``, ``*_ok``)
  dropping from 1 to 0 always fails.  Counters are always gated.
* timing medians — gated only with ``--check-time``, and then compared
  in calibration units (each file's ``median_ms`` divided by its own
  ``meta.calibration_ms`` busy-loop time) so a slower CI host does not
  raise false alarms.  Off by default because even normalized timings
  are noisy on shared runners.
"""

from __future__ import annotations

import argparse
import json
import sys

THRESHOLD = 0.20


def _load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def _regressed(baseline: float, current: float) -> bool:
    if baseline <= 0:
        return current > 0
    return (current - baseline) / baseline > THRESHOLD


def _delta(baseline: float, current: float) -> str:
    """``+30%``-style percentage delta, safe for zero baselines."""
    if baseline <= 0:
        return "+inf%" if current > 0 else "+0%"
    return f"{(current - baseline) / baseline:+.0%}"


def compare(
    baseline: dict, current: dict, check_time: bool = False
) -> list[str]:
    """Every tracked-median regression, as human-readable failure lines.

    Each line names the offending metric *and* shows its baseline
    vs. current value with the percentage delta, so a CI log is
    actionable without re-running anything locally.
    """
    failures: list[str] = []
    base_cal = baseline.get("meta", {}).get("calibration_ms") or 1.0
    cur_cal = current.get("meta", {}).get("calibration_ms") or 1.0
    for name, base in baseline.get("benchmarks", {}).items():
        cur = current.get("benchmarks", {}).get(name)
        if cur is None:
            tracked = ", ".join(
                f"{key}={bval}"
                for key, bval in sorted(base.get("counters", {}).items())
            )
            failures.append(
                f"{name}: missing from current run"
                + (f" (baseline counters: {tracked})" if tracked else "")
            )
            continue
        for key, bval in sorted(base.get("counters", {}).items()):
            cval = cur.get("counters", {}).get(key)
            if cval is None:
                failures.append(
                    f"{name}.{key}: counter disappeared "
                    f"(baseline {bval}, current missing)"
                )
            elif cval < bval and key.endswith(("_picks_index", "_ok")):
                failures.append(
                    f"{name}.{key}: flag regressed {bval} -> {cval} "
                    f"({_delta(bval, cval)})"
                )
            elif _regressed(bval, cval):
                failures.append(
                    f"{name}.{key}: {bval} -> {cval} "
                    f"({_delta(bval, cval)}, limit +20%)"
                )
        if check_time:
            bnorm = base["median_ms"] / base_cal
            cnorm = cur["median_ms"] / cur_cal
            if _regressed(bnorm, cnorm):
                failures.append(
                    f"{name}.median_ms: {bnorm:.4f} -> {cnorm:.4f} "
                    f"calibration units ({_delta(bnorm, cnorm)}, limit +20%)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.compare", description=__doc__.splitlines()[0]
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--check-time", action="store_true",
        help="also gate calibration-normalized timing medians",
    )
    args = parser.parse_args(argv)
    failures = compare(
        _load(args.baseline), _load(args.current), check_time=args.check_time
    )
    if failures:
        print(f"{len(failures)} regression(s) vs {args.baseline}:")
        for line in failures:
            print(f"  FAIL {line}")
        return 1
    print(f"no regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
