"""B7 — ablation: first-match rule order vs cost-based plan choice.

The standard optimizer encodes plan preference in rule *order* (index rules
first); this ablation deliberately reverses the order.  First-match then
degrades to scan plans, while cost-based choice keeps producing index plans
regardless of order — quantifying how much the heuristic ordering (or a
cost model) is worth, and what the cost model itself costs.
"""

import pytest

from benchmarks.helpers import build_spatial_system, selection_query
from repro.optimizer.standard_rules import (
    cost_based_optimizer,
    misordered_optimizer,
    standard_optimizer,
)

QUERY = selection_query(0.01)


@pytest.fixture(scope="module")
def system():
    return build_spatial_system(n_cities=4000, n_states=4)


def test_well_ordered_first_match(benchmark, system):
    system.optimizer = standard_optimizer()
    r = system.run_one(QUERY)
    benchmark.extra_info["rules_fired"] = r.fired
    benchmark(lambda: system.run_one(QUERY))


def test_misordered_first_match(benchmark, system):
    system.optimizer = misordered_optimizer()
    r = system.run_one(QUERY)
    assert r.fired == ["select_scan"]  # order matters under first-match
    benchmark.extra_info["rules_fired"] = r.fired
    benchmark(lambda: system.run_one(QUERY))


def test_misordered_cost_based(benchmark, system):
    system.optimizer = cost_based_optimizer(shuffled=True)
    r = system.run_one(QUERY)
    assert r.fired == ["select_ge_btree_range"]  # order does not matter
    benchmark.extra_info["rules_fired"] = r.fired
    benchmark(lambda: system.run_one(QUERY))


def test_all_variants_agree(system):
    results = []
    for optimizer in (
        standard_optimizer(),
        misordered_optimizer(),
        cost_based_optimizer(shuffled=True),
    ):
        system.optimizer = optimizer
        rows = system.run_one(QUERY).value
        results.append(sorted(t.attr("cname") for t in rows))
    assert results[0] == results[1] == results[2]
    system.optimizer = standard_optimizer()
