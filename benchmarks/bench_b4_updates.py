"""B4 — update strategies of Section 6 on the B-tree.

Compares tuple-at-a-time insert, bulk stream_insert, in-situ modify (non-key
attribute), and delete + re-insert (key update).  Expected shape: in-situ
modify is cheaper than re_insert (no structural change); bulk insert beats
per-statement insert by the per-statement front-end cost.
"""

import pytest

from repro.geometry import Point
from repro.models.relational import make_tuple
from repro.storage import BTree
from repro.storage.io import PageManager

N = 2000


def make_rows(city_t, n=N):
    return [
        make_tuple(city_t, cname=f"c{i}", center=Point(i % 100, i // 100), pop=i)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def city_t():
    from repro.core.types import TypeApp, tuple_type

    return tuple_type(
        [("cname", TypeApp("string")), ("center", TypeApp("point")), ("pop", TypeApp("int"))]
    )


def fresh_tree(city_t, rows):
    bt = BTree(key=lambda t: t.attr("pop"), order=16, pages=PageManager())
    bt.stream_insert(rows)
    return bt


def test_bulk_stream_insert(benchmark, city_t):
    rows = make_rows(city_t)

    def run():
        bt = BTree(key=lambda t: t.attr("pop"), order=16, pages=PageManager())
        bt.stream_insert(rows)
        return bt

    bt = benchmark(run)
    assert len(bt) == N


def test_bulk_load(benchmark, city_t):
    """Bottom-up bulk loading vs the insert loop above."""
    rows = make_rows(city_t)

    def run():
        bt = BTree(key=lambda t: t.attr("pop"), order=16, pages=PageManager())
        bt.bulk_load(rows)
        return bt

    bt = benchmark(run)
    assert len(bt) == N


def test_modify_in_situ_non_key(benchmark, city_t):
    rows = make_rows(city_t)

    def setup():
        return (fresh_tree(city_t, rows),), {}

    def run(bt):
        bt.modify_tuples(
            bt.range_search(0, N // 10),
            lambda ts: (t.with_attr("cname", "x") for t in ts),
        )

    benchmark.pedantic(run, setup=setup, rounds=10)


def test_re_insert_key_update(benchmark, city_t):
    rows = make_rows(city_t)

    def setup():
        return (fresh_tree(city_t, rows),), {}

    def run(bt):
        bt.re_insert_tuples(
            bt.range_search(0, N // 10),
            lambda ts: (t.with_attr("pop", t.attr("pop") + N) for t in ts),
        )

    benchmark.pedantic(run, setup=setup, rounds=10)


def test_range_delete(benchmark, city_t):
    rows = make_rows(city_t)

    def setup():
        return (fresh_tree(city_t, rows),), {}

    def run(bt):
        bt.delete_tuples(bt.range_search(0, N // 10))

    benchmark.pedantic(run, setup=setup, rounds=10)


def test_in_situ_writes_fewer_pages_than_re_insert(city_t):
    rows = make_rows(city_t)
    bt1 = fresh_tree(city_t, rows)
    with bt1.pages.measure() as m1:
        bt1.modify_tuples(
            bt1.range_search(0, N // 10),
            lambda ts: (t.with_attr("cname", "x") for t in ts),
        )
    bt2 = fresh_tree(city_t, rows)
    with bt2.pages.measure() as m2:
        bt2.re_insert_tuples(
            bt2.range_search(0, N // 10),
            lambda ts: (t.with_attr("pop", t.attr("pop") + N) for t in ts),
        )
    assert m1.delta.writes < m2.delta.writes
