"""Shared dataset builders for the benchmark harness.

Datasets are generated synthetically (the paper has no published data):
cities are uniform points with uniform integer populations; states tile the
plane with rectangular regions, so every city matches exactly one state and
join output size equals the number of cities — a shape that keeps the
comparisons interpretable.
"""

from __future__ import annotations

import random

from repro.geometry import Point, Polygon
from repro.models.relational import make_tuple
from repro.system import SOSSystem, build_relational_system

SCHEMA = """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
type state = tuple(<(sname, string), (region, pgon)>)
create cities : rel(city)
create states : rel(state)
create cities_rep : btree(city, pop, int)
create states_rep : lsdtree(state, fun (s: state) bbox(s region))
update rep := insert(rep, cities, cities_rep)
update rep := insert(rep, states, states_rep)
"""

WORLD = 1000.0
MAX_POP = 1_000_000


def build_spatial_system(
    n_cities: int, n_states: int, seed: int = 1993
) -> SOSSystem:
    """The cities/states schema with representations filled directly."""
    system = build_relational_system()
    system.run(SCHEMA)
    city_t = system.database.aliases["city"]
    state_t = system.database.aliases["state"]
    bt = system.database.objects["cities_rep"].value
    lsd = system.database.objects["states_rep"].value
    rng = random.Random(seed)
    grid = max(1, int(n_states**0.5))
    cell = WORLD / grid
    count = 0
    for gy in range(grid):
        for gx in range(grid):
            if count >= n_states:
                break
            lsd.insert(
                make_tuple(
                    state_t,
                    sname=f"s{count}",
                    region=Polygon.rectangle(
                        gx * cell, gy * cell, (gx + 1) * cell, (gy + 1) * cell
                    ),
                )
            )
            count += 1
    for i in range(n_cities):
        bt.insert(
            make_tuple(
                city_t,
                cname=f"c{i}",
                center=Point(rng.uniform(0, WORLD), rng.uniform(0, WORLD)),
                pop=rng.randrange(MAX_POP),
            )
        )
    return system


def selection_query(selectivity: float) -> str:
    """A model-level selection keeping roughly ``selectivity`` of the rows."""
    threshold = int(MAX_POP * (1 - selectivity))
    return f"query cities select[pop >= {threshold}]"


SCAN_JOIN = """
query cities_rep feed
      fun (c: city) states_rep feed filter[fun (s: state) c center inside s region]
      search_join count
"""

INDEX_JOIN = """
query cities_rep feed
      fun (c: city) states_rep (c center) point_search
                    filter[fun (s: state) c center inside s region]
      search_join count
"""

MODEL_JOIN = "query cities states join[center inside region]"
