"""A self-contained benchmark harness writing ``BENCH_*.json`` for CI diffs.

``python -m benchmarks.harness --smoke --out BENCH_core.json`` runs every
registered benchmark of the ``core`` suite and writes one JSON document
with, per benchmark:

* wall-clock ``min_ms`` / ``median_ms`` / ``p95_ms`` over the rounds;
* ``counters`` — *deterministic* workload numbers (simulated page reads,
  row counts, plan-choice flags) that are identical across machines for a
  given code version, so a CI gate can diff them without timing noise;
* ``info`` — machine-dependent extras (e.g. the tracing overhead ratio)
  reported for humans but never gated.

The document's ``meta.calibration_ms`` times a fixed busy loop in the same
process, so timing medians can be compared across machines in calibration
units (see :mod:`benchmarks.compare`).  ``--smoke`` shrinks datasets and
round counts to keep the CI pass under a few seconds; the committed
baselines (``BENCH_core.json``, ``BENCH_durability.json``) are smoke runs
for exactly that reason.

``--suite durability`` selects the durable-mode workloads instead —
write-ahead-logged inserts (per-commit and group-commit fsync policies)
and recovery, with the deterministic ``log_writes`` / ``fsyncs`` /
``replayed`` counters the gate can diff; see ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

from benchmarks.helpers import build_spatial_system
from repro import observe
from repro.models.relational import make_tuple
from repro.stats.analyze import analyze_objects
from repro.storage.io import GLOBAL_PAGES

SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Measurement plumbing
# ---------------------------------------------------------------------------


def _times(fn, rounds: int) -> list[float]:
    out = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        out.append((time.perf_counter() - start) * 1000.0)
    return out


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def _summarize(times: list[float]) -> dict:
    return {
        "rounds": len(times),
        "min_ms": round(min(times), 3),
        "median_ms": round(statistics.median(times), 3),
        "p95_ms": round(_percentile(times, 0.95), 3),
    }


def _calibrate() -> float:
    """Milliseconds for a fixed busy loop — the machine-speed unit used to
    normalize timing medians across hosts."""
    start = time.perf_counter()
    total = 0
    for i in range(200_000):
        total += i * i
    assert total > 0
    return (time.perf_counter() - start) * 1000.0


def _io_delta(fn):
    before = GLOBAL_PAGES.stats.snapshot()
    result = fn()
    return result, GLOBAL_PAGES.stats.delta(before)


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def bench_b1_range(smoke: bool) -> dict:
    """The B1 selection answered by the B-tree range plan."""
    n = 400 if smoke else 4000
    system = build_spatial_system(n_cities=n, n_states=1)
    text = "query cities_rep range[900000, top] count"
    rows, io = _io_delta(lambda: system.run_one(text).value)
    entry = _summarize(_times(lambda: system.run_one(text), 3 if smoke else 20))
    entry["counters"] = {"rows": rows, "page_reads": io.reads}
    return entry


def bench_b1_scan(smoke: bool) -> dict:
    """The same B1 selection answered by the feed-filter scan plan."""
    n = 400 if smoke else 4000
    system = build_spatial_system(n_cities=n, n_states=1)
    text = "query cities_rep feed filter[pop >= 900000] count"
    rows, io = _io_delta(lambda: system.run_one(text).value)
    entry = _summarize(_times(lambda: system.run_one(text), 3 if smoke else 20))
    entry["counters"] = {"rows": rows, "page_reads": io.reads}
    return entry


def _build_equijoin_system(smoke: bool):
    from repro.api import connect
    from repro.optimizer.standard_rules import cost_based_optimizer

    session = connect(optimizer=cost_based_optimizer())
    session.run(
        """
type order = tuple(<(oid, int), (cust, int)>)
type customer = tuple(<(cid, int), (cname, string)>)
create orders : rel(order)
create customers : rel(customer)
create orders_rep : srel(order)
create customers_rep : btree(customer, cid, int)
update rep := insert(rep, orders, orders_rep)
update rep := insert(rep, customers, customers_rep)
"""
    )
    db = session.database
    order_t = db.aliases["order"]
    cust_t = db.aliases["customer"]
    orders = db.objects["orders_rep"].value
    custs = db.objects["customers_rep"].value
    # Sized so the textbook constants prefer the hash join while fresh
    # statistics (unique inner key) reveal the index plan is cheaper.
    n_orders, n_custs = (200, 4000) if smoke else (400, 10000)
    for i in range(n_orders):
        orders.append(make_tuple(order_t, oid=i, cust=(i * 13) % n_custs))
    for i in range(n_custs):
        custs.insert(make_tuple(cust_t, cid=i, cname=f"c{i}"))
    return session


def bench_equijoin_stats(smoke: bool) -> dict:
    """Cost-based equi-join choice with statistics: the analyzed system
    must pick the index nested-loop plan the textbook constants reject."""
    session = _build_equijoin_system(smoke)
    query = "query orders customers join[cust = cid]"
    textbook = session.run_one(query)
    analyze_objects(session.database, ["orders_rep", "customers_rep"])
    analyzed, io = _io_delta(lambda: session.run_one(query))
    entry = _summarize(_times(lambda: session.run_one(query), 3 if smoke else 10))
    entry["counters"] = {
        "rows": len(analyzed.value),
        "page_reads": io.reads,
        "textbook_picks_index": int(textbook.fired == ["equi_join_index"]),
        "analyzed_picks_index": int(analyzed.fired == ["equi_join_index"]),
    }
    return entry


def bench_analyze(smoke: bool) -> dict:
    """The ``analyze`` statement itself over the spatial schema."""
    n = 400 if smoke else 4000
    system = build_spatial_system(n_cities=n, n_states=9)
    result = system.run_one("analyze cities, states")
    entry = _summarize(
        _times(lambda: system.run_one("analyze"), 3 if smoke else 10)
    )
    entry["counters"] = {
        "objects": len(result.value),
        "histograms": sum(s["histograms"] for s in result.value.values()),
        "rows": sum(s["rows"] for s in result.value.values()),
    }
    return entry


def bench_trace_overhead(smoke: bool) -> dict:
    """Tracing-off overhead on the B1 query: instrumentation must stay
    within the documented <3 % budget when collection is disarmed.  The
    ratio is machine-dependent, so it lands in ``info``, not counters."""
    n = 400 if smoke else 2000
    system = build_spatial_system(n_cities=n, n_states=1)
    text = "query cities_rep range[900000, top] count"
    rounds = 10 if smoke else 40
    system.run_one(text)  # warm caches before measuring either mode
    off = _times(lambda: system.run_one(text), rounds)
    system.set_tracing(True)
    on = _times(lambda: system.run_one(text), rounds)
    system.set_tracing(False)
    entry = _summarize(off)
    ratio = statistics.median(on) / max(statistics.median(off), 1e-9)
    entry["counters"] = {"rows": system.run_one(text).value}
    entry["info"] = {"traced_over_untraced": round(ratio, 3)}
    return entry


# ---------------------------------------------------------------------------
# Durability suite: WAL-logged workloads and recovery
# ---------------------------------------------------------------------------


def _durable_rows(smoke: bool) -> int:
    # Each row is a logged+fsynced statement, so the smoke count stays low.
    return 30 if smoke else 300


def _open_durable(tmp: str, group_commit: int = 1):
    from repro.api import connect

    return connect(
        data_dir=os.path.join(tmp, "db"),
        group_commit=group_commit,
        checkpoint_interval=0,
    )


def _durable_workload(tmp: str, n: int, group_commit: int = 1) -> None:
    db = _open_durable(tmp, group_commit)
    db.run_one("type item = tuple(<(k, int), (name, string)>)")
    db.run_one("create items : rel(item)")
    db.run_one("create items_rep : btree(item, k, int)")
    db.run_one("update rep := insert(rep, items, items_rep)")
    for i in range(n):
        db.run_one(
            f'update items := insert(items, mktuple[<(k, {i}), (name, "r{i}")>])'
        )
    db.close()


def _bench_durable_inserts(smoke: bool, group_commit: int) -> dict:
    n = _durable_rows(smoke)

    def once():
        with tempfile.TemporaryDirectory() as tmp:
            _durable_workload(tmp, n, group_commit)

    with tempfile.TemporaryDirectory() as tmp:
        _, io = _io_delta(lambda: _durable_workload(tmp, n, group_commit))
    entry = _summarize(_times(once, 3 if smoke else 10))
    entry["counters"] = {
        "rows": n,
        "log_writes": io.log_writes,
        "log_bytes": io.log_bytes,
        "fsyncs": io.fsyncs,
    }
    return entry


def bench_durable_insert(smoke: bool) -> dict:
    """WAL-logged inserts, fsync per commit (``group_commit=1``): the
    worst-case durable write path — three log records and one fsync per
    statement, all visible as deterministic counters."""
    return _bench_durable_inserts(smoke, group_commit=1)


def bench_group_commit(smoke: bool) -> dict:
    """The same workload with ``group_commit=8``: identical log traffic,
    an eighth of the fsyncs — the gate pins the batching ratio down."""
    return _bench_durable_inserts(smoke, group_commit=8)


def bench_recovery(smoke: bool) -> dict:
    """Reopening a durable directory: full WAL replay, then again after a
    checkpoint bounds the log to zero replayed statements."""
    n = _durable_rows(smoke)
    tmp = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        _durable_workload(tmp, n)

        def reopen():
            db = _open_durable(tmp)
            replayed = db.durability.replayed_statements
            db.close()
            return replayed

        replayed, io = _io_delta(reopen)
        entry = _summarize(_times(reopen, 3 if smoke else 10))
        db = _open_durable(tmp)
        db.checkpoint()
        db.close()
        entry["counters"] = {
            "replayed": replayed,
            "log_writes": io.log_writes,
            "replayed_after_checkpoint": reopen(),
        }
        return entry
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


BENCHMARKS = {
    "b1_range": bench_b1_range,
    "b1_scan": bench_b1_scan,
    "equijoin_stats": bench_equijoin_stats,
    "analyze": bench_analyze,
    "trace_overhead": bench_trace_overhead,
}

DURABILITY_BENCHMARKS = {
    "durable_insert": bench_durable_insert,
    "group_commit": bench_group_commit,
    "recovery": bench_recovery,
}

SUITES = {
    "core": BENCHMARKS,
    "durability": DURABILITY_BENCHMARKS,
}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run(
    smoke: bool = False,
    only: list[str] | None = None,
    suite: str = "core",
) -> dict:
    benchmarks = SUITES[suite]
    selected = only or list(benchmarks)
    unknown = [name for name in selected if name not in benchmarks]
    if unknown:
        raise SystemExit(f"unknown benchmark(s): {', '.join(unknown)}")
    document = {
        "schema": SCHEMA_VERSION,
        "meta": {
            "mode": "smoke" if smoke else "full",
            "suite": suite,
            "calibration_ms": round(_calibrate(), 3),
            "python": sys.version.split()[0],
        },
        "benchmarks": {},
    }
    for name in selected:
        document["benchmarks"][name] = benchmarks[name](smoke)
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.harness", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datasets and few rounds (the CI mode)",
    )
    parser.add_argument(
        "--suite", default="core", choices=sorted(SUITES),
        help="benchmark suite to run (default: core)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output JSON path ('-' for stdout; default BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        help="run only the named benchmark (repeatable)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = f"BENCH_{args.suite}.json"
    if observe.ENABLED:
        raise SystemExit("refusing to benchmark with collection armed")
    document = run(smoke=args.smoke, only=args.only, suite=args.suite)
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        with open(args.out, "w") as out:
            out.write(payload)
        names = ", ".join(document["benchmarks"])
        print(f"wrote {args.out} ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
