"""A self-contained benchmark harness writing ``BENCH_*.json`` for CI diffs.

``python -m benchmarks.harness --smoke --out BENCH_core.json`` runs every
registered benchmark of the ``core`` suite and writes one JSON document
with, per benchmark:

* wall-clock ``min_ms`` / ``median_ms`` / ``p95_ms`` over the rounds;
* ``counters`` — *deterministic* workload numbers (simulated page reads,
  row counts, plan-choice flags) that are identical across machines for a
  given code version, so a CI gate can diff them without timing noise;
* ``info`` — machine-dependent extras (e.g. the tracing overhead ratio)
  reported for humans but never gated.

The document's ``meta.calibration_ms`` times a fixed busy loop in the same
process, so timing medians can be compared across machines in calibration
units (see :mod:`benchmarks.compare`).  ``--smoke`` shrinks datasets and
round counts to keep the CI pass under a few seconds; the committed
baselines (``BENCH_core.json``, ``BENCH_durability.json``) are smoke runs
for exactly that reason.

``--suite durability`` selects the durable-mode workloads instead —
write-ahead-logged inserts (per-commit and group-commit fsync policies)
and recovery, with the deterministic ``log_writes`` / ``fsyncs`` /
``replayed`` counters the gate can diff; see ``docs/DURABILITY.md``.

``--suite server`` measures the multi-session socket server: statements
per second against one durable database at 1, 8 and 64 concurrent
clients (each client writing its own relation, so the run is
conflict-free and the counters deterministic), plus a ``scaling``
benchmark whose gated ``eight_beats_one_ok`` flag pins down that
cross-client group commit actually buys throughput — eight clients must
outrun one.  Raw statements/sec land in ``info`` (machine-dependent).
The ``retry_overhead`` probe runs the single-client workload once plain
and once with client retries armed (``?retries=3``) under zero faults:
the gated ``retries`` / ``journal_hits`` deltas must stay zero, and the
timing ratio between the two passes is reported in ``info``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

from benchmarks.helpers import build_spatial_system
from repro import observe
from repro.models.relational import make_tuple
from repro.stats.analyze import analyze_objects
from repro.storage.io import GLOBAL_PAGES

SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Measurement plumbing
# ---------------------------------------------------------------------------


def _times(fn, rounds: int) -> list[float]:
    out = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        out.append((time.perf_counter() - start) * 1000.0)
    return out


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def _summarize(times: list[float]) -> dict:
    return {
        "rounds": len(times),
        "min_ms": round(min(times), 3),
        "median_ms": round(statistics.median(times), 3),
        "p95_ms": round(_percentile(times, 0.95), 3),
    }


def _calibrate() -> float:
    """Milliseconds for a fixed busy loop — the machine-speed unit used to
    normalize timing medians across hosts."""
    start = time.perf_counter()
    total = 0
    for i in range(200_000):
        total += i * i
    assert total > 0
    return (time.perf_counter() - start) * 1000.0


def _io_delta(fn):
    before = GLOBAL_PAGES.stats.snapshot()
    result = fn()
    return result, GLOBAL_PAGES.stats.delta(before)


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def bench_b1_range(smoke: bool) -> dict:
    """The B1 selection answered by the B-tree range plan."""
    n = 400 if smoke else 4000
    system = build_spatial_system(n_cities=n, n_states=1)
    text = "query cities_rep range[900000, top] count"
    rows, io = _io_delta(lambda: system.run_one(text).value)
    entry = _summarize(_times(lambda: system.run_one(text), 3 if smoke else 20))
    entry["counters"] = {"rows": rows, "page_reads": io.reads}
    return entry


def bench_b1_scan(smoke: bool) -> dict:
    """The same B1 selection answered by the feed-filter scan plan."""
    n = 400 if smoke else 4000
    system = build_spatial_system(n_cities=n, n_states=1)
    text = "query cities_rep feed filter[pop >= 900000] count"
    rows, io = _io_delta(lambda: system.run_one(text).value)
    entry = _summarize(_times(lambda: system.run_one(text), 3 if smoke else 20))
    entry["counters"] = {"rows": rows, "page_reads": io.reads}
    return entry


def _build_equijoin_system(smoke: bool):
    from repro.api import connect
    from repro.optimizer.standard_rules import cost_based_optimizer

    session = connect(optimizer=cost_based_optimizer())
    session.run(
        """
type order = tuple(<(oid, int), (cust, int)>)
type customer = tuple(<(cid, int), (cname, string)>)
create orders : rel(order)
create customers : rel(customer)
create orders_rep : srel(order)
create customers_rep : btree(customer, cid, int)
update rep := insert(rep, orders, orders_rep)
update rep := insert(rep, customers, customers_rep)
"""
    )
    db = session.database
    order_t = db.aliases["order"]
    cust_t = db.aliases["customer"]
    orders = db.objects["orders_rep"].value
    custs = db.objects["customers_rep"].value
    # Sized so the textbook constants prefer the hash join while fresh
    # statistics (unique inner key) reveal the index plan is cheaper.
    n_orders, n_custs = (200, 4000) if smoke else (400, 10000)
    for i in range(n_orders):
        orders.append(make_tuple(order_t, oid=i, cust=(i * 13) % n_custs))
    for i in range(n_custs):
        custs.insert(make_tuple(cust_t, cid=i, cname=f"c{i}"))
    return session


def bench_equijoin_stats(smoke: bool) -> dict:
    """Cost-based equi-join choice with statistics: the analyzed system
    must pick the index nested-loop plan the textbook constants reject."""
    session = _build_equijoin_system(smoke)
    query = "query orders customers join[cust = cid]"
    textbook = session.run_one(query)
    analyze_objects(session.database, ["orders_rep", "customers_rep"])
    analyzed, io = _io_delta(lambda: session.run_one(query))
    entry = _summarize(_times(lambda: session.run_one(query), 3 if smoke else 10))
    entry["counters"] = {
        "rows": len(analyzed.value),
        "page_reads": io.reads,
        "textbook_picks_index": int(textbook.fired == ["equi_join_index"]),
        "analyzed_picks_index": int(analyzed.fired == ["equi_join_index"]),
    }
    return entry


def bench_analyze(smoke: bool) -> dict:
    """The ``analyze`` statement itself over the spatial schema."""
    n = 400 if smoke else 4000
    system = build_spatial_system(n_cities=n, n_states=9)
    result = system.run_one("analyze cities, states")
    entry = _summarize(
        _times(lambda: system.run_one("analyze"), 3 if smoke else 10)
    )
    entry["counters"] = {
        "objects": len(result.value),
        "histograms": sum(s["histograms"] for s in result.value.values()),
        "rows": sum(s["rows"] for s in result.value.values()),
    }
    return entry


def bench_trace_overhead(smoke: bool) -> dict:
    """Tracing-off overhead on the B1 query: instrumentation must stay
    within the documented <3 % budget when collection is disarmed.  The
    ratio is machine-dependent, so it lands in ``info``, not counters."""
    n = 400 if smoke else 2000
    system = build_spatial_system(n_cities=n, n_states=1)
    text = "query cities_rep range[900000, top] count"
    rounds = 10 if smoke else 40
    system.run_one(text)  # warm caches before measuring either mode
    off = _times(lambda: system.run_one(text), rounds)
    system.set_tracing(True)
    on = _times(lambda: system.run_one(text), rounds)
    system.set_tracing(False)
    entry = _summarize(off)
    ratio = statistics.median(on) / max(statistics.median(off), 1e-9)
    entry["counters"] = {"rows": system.run_one(text).value}
    entry["info"] = {"traced_over_untraced": round(ratio, 3)}
    return entry


def bench_precheck_overhead(smoke: bool) -> dict:
    """Static-analysis precheck cost on a diagnostic-free query: one
    session runs plain, a second runs with ``precheck="warn"`` so every
    statement is linted before it executes.  The gated counter pins the
    lint verdict (zero diagnostics on the clean statement); the timing
    ratio is machine-dependent and lands in ``info``."""
    from repro.api import connect

    rows = 60 if smoke else 400
    schema = (
        "type city = tuple(<(cname, string), (pop, int)>)\n"
        "create cities : rel(city)\n"
        "create cities_rep : btree(city, pop, int)\n"
        "update rep := insert(rep, cities, cities_rep)\n"
    )
    inserts = "".join(
        f'update cities := insert(cities, mktuple[<(cname, "c{i}"), (pop, {1000 + i})>])\n'
        for i in range(rows)
    )
    text = "query cities select[pop >= 1000]"
    rounds = 10 if smoke else 40

    plain = connect()
    plain.run(schema + inserts, atomic=True)
    plain.run_one("analyze cities")
    checked = connect(precheck="warn")
    checked.run(schema + inserts, atomic=True)
    checked.run_one("analyze cities")

    plain.run_one(text)  # warm both sessions before measuring
    checked.run_one(text)
    off = _times(lambda: plain.run_one(text), rounds)
    on = _times(lambda: checked.run_one(text), rounds)

    entry = _summarize(off)
    ratio = statistics.median(on) / max(statistics.median(off), 1e-9)
    entry["counters"] = {
        "rows": len(plain.run_one(text).value),
        "diagnostics": len(checked.check(text)),
    }
    entry["info"] = {"prechecked_over_plain": round(ratio, 3)}
    return entry


# ---------------------------------------------------------------------------
# Durability suite: WAL-logged workloads and recovery
# ---------------------------------------------------------------------------


def _durable_rows(smoke: bool) -> int:
    # Each row is a logged+fsynced statement, so the smoke count stays low.
    return 30 if smoke else 300


def _open_durable(tmp: str, group_commit: int = 1):
    from repro.api import connect

    return connect(
        data_dir=os.path.join(tmp, "db"),
        group_commit=group_commit,
        checkpoint_interval=0,
    )


def _durable_workload(tmp: str, n: int, group_commit: int = 1) -> None:
    db = _open_durable(tmp, group_commit)
    db.run_one("type item = tuple(<(k, int), (name, string)>)")
    db.run_one("create items : rel(item)")
    db.run_one("create items_rep : btree(item, k, int)")
    db.run_one("update rep := insert(rep, items, items_rep)")
    for i in range(n):
        db.run_one(
            f'update items := insert(items, mktuple[<(k, {i}), (name, "r{i}")>])'
        )
    db.close()


def _bench_durable_inserts(smoke: bool, group_commit: int) -> dict:
    n = _durable_rows(smoke)

    def once():
        with tempfile.TemporaryDirectory() as tmp:
            _durable_workload(tmp, n, group_commit)

    with tempfile.TemporaryDirectory() as tmp:
        _, io = _io_delta(lambda: _durable_workload(tmp, n, group_commit))
    entry = _summarize(_times(once, 3 if smoke else 10))
    entry["counters"] = {
        "rows": n,
        "log_writes": io.log_writes,
        "log_bytes": io.log_bytes,
        "fsyncs": io.fsyncs,
    }
    return entry


def bench_durable_insert(smoke: bool) -> dict:
    """WAL-logged inserts, fsync per commit (``group_commit=1``): the
    worst-case durable write path — three log records and one fsync per
    statement, all visible as deterministic counters."""
    return _bench_durable_inserts(smoke, group_commit=1)


def bench_group_commit(smoke: bool) -> dict:
    """The same workload with ``group_commit=8``: identical log traffic,
    an eighth of the fsyncs — the gate pins the batching ratio down."""
    return _bench_durable_inserts(smoke, group_commit=8)


def bench_recovery(smoke: bool) -> dict:
    """Reopening a durable directory: full WAL replay, then again after a
    checkpoint bounds the log to zero replayed statements."""
    n = _durable_rows(smoke)
    tmp = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        _durable_workload(tmp, n)

        def reopen():
            db = _open_durable(tmp)
            replayed = db.durability.replayed_statements
            db.close()
            return replayed

        replayed, io = _io_delta(reopen)
        entry = _summarize(_times(reopen, 3 if smoke else 10))
        db = _open_durable(tmp)
        db.checkpoint()
        db.close()
        entry["counters"] = {
            "replayed": replayed,
            "log_writes": io.log_writes,
            "replayed_after_checkpoint": reopen(),
        }
        return entry
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ---------------------------------------------------------------------------
# Server suite: concurrent clients against one durable database
# ---------------------------------------------------------------------------


def _start_bench_server(tmp: str):
    from repro.server import start_server

    return start_server(
        data_dir=os.path.join(tmp, "db"), group_commit=8, checkpoint_interval=0
    )


def _server_schema(address: str, n_clients: int) -> None:
    from repro.api import connect

    statements = ["type item = tuple(<(k, int), (name, string)>)"]
    for cid in range(n_clients):
        statements += [
            f"create r{cid} : rel(item)",
            f"create r{cid}_rep : btree(item, k, int)",
            f"update rep := insert(rep, r{cid}, r{cid}_rep)",
        ]
    db = connect(address)
    db.run("\n".join(statements))
    db.disconnect()


def _server_round(
    address: str, n_clients: int, n_stmts: int, key_base: int
) -> float:
    """One timed round: every client commits ``n_stmts`` inserts into its
    own relation; returns wall-clock seconds from the start barrier to the
    last client finishing."""
    import threading

    from repro.api import connect

    barrier = threading.Barrier(n_clients + 1)
    errors: list[BaseException] = []

    def client(cid: int) -> None:
        try:
            db = connect(address)
            barrier.wait()
            for i in range(n_stmts):
                db.run_one(
                    f"update r{cid} := insert(r{cid}, "
                    f'mktuple[<(k, {key_base + i}), (name, "x")>])'
                )
            db.disconnect()
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def _conflict_count(address: str) -> int:
    from repro.api import connect

    db = connect(address)
    try:
        return db.ping()["metrics"]["mvcc.conflicts"]
    finally:
        db.disconnect()


def _server_counters(address: str) -> dict:
    """The server's telemetry-registry counters (``metrics`` wire op).
    The registry is process-wide, so callers diff two snapshots rather
    than reading absolutes."""
    from repro.api import connect

    db = connect(address)
    try:
        return db.server_metrics()["counters"]
    finally:
        db.disconnect()


def _bench_server_clients(smoke: bool, n_clients: int) -> dict:
    per_client = {1: (12, 60), 8: (6, 30), 64: (1, 4)}[n_clients][0 if smoke else 1]
    rounds = 3 if smoke else 5
    with tempfile.TemporaryDirectory() as tmp:
        handle = _start_bench_server(tmp)
        try:
            _server_schema(handle.address, n_clients)
            before = _server_counters(handle.address)
            elapsed = [
                _server_round(handle.address, n_clients, per_client, r * per_client)
                for r in range(rounds)
            ]
            after = _server_counters(handle.address)
            conflicts = _conflict_count(handle.address)
        finally:
            handle.stop()
    batches = after.get("group_commit.batches", 0) - before.get(
        "group_commit.batches", 0
    )
    synced = after.get("group_commit.synced", 0) - before.get(
        "group_commit.synced", 0
    )
    mean_batch = round(synced / batches, 2) if batches else 0.0
    total_commits = n_clients * per_client * rounds
    entry = _summarize([e * 1000.0 for e in elapsed])
    entry["counters"] = {
        "clients": n_clients,
        "statements": n_clients * per_client,
        "conflicts": conflicts,
        # Disjoint relations: any conflict at all is a regression (the
        # gate fails on growth from a zero baseline).
        "conflict_rate_pct": round(100.0 * conflicts / total_commits, 1),
    }
    entry["info"] = {
        "stmts_per_sec": round(n_clients * per_client / min(elapsed), 1),
        "mean_batch_size": mean_batch,
    }
    if n_clients == 1:
        # A lone client can never share a batch, so the mean batch size
        # is exactly 1.0 — deterministic, hence gated as a counter.  At
        # 8/64 clients batch composition is timing-dependent and stays
        # informational.
        entry["counters"]["mean_batch_size"] = mean_batch
    return entry


def bench_server_one_client(smoke: bool) -> dict:
    """Baseline: a single client committing durable statements over the
    socket — every commit pays its own group-commit sync."""
    return _bench_server_clients(smoke, 1)


def bench_server_eight_clients(smoke: bool) -> dict:
    """Eight concurrent clients on disjoint relations: conflict-free, so
    the only cross-client coupling is the shared WAL batcher."""
    return _bench_server_clients(smoke, 8)


def bench_server_sixtyfour_clients(smoke: bool) -> dict:
    """Sixty-four concurrent clients — the connection-scaling end of the
    curve (the engine serializes execution; the wins are pipelined socket
    turnarounds and batched fsyncs)."""
    return _bench_server_clients(smoke, 64)


def bench_server_scaling(smoke: bool) -> dict:
    """Eight clients must outrun one at the same per-client statement
    count: the gated ``eight_beats_one_ok`` flag is the CI proof that
    cross-client group commit amortizes fsyncs instead of serializing
    everything behind the engine lock."""
    per_client = 8 if smoke else 40
    rounds = 2 if smoke else 4
    with tempfile.TemporaryDirectory() as tmp:
        handle = _start_bench_server(tmp)
        try:
            _server_schema(handle.address, 8)
            rate = {}
            times8: list[float] = []
            key = 0
            for scale in (1, 8):
                best = float("inf")
                for _ in range(rounds):
                    elapsed = _server_round(
                        handle.address, scale, per_client, key
                    )
                    key += per_client
                    best = min(best, elapsed)
                    if scale == 8:
                        times8.append(elapsed * 1000.0)
                rate[scale] = scale * per_client / best
        finally:
            handle.stop()
    entry = _summarize(times8)
    entry["counters"] = {
        "statements_per_client": per_client,
        "eight_beats_one_ok": int(rate[8] > rate[1]),
    }
    entry["info"] = {
        "one_client_stmts_per_sec": round(rate[1], 1),
        "eight_client_stmts_per_sec": round(rate[8], 1),
        "speedup": round(rate[8] / max(rate[1], 1e-9), 2),
    }
    return entry


def bench_retry_overhead(smoke: bool) -> dict:
    """The price of arming the retry machinery when nothing fails: the
    single-client insert workload through a plain DSN and again through
    ``?retries=3&backoff_ms=10``.  With zero faults the tokened path adds
    only a uuid per mutation and one journal record per commit, so the
    gated ``retries`` / ``journal_hits`` deltas must stay zero; the
    timing ratio is machine-dependent and reported in ``info``."""
    from repro.api import connect

    per_round = 20 if smoke else 100
    rounds = 3 if smoke else 5
    with tempfile.TemporaryDirectory() as tmp:
        handle = _start_bench_server(tmp)
        try:
            _server_schema(handle.address, 1)
            before = _server_counters(handle.address)
            key = 0

            def run_with(options: str) -> list[float]:
                nonlocal key
                db = connect(handle.address + options)
                times = []
                for _ in range(rounds):
                    start = time.perf_counter()
                    for i in range(per_round):
                        db.run_one(
                            f"update r0 := insert(r0, "
                            f'mktuple[<(k, {key + i}), (name, "x")>])'
                        )
                    times.append((time.perf_counter() - start) * 1000.0)
                    key += per_round
                db.disconnect()
                return times

            plain = run_with("")
            armed = run_with("?retries=3&backoff_ms=10")
            after = _server_counters(handle.address)
        finally:
            handle.stop()
    retries = sum(
        after.get(k, 0) - before.get(k, 0)
        for k in (
            "client.retries.transport",
            "client.retries.conflict",
            "client.retries.busy",
        )
    )
    entry = _summarize(armed)
    entry["counters"] = {
        "statements": per_round * rounds,
        # No fault was injected, so a non-zero retry (or a journal hit,
        # which would mean a duplicate token) is a correctness regression.
        "retries": retries,
        "journal_hits": after.get("mvcc.journal_hits", 0)
        - before.get("mvcc.journal_hits", 0),
        "reconnects": after.get("client.reconnects", 0)
        - before.get("client.reconnects", 0),
    }
    plain_median = statistics.median(plain)
    entry["info"] = {
        "plain_median_ms": round(plain_median, 3),
        "overhead_ratio": round(
            statistics.median(armed) / max(plain_median, 1e-9), 3
        ),
    }
    return entry


BENCHMARKS = {
    "b1_range": bench_b1_range,
    "b1_scan": bench_b1_scan,
    "equijoin_stats": bench_equijoin_stats,
    "analyze": bench_analyze,
    "trace_overhead": bench_trace_overhead,
    "precheck_overhead": bench_precheck_overhead,
}

DURABILITY_BENCHMARKS = {
    "durable_insert": bench_durable_insert,
    "group_commit": bench_group_commit,
    "recovery": bench_recovery,
}

SERVER_BENCHMARKS = {
    "clients_1": bench_server_one_client,
    "clients_8": bench_server_eight_clients,
    "clients_64": bench_server_sixtyfour_clients,
    "scaling": bench_server_scaling,
    "retry_overhead": bench_retry_overhead,
}

SUITES = {
    "core": BENCHMARKS,
    "durability": DURABILITY_BENCHMARKS,
    "server": SERVER_BENCHMARKS,
}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run(
    smoke: bool = False,
    only: list[str] | None = None,
    suite: str = "core",
) -> dict:
    benchmarks = SUITES[suite]
    selected = only or list(benchmarks)
    unknown = [name for name in selected if name not in benchmarks]
    if unknown:
        raise SystemExit(f"unknown benchmark(s): {', '.join(unknown)}")
    document = {
        "schema": SCHEMA_VERSION,
        "meta": {
            "mode": "smoke" if smoke else "full",
            "suite": suite,
            "calibration_ms": round(_calibrate(), 3),
            "python": sys.version.split()[0],
        },
        "benchmarks": {},
    }
    for name in selected:
        document["benchmarks"][name] = benchmarks[name](smoke)
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.harness", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datasets and few rounds (the CI mode)",
    )
    parser.add_argument(
        "--suite", default="core", choices=sorted(SUITES),
        help="benchmark suite to run (default: core)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output JSON path ('-' for stdout; default BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        help="run only the named benchmark (repeatable)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = f"BENCH_{args.suite}.json"
    if observe.ENABLED:
        raise SystemExit("refusing to benchmark with collection armed")
    document = run(smoke=args.smoke, only=args.only, suite=args.suite)
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        with open(args.out, "w") as out:
            out.write(payload)
        names = ", ".join(document["benchmarks"])
        print(f"wrote {args.out} ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
