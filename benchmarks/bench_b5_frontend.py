"""B5 — front-end throughput: lexing, parsing, typechecking (Section 2.3).

The generic syntax-pattern-driven parser and the pattern-matching
typechecker are the components the paper proposes to generate from
specifications; this measures their cost per statement.
"""

import pytest

from benchmarks.helpers import build_spatial_system

QUERIES = {
    "simple_select": "query cities select[pop >= 500000]",
    "spatial_join": "query cities states join[center inside region]",
    "deep_pipeline": (
        "query cities_rep feed filter[pop >= 100] "
        "project[<(n, cname), (k, fun (c: city) c pop div 1000)>] head[10] count"
    ),
    "explicit_lambda": (
        "query cities select[fun (c: city) c pop >= 500000 and c cname != \"x\"]"
    ),
}


@pytest.fixture(scope="module")
def system():
    return build_spatial_system(n_cities=10, n_states=4)


@pytest.mark.parametrize("name", list(QUERIES))
def test_parse(benchmark, system, name):
    text = QUERIES[name]
    parser = system.interpreter.make_parser()
    benchmark(lambda: parser.parse_statement(text))


@pytest.mark.parametrize("name", list(QUERIES))
def test_parse_and_typecheck(benchmark, system, name):
    text = QUERIES[name]

    def run():
        statement = system.interpreter.make_parser().parse_statement(text)
        return system.database.typechecker.check(statement.expr)

    checked = run()
    assert checked.type is not None
    benchmark(run)
