"""B2 — the spatial join of Sections 4/5: repeated scan vs LSD point search.

Sweeps the number of cities (the outer relation) with the states tiling
fixed.  Expected shape: the scan join is quadratic-ish (every outer tuple
scans all states), the index join near-linear; the gap widens with size.
"""

import pytest

from benchmarks.helpers import INDEX_JOIN, SCAN_JOIN, build_spatial_system
from repro.storage.io import GLOBAL_PAGES

SIZES = [200, 800, 2000]
N_STATES = 256


@pytest.fixture(scope="module", params=SIZES)
def sized_system(request):
    return request.param, build_spatial_system(
        n_cities=request.param, n_states=N_STATES
    )


def test_scan_join(benchmark, sized_system):
    n, system = sized_system
    before = GLOBAL_PAGES.stats.snapshot()
    count = system.run_one(SCAN_JOIN).value
    benchmark.extra_info["page_reads"] = GLOBAL_PAGES.stats.delta(before).reads
    benchmark.extra_info["n_cities"] = n
    benchmark.extra_info["pairs"] = count
    benchmark(lambda: system.run_one(SCAN_JOIN))


def test_index_join(benchmark, sized_system):
    n, system = sized_system
    before = GLOBAL_PAGES.stats.snapshot()
    count = system.run_one(INDEX_JOIN).value
    benchmark.extra_info["page_reads"] = GLOBAL_PAGES.stats.delta(before).reads
    benchmark.extra_info["n_cities"] = n
    benchmark.extra_info["pairs"] = count
    benchmark(lambda: system.run_one(INDEX_JOIN))


def test_index_join_reads_fewer_pages(sized_system):
    n, system = sized_system
    before = GLOBAL_PAGES.stats.snapshot()
    scan_count = system.run_one(SCAN_JOIN).value
    scan_reads = GLOBAL_PAGES.stats.delta(before).reads
    before = GLOBAL_PAGES.stats.snapshot()
    index_count = system.run_one(INDEX_JOIN).value
    index_reads = GLOBAL_PAGES.stats.delta(before).reads
    assert scan_count == index_count == n  # tiling: one state per city
    assert index_reads * 2 < scan_reads
