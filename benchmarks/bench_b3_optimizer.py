"""B3 — cost of the rule-based optimizer itself (Section 5).

Measures the full front-end pipeline (parse + typecheck + optimize) per
statement, without execution, and reports rules tried/fired.  Expected
shape: translation adds a bounded, milliseconds-scale overhead per
statement, independent of data size.
"""

import pytest

from benchmarks.helpers import MODEL_JOIN, build_spatial_system, selection_query
from repro.core.terms import clone_term


@pytest.fixture(scope="module")
def system():
    return build_spatial_system(n_cities=50, n_states=16)


def _pipeline(system, text):
    statement = system.interpreter.make_parser().parse_statement(text)
    term = system.database.typechecker.check(statement.expr)
    return system.optimizer.optimize(
        system.database.typechecker.check(clone_term(term)), system.database
    )


def test_optimize_indexed_selection(benchmark, system):
    text = selection_query(0.01)
    result = _pipeline(system, text)
    benchmark.extra_info["rules_fired"] = result.fired
    benchmark.extra_info["rules_tried"] = result.tried
    benchmark(lambda: _pipeline(system, text))


def test_optimize_spatial_join(benchmark, system):
    result = _pipeline(system, MODEL_JOIN)
    benchmark.extra_info["rules_fired"] = result.fired
    benchmark.extra_info["rules_tried"] = result.tried
    benchmark(lambda: _pipeline(system, MODEL_JOIN))


def test_optimize_scan_fallback(benchmark, system):
    text = 'query cities select[cname = "c1"]'
    result = _pipeline(system, text)
    assert result.fired == ["select_scan"]
    benchmark(lambda: _pipeline(system, text))


def test_optimizer_overhead_is_data_independent(system):
    """Optimization must not look at the data, only at types and catalogs."""
    small = build_spatial_system(n_cities=10, n_states=4)
    import time

    def measure(sys_):
        start = time.perf_counter()
        for _ in range(20):
            _pipeline(sys_, MODEL_JOIN)
        return time.perf_counter() - start

    t_small = measure(small)
    t_large = measure(system)
    assert t_large < t_small * 3  # same order of magnitude
