"""Benchmark-suite options.

``--metrics PATH`` arms :mod:`repro.observe` metric collection around every
benchmark test and dumps the per-test operator/storage counters as JSON to
PATH (``-`` for stdout).  CI runs a smoke pass with it and fails if any
instrumented counter comes back missing or zero — a regression canary for
the observability layer itself (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json

import pytest

from repro import observe


def pytest_addoption(parser):
    parser.addoption(
        "--metrics",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "collect operator and storage counters for each benchmark and "
            "dump them as JSON to PATH ('-' for stdout)"
        ),
    )


def pytest_configure(config):
    config._benchmark_metrics = {}


@pytest.fixture(autouse=True)
def _metrics_collection(request):
    """Collect execution metrics over the whole test (all benchmark rounds)
    when ``--metrics`` is given; otherwise a no-op."""
    if not request.config.getoption("--metrics"):
        yield
        return
    with observe.collecting() as metrics:
        yield
    request.config._benchmark_metrics[request.node.nodeid] = metrics.as_dict()


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--metrics", default=None)
    if not path:
        return
    payload = json.dumps(session.config._benchmark_metrics, indent=2, sort_keys=True)
    if path == "-":
        print(payload)
    else:
        with open(path, "w") as out:
            out.write(payload + "\n")
